#!/usr/bin/env python3
"""Quickstart: publish a tiny lightweb universe and browse it privately.

This walks the Figure 1 flow end to end:

1. a CDN creates a content universe,
2. publishers push a code blob + data blobs per site,
3. a client opens the two ZLTP sessions (code + data) and visits pages —
   with nobody, including the CDN, learning which pages.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.publisher import Publisher
from repro.core.zltp.modes import MODE_PIR2


def main():
    # -- The CDN side -----------------------------------------------------
    cdn = Cdn("example-cdn", modes=[MODE_PIR2])
    cdn.create_universe(
        "demo",
        data_blob_size=4096,      # the paper's 4 KiB data blobs
        code_blob_size=65536,
        data_domain_bits=12,
        code_domain_bits=8,
        fetch_budget=5,           # the paper's five data GETs per page view
    )
    print(f"CDN {cdn.name!r} hosts universe 'demo': "
          f"{cdn.universe('demo').describe()}")

    # -- The publisher side -----------------------------------------------
    publisher = Publisher("demo-press")
    site = publisher.site("news.example")
    site.add_page("/", (
        "Welcome to news.example, served over ZLTP.\n"
        "Read [[news.example/world|world news]] or "
        "[[news.example/tech|tech news]]."
    ))
    site.add_page("/world", {"title": "World",
                             "body": "Nothing happened anywhere today."})
    site.add_page("/tech", {"title": "Tech",
                            "body": "A private web is possible."})
    publisher.push(cdn, "demo")
    print(f"published {site.domain}: pages {site.pages()}")

    # -- The user side ------------------------------------------------------
    browser = LightwebBrowser(rng=np.random.default_rng(0))
    browser.connect(cdn, "demo")
    print("\n--- visiting news.example ---")
    page = browser.visit("news.example")
    print(page.text)
    print(f"links: {page.links}")

    print("\n--- following the first link ---")
    world = browser.follow(page, 0)
    print(world.text)

    # -- What the network saw -----------------------------------------------
    print("\n--- leakage accounting (the §3.2 contract) ---")
    counts = browser.gets_for_last_visit()
    print(f"last visit made {counts['code-get']} code GETs and "
          f"{counts['data-get']} data GETs "
          f"(always exactly {browser.fetch_budget} data GETs per page)")
    print(f"client uploaded {browser.bytes_sent} bytes, "
          f"downloaded {browser.bytes_received} bytes this session")
    print("every GET reaching the CDN was a DPF key pair — "
          "no path ever left the client in plaintext.")


if __name__ == "__main__":
    main()
