#!/usr/bin/env python3
"""The enclave + ORAM mode of operation (§2.2), inspected up close.

Shows: browsing a universe through the ``enclave-oram`` mode, the
untrusted-memory access trace an attacker on the host would see (fixed
shape, uniform paths), the polylogarithmic cost contrast with PIR, the
recursive position map that shrinks trusted state, and what breaks when
the hardware assumption fails.

Run:  python examples/enclave_mode.py
"""

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.publisher import Publisher
from repro.core.zltp.modes import MODE_ENCLAVE
from repro.oram.position_map import RecursivePathOram
from repro.oram.trace import leaf_distribution_pvalue, trace_stats


def main():
    # -- Browse through the enclave mode -----------------------------------
    cdn = Cdn("sgx-cdn", modes=[MODE_ENCLAVE], rng=np.random.default_rng(0))
    cdn.create_universe("u", data_domain_bits=9, code_domain_bits=7,
                        data_blob_size=1024, code_blob_size=4096,
                        fetch_budget=2)
    publisher = Publisher("pub")
    site = publisher.site("enclave.example")
    site.add_page("/", "Served from inside a (simulated) enclave. "
                       "[[enclave.example/how|how?]]")
    site.add_page("/how", {"title": "How",
                           "body": "Path ORAM hides the access pattern."})
    publisher.push(cdn, "u")

    browser = LightwebBrowser(rng=np.random.default_rng(1))
    browser.connect(cdn, "u", client_modes=[MODE_ENCLAVE])
    page = browser.visit("enclave.example")
    print(page.text, "\n")

    # -- What the host (the attacker) observed ------------------------------
    mode_server = cdn._server("u", "data", 0).mode_server(MODE_ENCLAVE)
    enclave = mode_server.enclave
    stats = trace_stats(enclave.trace)
    pval = leaf_distribution_pvalue(enclave.leaf_history(), enclave.n_leaves)
    print("host-visible ORAM trace:")
    print(f"  {len(enclave.trace)} bucket touches across "
          f"{stats.n_segments} accesses")
    print(f"  fixed shape per access: {stats.fixed_shape} "
          f"({stats.segment_lengths[0]} touches each "
          f"= 2*(log2 N + 1) with N = 2^{enclave.capacity_bits})")
    print(f"  leaf-uniformity p-value: {pval:.3f} "
          f"(uniform => nothing about WHICH blob leaks)\n")

    # -- Recursive position map: trusted memory at scale --------------------
    recursive = RecursivePathOram(12, 64, entries_per_block=16,
                                  min_trusted_entries=16,
                                  rng=np.random.default_rng(2))
    recursive.write(1000, b"x" * 64)
    recursive.read(1000)
    print("recursive position map (for enclaves that can't hold the map):")
    print(f"  2^12 blocks, {recursive.recursion_levels} map recursion levels")
    print(f"  {recursive.accesses_per_op()} bucket touches per op "
          f"(flat ORAM: {2 * 13})")
    print(f"  trusted state: <= 16 innermost map entries + stashes\n")

    # -- The hardware caveat (§2.2's warning) -------------------------------
    print("the §2.2 caveat — 'a slew of attacks on hardware enclaves':")
    state = enclave.compromise()
    print(f"  a Foreshadow-class attacker exfiltrates "
          f"{len(state['position_map'])} position-map entries")
    try:
        browser.visit("enclave.example/how")
    except Exception as exc:
        print(f"  deployment must stop serving: {type(exc).__name__} "
              f"raised at the next GET")


if __name__ == "__main__":
    main()
