#!/usr/bin/env python3
"""The §3.2 timing channel and the cover-traffic defense, end to end.

"a user fetching a page every five minutes in the morning might be most
likely to be reading the news. But even this leakage is modest."

Part 1 measures the leak: an observer classifies user archetypes from raw
visit timing. Part 2 flattens it with a fixed fetch grid and shows the
price in latency and §4 dollars.

Run:  python examples/timing_defense.py
"""

from repro.core.lightweb.scheduler import CoverTrafficSchedule
from repro.costmodel.billing import UserProfile, monthly_user_cost
from repro.costmodel.datasets import C4
from repro.costmodel.estimator import estimate_deployment
from repro.netsim.timing import (
    DEFAULT_ARCHETYPES,
    TimingClassifier,
    archetype_corpus,
)


def main():
    # -- Part 1: the leak ---------------------------------------------------
    train_days, train_labels = archetype_corpus(DEFAULT_ARCHETYPES, 30, seed=1)
    test_days, test_labels = archetype_corpus(DEFAULT_ARCHETYPES, 15, seed=2)
    classifier = TimingClassifier()
    classifier.fit(train_days, train_labels)
    raw_accuracy = classifier.accuracy(test_days, test_labels)
    chance = 1 / len(DEFAULT_ARCHETYPES)
    print("archetypes:", ", ".join(a.name for a in DEFAULT_ARCHETYPES))
    print(f"attack on raw visit timing : {raw_accuracy:.1%} "
          f"(chance {chance:.1%}) — the conceded §3.2 channel\n")

    # -- Part 2: the defense -------------------------------------------------
    schedule = CoverTrafficSchedule(900, window_hours=(7, 23))
    covered_train = [list(schedule.apply(day).fetch_times)
                     for day in train_days]
    covered_test = [list(schedule.apply(day).fetch_times)
                    for day in test_days]
    defended = TimingClassifier()
    defended.fit(covered_train, train_labels)
    covered_accuracy = defended.accuracy(covered_test, test_labels)
    print(f"same attack under a fixed 15-min fetch grid: "
          f"{covered_accuracy:.1%} (chance {chance:.1%})\n")

    # -- What it costs --------------------------------------------------------
    request_cost = estimate_deployment(C4).request_cost_usd
    baseline = monthly_user_cost(request_cost, UserProfile())
    print("the defense's price (50-page/day user, Table-2 request cost):")
    print(f"  {'grid':>10} {'mean wait':>10} {'dummies':>8} {'$/month':>8}")
    for period in (300, 900, 1800):
        sched = CoverTrafficSchedule(period, window_hours=(7, 23))
        example_day = sorted(
            t for t in train_days[0] if 7 * 3600 <= t <= 23 * 3600
        )
        plan = sched.apply(example_day)
        monthly = sched.daily_fetches() * 5 * 30 * request_cost
        print(f"  {period // 60:>7} min {plan.mean_latency:>8.0f} s "
              f"{plan.overhead:>7.0%} {monthly:>8.2f}")
    print(f"  {'baseline':>10} {'0':>9} s {'0%':>8} {baseline:>8.2f} "
          f"(but timing leaks)")


if __name__ == "__main__":
    main()
