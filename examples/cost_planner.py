#!/usr/bin/env python3
"""The paper's economics, as a planning tool (Table 2, §4, §5.2).

Prints the Table 2 rows for C4 and Wikipedia, the §4 per-user monthly cost,
the Google-Fi comparison, and the "Looking forward" projection — all from
the same estimation pipeline the paper uses, plus the same pipeline fed
with numbers *measured* on this machine's Python substrate.

Run:  python examples/cost_planner.py [--measure]
"""

import argparse

from repro.costmodel.billing import (
    UserProfile,
    fi_bytes_cost,
    fi_page_cost,
    monthly_user_cost,
    zltp_vs_fi_ratio,
)
from repro.costmodel.datasets import C4, KIB, WIKIPEDIA
from repro.costmodel.estimator import (
    PAPER_SHARD,
    estimate_deployment,
    measure_shard,
)
from repro.costmodel.projection import projected_cost


def print_table2(shard, label):
    print(f"\nTable 2 ({label} shard constants)")
    header = (f"{'Dataset':<10} {'Size':>8} {'#pages':>8} {'Avg page':>9} "
              f"{'vCPU sec':>9} {'Req cost':>10} {'Comm':>9}")
    print(header)
    print("-" * len(header))
    for dataset in (C4, WIKIPEDIA):
        row = estimate_deployment(dataset, shard=shard).row()
        print(f"{row['dataset']:<10} {row['total_size_gib']:>6.0f}Gi "
              f"{row['n_pages'] / 1e6:>6.0f}M {row['avg_page_kib']:>7.1f}Ki "
              f"{row['vcpu_sec']:>9.1f} ${row['request_cost_usd']:>9.5f} "
              f"{row['communication_kib']:>7.1f}Ki")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measure", action="store_true",
                        help="also run the shard microbenchmark locally")
    args = parser.parse_args()

    print_table2(PAPER_SHARD, "paper")
    print("\npaper's published row: C4 305GiB/360M/0.9Ki/204/$0.002/15.9Ki; "
          "Wikipedia 21GiB/60M/0.4Ki/10/$0.0001/14.9Ki")

    c4 = estimate_deployment(C4)
    print("\n§4 — who pays?")
    profile = UserProfile()
    monthly = monthly_user_cost(c4.request_cost_usd, profile)
    print(f"  {profile.pages_per_day:.0f} pages/day x {profile.gets_per_page} "
          f"GETs x ${c4.request_cost_usd:.4f}/GET -> "
          f"${monthly:.2f}/month (paper: ~$15, 'a Netflix membership')")

    print("\n§5.2 — the Google Fi comparison")
    print(f"  22.4 MiB NYT homepage over Fi        : ${fi_page_cost():.3f} "
          f"(paper: $0.218)")
    print(f"  4 KiB over Fi                        : ${fi_bytes_cost(4 * KIB):.6f} "
          f"(paper: $0.000038)")
    print(f"  4 KiB over ZLTP                      : ${c4.request_cost_usd:.4f}")
    print(f"  ZLTP / Fi ratio                      : "
          f"{zltp_vs_fi_ratio(c4.request_cost_usd):.0f}x "
          f"(paper: 'roughly two orders of magnitude')")

    print("\n§5.2 — looking forward (16x cheaper compute per 5 years)")
    for years in (5, 10, 15):
        print(f"  in {years:>2} years: ${projected_cost(c4.request_cost_usd, years):.6f} "
              f"per request, ${projected_cost(monthly, years):.2f}/user-month")

    print("\nfleet planning (what the paper leaves to the operator):")
    from repro.costmodel.capacity import plan_fleet

    print(f"  {'users':>10} {'groups':>7} {'machines':>9} {'$/user-mo':>10}")
    for users in (10_000, 100_000, 1_000_000):
        plan = plan_fleet(C4, n_users=users)
        print(f"  {users:>10,} {plan.n_groups:>7} {plan.n_machines:>9,} "
              f"{plan.per_user_monthly_usd:>10.2f}")
    print("  (a dedicated fleet at diurnal-peak provisioning runs ~4x the "
          "§4 usage-priced $15 — utilisation, not crypto, is the gap)")

    if args.measure:
        print("\nmeasuring a shard on this machine (reduced scale)...")
        shard = measure_shard(domain_bits=12, blob_bytes=4096, n_requests=3)
        print(f"  measured: {shard.request_seconds * 1e3:.1f} ms/request "
              f"({shard.dpf_seconds * 1e3:.1f} ms DPF + "
              f"{shard.scan_seconds * 1e3:.1f} ms scan) at domain "
              f"2^{shard.domain_bits}")
        print_table2(shard, "measured")


if __name__ == "__main__":
    main()
