#!/usr/bin/env python3
"""§3.3/§3.4: access control, paywalls, key rotation and revocation.

A journal publishes free and premium pages. Premium content is stored at
the CDN only in encrypted form; subscribers hold account keys obtained from
the publisher out of band. Revocation = rotate the epoch key and broadcast
the new one to everyone except the revoked account.

Run:  python examples/paywall_subscriptions.py
"""

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.publisher import Publisher
from repro.core.zltp.modes import MODE_PIR2
from repro.errors import AccessError


def main():
    cdn = Cdn("paywall-cdn", modes=[MODE_PIR2])
    cdn.create_universe("demo", data_domain_bits=11, code_domain_bits=7,
                        fetch_budget=2)

    publisher = Publisher("journal-inc")
    site = publisher.site("journal.example")
    protection = site.enable_access_control(b"journal-master-secret",
                                            max_users=64)
    site.add_page("/", "Free preview. Subscribe for "
                       "[[journal.example/premium|premium analysis]].")
    site.add_protected_page("/premium", {
        "title": "Premium analysis",
        "body": "The secret sauce: three parts DPF, one part ORAM.",
    })
    publisher.push(cdn, "demo")

    # Two users: Alice subscribes, Bob does not.
    alice_account = protection.open_account()
    alice = LightwebBrowser(rng=np.random.default_rng(0))
    alice.keyring.add_account(alice_account)
    alice.connect(cdn, "demo")
    bob = LightwebBrowser(rng=np.random.default_rng(1))
    bob.connect(cdn, "demo")

    print("--- Alice (subscriber) reads the premium page ---")
    print(alice.visit("journal.example/premium").text)

    print("\n--- Bob (no account) fetches the same blob ---")
    page = bob.visit("journal.example/premium")
    print(page.text or "(nothing rendered)")
    print("notes:", page.notes)

    # The publisher revokes Alice and re-seals content under a new epoch.
    print("\n--- the journal revokes Alice's account ---")
    protection.revoke(alice_account.user_id)
    site.add_protected_page("/premium", {
        "title": "Premium analysis (updated)",
        "body": "Post-revocation secrets Alice must not see.",
    })
    publisher.push(cdn, "demo")

    try:
        alice_account.refresh(protection.epoch_broadcast())
        print("refresh unexpectedly succeeded!")
    except AccessError as exc:
        print(f"Alice's key refresh fails: {exc}")
    page = alice.visit("journal.example/premium")
    print("Alice now sees:", page.text or "(nothing)")
    print("notes:", page.notes)

    # A new subscriber is unaffected.
    carol_account = protection.open_account()
    carol = LightwebBrowser(rng=np.random.default_rng(2))
    carol.keyring.add_account(carol_account)
    carol.connect(cdn, "demo")
    print("\n--- Carol (fresh subscriber) ---")
    print(carol.visit("journal.example/premium").text)

    print("\nThroughout, the CDN stored only ciphertext and never learned "
          "any user's permissions (§3.3).")


if __name__ == "__main__":
    main()
