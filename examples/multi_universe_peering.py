#!/usr/bin/env python3
"""§3.5: multiple universes, small/medium/large tiers, and CDN peering.

Two CDNs share a domain registry and peer: publisher pushes to one, content
appears on both. A single CDN also offers size-tiered universes, trading
per-request cost against page capacity.

Run:  python examples/multi_universe_peering.py
"""

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.peering import DomainRegistry
from repro.core.lightweb.publisher import Publisher
from repro.core.lightweb.universe import DEFAULT_TIERS
from repro.core.zltp.modes import MODE_PIR2
from repro.costmodel.datasets import DatasetSpec, GIB
from repro.costmodel.estimator import estimate_deployment


def main():
    # -- Peered CDNs ---------------------------------------------------------
    registry = DomainRegistry("icann-stand-in")
    akamai = Cdn("akamai", registry=registry, modes=[MODE_PIR2])
    fastly = Cdn("fastly", registry=registry, modes=[MODE_PIR2])
    for cdn in (akamai, fastly):
        cdn.create_universe("world", data_domain_bits=10, code_domain_bits=7,
                            fetch_budget=2)
    akamai.peer_with(fastly)

    publisher = Publisher("globe-news")
    site = publisher.site("globe.example")
    site.add_page("/", "One push, every peer. [[globe.example/about|about]]")
    site.add_page("/about", {"title": "About",
                             "body": "uploaded to akamai, served by fastly"})
    publisher.push(akamai, "world")
    print("pushed globe.example to akamai only")

    reader = LightwebBrowser(rng=np.random.default_rng(0))
    reader.connect(fastly, "world")
    print("reading from fastly:", reader.visit("globe.example/about").text)
    print(f"registry says globe.example is owned by "
          f"{registry.owner_of('globe.example')!r} everywhere\n")

    # -- Tiered universes ------------------------------------------------------
    tiered = Cdn("tiered-cdn", registry=DomainRegistry(), modes=[MODE_PIR2])
    print("one CDN, three cost-coverage tiers (§3.5):")
    for tier in DEFAULT_TIERS:
        tiered.create_universe(tier.name, data_blob_size=tier.data_blob_size,
                               data_domain_bits=9, code_domain_bits=6)
        # Per-request cost scales with what a universe holds: model a
        # universe filled to capacity with tier-sized pages.
        capacity_pages = 2**20
        dataset = DatasetSpec(
            name=tier.name,
            total_bytes=capacity_pages * tier.data_blob_size,
            n_pages=capacity_pages,
            avg_page_bytes=tier.data_blob_size,
        )
        estimate = estimate_deployment(dataset)
        print(f"  {tier.name:<7} blobs {tier.data_blob_size:>6} B | "
              f"1M-page universe costs ${estimate.request_cost_usd:.5f}/request "
              f"({estimate.n_shards} shards)")
    print("\nusers pick the tier matching the page sizes they need; an "
          "observer learns only WHICH tier a fetch went to (§3.5).")


if __name__ == "__main__":
    main()
