#!/usr/bin/env python3
"""The paper's motivating experiment: traffic analysis vs. lightweb.

§1: "a visit to the media-rich New York Times homepage — even over an
encrypted link — exhibits a very different traffic signature than a visit
to an article page." We run the multinomial naive-Bayes fingerprinting
attack of Herrmann et al. [31] against:

  (a) simulated classic-web page loads (per-site resource mixes), and
  (b) real lightweb page loads recorded on the simulated network.

Expected outcome: far-above-chance accuracy on (a), chance on (b).

Run:  python examples/traffic_analysis_demo.py
"""

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.publisher import Publisher
from repro.core.zltp.modes import MODE_PIR2
from repro.netsim.adversary import PassiveAdversary
from repro.netsim.fingerprint import NaiveBayesFingerprinter
from repro.netsim.simnet import NetworkPath, SimClock, sim_transport_pair
from repro.netsim.traffic import ClassicWebTraffic

N_SITES = 8


def classic_web_attack():
    traffic = ClassicWebTraffic(noise=0.10)
    sites = [f"site{i}.com" for i in range(N_SITES)]
    train = traffic.corpus(sites, loads_per_site=8, seed=1)
    test = traffic.corpus(sites, loads_per_site=4, seed=2)
    clf = NaiveBayesFingerprinter(bucket_bytes=4096)
    clf.fit([t.transfers for t in train], [t.site for t in train])
    return clf.accuracy([t.transfers for t in test], [t.site for t in test])


def lightweb_attack():
    cdn = Cdn("ta-cdn", modes=[MODE_PIR2])
    cdn.create_universe("u", data_domain_bits=10, code_domain_bits=7,
                        fetch_budget=3)
    for i in range(N_SITES):
        publisher = Publisher(f"pub{i}")
        site = publisher.site(f"site{i}.example")
        for j in range(4):
            # Wildly different page sizes per site — irrelevant on the wire.
            site.add_page(f"/p{j}", "content " * (10 + 40 * i))
        publisher.push(cdn, "u")

    def record_visit(site_index, rep):
        adversary = PassiveAdversary()
        clock = SimClock()

        def factory(name):
            return sim_transport_pair(
                NetworkPath(clock, name=name, observer=adversary)
            )

        browser = LightwebBrowser(rng=np.random.default_rng(100 + rep))
        browser.connect(cdn, "u", transport_factory=factory)
        browser.visit(f"site{site_index}.example/p0")  # warm the code cache
        adversary.clear()
        browser.visit(f"site{site_index}.example/p{1 + rep % 3}")
        return adversary.trace()

    train_x, train_y, test_x, test_y = [], [], [], []
    for i in range(N_SITES):
        for rep in range(4):
            trace = record_visit(i, rep)
            if rep < 3:
                train_x.append(trace)
                train_y.append(f"site{i}")
            else:
                test_x.append(trace)
                test_y.append(f"site{i}")
    clf = NaiveBayesFingerprinter(bucket_bytes=512)
    clf.fit(train_x, train_y)
    return clf.accuracy(test_x, test_y)


def main():
    chance = 1 / N_SITES
    classic = classic_web_attack()
    print(f"classic web : fingerprinting accuracy = {classic:5.1%} "
          f"(chance = {chance:.1%})  → the attack works")
    lightweb = lightweb_attack()
    print(f"lightweb    : fingerprinting accuracy = {lightweb:5.1%} "
          f"(chance = {chance:.1%})  → fixed-size, fixed-count fetches "
          f"defeat it by design")


if __name__ == "__main__":
    main()
