#!/usr/bin/env python3
"""§3.3's dynamic-content scenario: weather.com with a cached postal code.

"the weather.com lightweb page could prompt the user for their postal code
and cache it in local storage. Later on, when the user visits weather.com,
the page could use the user's cached postal code to automatically fetch a
per-postal-code data blob containing up-to-date weather information."

Run:  python examples/weather_personalization.py
"""

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.lightscript import LightscriptProgram, Route
from repro.core.lightweb.publisher import Publisher
from repro.core.zltp.modes import MODE_PIR2

FORECASTS = {
    "94704": "Fog until noon, then sun. 18C.",
    "10025": "Humid with thunderstorms. 29C.",
    "60614": "Windy. Obviously. 12C.",
}


def main():
    cdn = Cdn("weather-cdn", modes=[MODE_PIR2])
    cdn.create_universe("demo", data_domain_bits=11, code_domain_bits=7,
                        fetch_budget=2)

    publisher = Publisher("weather-co")
    site = publisher.site("weather.example")
    # The code blob: prompt for "zip" once, then fetch the per-postal-code
    # blob on every visit.
    site.set_program(LightscriptProgram("weather.example", [
        Route(
            pattern=r"^/$",
            prompts=("zip",),
            fetches=("weather.example/zip/{local.zip|00000}.json",),
            render=("Weather for {local.zip|unknown}:\n"
                    "  {data0.forecast|no data for this postal code}"),
        ),
    ]))
    for zip_code, forecast in FORECASTS.items():
        site.add_page(f"/zip/{zip_code}.json", {"forecast": forecast})
    publisher.push(cdn, "demo")

    def prompt(domain, key):
        print(f"[{domain} asks for {key!r}; user types '94704']")
        return "94704"

    browser = LightwebBrowser(prompt_handler=prompt,
                              rng=np.random.default_rng(1))
    browser.connect(cdn, "demo")

    print("--- first visit (prompts once) ---")
    print(browser.visit("weather.example").text)

    print("\n--- second visit (postal code cached locally) ---")
    print(browser.visit("weather.example").text)

    print("\n--- the user moves; local storage is theirs to change ---")
    browser.storage.set("weather.example", "zip", "60614")
    print(browser.visit("weather.example").text)

    print("\nNote: the CDN served per-postal-code blobs without ever "
          "learning which postal code was fetched — personalisation from "
          "client-side state only (§3.3).")


if __name__ == "__main__":
    main()
