#!/usr/bin/env python3
"""A realistic news site on lightweb: sections, long articles, local ads.

Demonstrates the publisher-facing surface at once: a custom lightscript
program with section routes, a long article chunked into `next`-linked
continuation pages (§5's over-long values), and §3.4 ad targeting computed
entirely from the reader's local interest profile.

Run:  python examples/news_site.py
"""

import numpy as np

from repro.core.lightweb.ads import Ad, AdInventory
from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.lightscript import LightscriptProgram, Route
from repro.core.lightweb.publisher import Publisher
from repro.core.zltp.modes import MODE_PIR2

SECTIONS = ("world", "tech", "sport")

ADS = AdInventory([
    Ad("gpu", "SPONSORED: rent GPUs by the hour", keywords=("tech", "cloud")),
    Ad("boots", "SPONSORED: alpine boots, 20% off", keywords=("sport", "outdoors")),
    Ad("generic", "SPONSORED: a perfectly average product", keywords=()),
])


def build_site():
    publisher = Publisher("times-corp")
    site = publisher.site("times.example")
    site.set_program(LightscriptProgram("times.example", [
        Route(
            pattern=r"^/(world|tech|sport)$",
            fetches=("times.example/{1}/index.json",),
            render=("== times.example / {1} ==\n{data0.blurb}\n"
                    "{data0.headlines}\n\n{data0.selected_ad|}"),
        ),
        Route(
            pattern=r"^/(world|tech|sport)/(\d+)$",
            fetches=("times.example/{1}/{2}.json",),
            render="## {data0.title}\n\n{data0.body}",
        ),
        # Continuation pages for chunked long articles: the `next` pointer
        # inside a chunk names the next blob's path directly.
        Route(
            pattern=r"^(/.+~part\d+)$",
            fetches=("times.example{1}",),
            render="{data0.body}",
        ),
        Route(pattern=r"^/$",
              fetches=("times.example/front.json",),
              render="TIMES.EXAMPLE\n{data0.lines}"),
    ]))

    site.add_page("/front.json", {"lines": [
        f"[[times.example/{section}|{section.upper()}]]" for section in SECTIONS
    ]})
    for section in SECTIONS:
        site.add_page(f"/{section}/index.json", {
            "blurb": f"All the {section} news that fits in 4 KiB.",
            "headlines": [
                f"[[times.example/{section}/{i}|{section} story {i}]]"
                for i in range(3)
            ],
            "ads": ADS.to_payload(),
        })
        for i in range(3):
            body = (f"{section} story {i}. " + "Paragraph of reporting. " * 8)
            if section == "world" and i == 0:
                body *= 40  # force chunking into continuation pages
            site.add_page(f"/{section}/{i}.json",
                          {"title": f"{section} story {i}", "body": body})
    return publisher


def main():
    cdn = Cdn("news-cdn", modes=[MODE_PIR2])
    cdn.create_universe("news", data_blob_size=2048, code_blob_size=16384,
                        data_domain_bits=11, code_domain_bits=7,
                        fetch_budget=2)
    build_site().push(cdn, "news")

    reader = LightwebBrowser(interests=["tech"],
                             rng=np.random.default_rng(0))
    reader.connect(cdn, "news")

    print(reader.visit("times.example").text, "\n")

    tech = reader.visit("times.example/tech")
    print(tech.text)
    print("(the ad above was selected locally from interests=['tech'])\n")

    print("--- a long world story, chunked across blobs ---")
    page = reader.visit("times.example/world/0")
    part = 1
    while True:
        next_links = [t for t, label in page.links if label == "next"]
        print(f"part {part}: {len(page.text)} chars rendered"
              + (", more via 'next' link" if next_links else ", done"))
        if not next_links:
            break
        page = reader.visit(next_links[0])
        part += 1

    print(f"\nevery page view above cost exactly "
          f"{reader.fetch_budget} data GETs on the wire — section pages, "
          f"story pages, and continuation pages are indistinguishable.")


if __name__ == "__main__":
    main()
