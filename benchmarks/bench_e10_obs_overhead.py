"""E10 — instrumentation overhead of the observability layer.

The repo's claim (DESIGN.md "Observability"): tracing and metrics must be
cheap enough to leave compiled in. Every hot-path timing now goes through
``repro.obs.trace.span`` — including the E9 scan path, where each shard
scan is wrapped in ``span("pir2.shard_scan", ...)``. This benchmark
quantifies what that wrapper costs against the raw scan:

1. ``raw``            — ``BlobDatabase.xor_scan`` called directly.
2. ``span_off``       — the same scan wrapped in a span with *no tracer
   active* (the production default: two ``perf_counter`` calls).
3. ``span_tracing``   — the same scan under an active tracer (span-tree
   node allocation + contextvar bookkeeping), the debugging mode.

The acceptance bar is overhead < 5% for the always-on ``span_off`` path
at E9 scan sizes. Measured numbers land in ``BENCH_observability.json``
at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.obs.trace import span, tracing
from repro.pir.database import BlobDatabase

DOMAIN_BITS = 13                 # 2^13 x 4 KiB = 32 MiB scanned per call
BLOB_BYTES = 4096
SCANS_PER_ROUND = 4
_ROUNDS = 5

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_observability.json"


def _filled_db(domain_bits: int, seed: int = 0) -> BlobDatabase:
    db = BlobDatabase(domain_bits, BLOB_BYTES)
    rng = np.random.default_rng(seed)
    for slot in rng.choice(db.n_slots, size=min(64, db.n_slots), replace=False):
        db.set_slot(int(slot), bytes(rng.integers(0, 256, 512, dtype=np.uint8)))
    return db


def _best_of(fn, rounds: int = _ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_overhead(domain_bits: int = DOMAIN_BITS,
                     scans_per_round: int = SCANS_PER_ROUND,
                     rounds: int = _ROUNDS) -> dict:
    """Time raw vs span-wrapped scans; return the comparison record."""
    db = _filled_db(domain_bits)
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, size=db.n_slots, dtype=np.uint8).astype(bool)

    def run_raw():
        for _ in range(scans_per_round):
            db.xor_scan(bits)

    def run_span_off():
        for _ in range(scans_per_round):
            with span("pir2.shard_scan", shard=0):
                db.xor_scan(bits)

    def run_span_tracing():
        with tracing():
            for _ in range(scans_per_round):
                with span("pir2.shard_scan", shard=0):
                    db.xor_scan(bits)

    raw_s = _best_of(run_raw, rounds)
    span_off_s = _best_of(run_span_off, rounds)
    span_tracing_s = _best_of(run_span_tracing, rounds)
    return {
        "scan_mib": db.memory_bytes() / 2**20,
        "scans_per_round": scans_per_round,
        "raw_seconds": raw_s,
        "span_off_seconds": span_off_s,
        "span_tracing_seconds": span_tracing_s,
        "overhead_span_off": span_off_s / raw_s - 1.0,
        "overhead_span_tracing": span_tracing_s / raw_s - 1.0,
    }


@pytest.fixture(scope="module")
def results():
    data = {"experiment": "E10 observability overhead", "overhead": {}}
    yield data
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\n  wrote {RESULTS_PATH}")


def test_e10_span_overhead_on_scan_path(benchmark, results):
    measured = {}

    def run_all():
        measured.update(measure_overhead())
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("E10: span overhead on the E9 scan path", [
        ("scan size", f"{measured['scan_mib']:.0f} MiB per call"),
        ("raw", f"{measured['raw_seconds']*1e3:.2f} ms"),
        ("span (no tracer)",
         f"{measured['span_off_seconds']*1e3:.2f} ms "
         f"({measured['overhead_span_off']*100:+.2f}%)"),
        ("span (tracing)",
         f"{measured['span_tracing_seconds']*1e3:.2f} ms "
         f"({measured['overhead_span_tracing']*100:+.2f}%)"),
    ])
    results["overhead"] = measured
    # The always-on instrumentation must cost < 5% of scan throughput.
    assert measured["overhead_span_off"] < 0.05, measured
