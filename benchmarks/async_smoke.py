"""Smoke-run the E12 concurrency benchmark at toy sizes.

Tier-1 runs this (via ``tests/integration/test_async_bench_smoke.py``) so
both concurrency architectures — the selector-reactor session core and
the shared-memory multiprocess scan pool — are exercised against their
thread-based baselines on every test run. It records timings but gates
only on *structure* and *correctness*:

- the event-loop server must hold at least as many concurrent sessions as
  the threaded baseline while spending exactly **one** service thread
  (the threaded baseline spends one per session);
- pool answers must be bitwise identical to thread-engine answers.

Perf claims (engine speedup at ≥4 workers, the 10× sessions-per-thread
ratio at scale) live in ``benchmarks/bench_e12_async_sessions.py`` at
real sizes, where they are meaningful.

Run standalone::

    PYTHONPATH=src python benchmarks/async_smoke.py [--out BENCH_async_sessions.json]
"""

from __future__ import annotations

import argparse
import json
import socket
import time
from pathlib import Path

import numpy as np

from repro.core.zltp import messages as msg
from repro.core.zltp.modes import MODE_PIR2
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.serving import create_tcp_server, server_kinds
from repro.core.zltp.sockets import connect_tcp
from repro.core.zltp.wire import FrameDecoder, encode_frame
from repro.crypto.dpf import gen_dpf
from repro.pir.database import BlobDatabase
from repro.pir.engine import ScanExecutor
from repro.pir.keyword import KeywordIndex
from repro.pir.procpool import ProcScanPool
from repro.pir.sharding import ShardedDeployment

DOMAIN_BITS = 8
BLOB_BYTES = 256
PREFIX_BITS = 2
SESSIONS = 32
SALT = b"e12-smoke"

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_async_sessions.json"


def _build_logical(party: int = 0) -> ZltpServer:
    db = BlobDatabase(DOMAIN_BITS, BLOB_BYTES)
    index = KeywordIndex(db, probes=2, salt=SALT)
    for i in range(12):
        index.put(f"s{i}.com/p", f"e12-{i}".encode())
    return ZltpServer(db, modes=[MODE_PIR2], party=party, salt=SALT,
                      probes=2)


def _hello_roundtrip(address) -> bool:
    """One full hello over a fresh socket; returns negotiation success."""
    sock = socket.create_connection(address, timeout=10)
    try:
        sock.sendall(encode_frame(msg.encode_message(
            msg.ClientHello(["pir2"]))))
        sock.settimeout(10)
        decoder = FrameDecoder()
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return False
            frames = decoder.feed(chunk)
            if frames:
                return isinstance(msg.decode_message(frames[0]),
                                  msg.ServerHello)
    finally:
        sock.close()


def _measure_sessions(kind: str, n_sessions: int = SESSIONS) -> dict:
    """Hold ``n_sessions`` negotiated sessions open under one listener."""
    listener = create_tcp_server(kind, _build_logical())
    socks = []
    try:
        t0 = time.perf_counter()
        decoder_ok = 0
        for _ in range(n_sessions):
            sock = socket.create_connection(listener.address, timeout=10)
            sock.sendall(encode_frame(msg.encode_message(
                msg.ClientHello(["pir2"]))))
            socks.append(sock)
        # Read every hello reply so all sessions are truly negotiated.
        for sock in socks:
            sock.settimeout(10)
            decoder = FrameDecoder()
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                if decoder.feed(chunk):
                    decoder_ok += 1
                    break
        open_seconds = time.perf_counter() - t0
        deadline = time.monotonic() + 5
        while listener.active_connections < n_sessions and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        concurrent = listener.active_connections
        threads = listener.worker_count
        # The listener still does real work while holding them all.
        roundtrip_ok = _hello_roundtrip(listener.address)
        return {
            "kind": kind,
            "concurrent_sessions": concurrent,
            "negotiated_sessions": decoder_ok,
            "service_threads": threads,
            "sessions_per_thread": concurrent / threads if threads else None,
            "open_seconds": open_seconds,
            "get_roundtrip_ok": roundtrip_ok,
        }
    finally:
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        listener.stop()


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def _measure_engines() -> list:
    """Same sharded answers through the thread engine and the pool."""
    db = BlobDatabase(DOMAIN_BITS, BLOB_BYTES)
    rng = np.random.default_rng(0)
    for slot in range(0, db.n_slots, 5):
        db.set_slot(slot, bytes(rng.integers(0, 256, 64, dtype=np.uint8)))
    key0, _ = gen_dpf(7, DOMAIN_BITS, rng=np.random.default_rng(1))
    raw = key0.to_bytes()

    threaded = ShardedDeployment(db, PREFIX_BITS,
                                 executor=ScanExecutor(max_workers=2))
    thr_answer, thr_seconds = _timed(lambda: threaded.answer(0, raw))

    pool = ProcScanPool(max_workers=2)
    try:
        pooled = ShardedDeployment(db, PREFIX_BITS, executor=pool)
        pooled.answer(0, raw)  # warm-up: worker spawn + segment attach
        pool_answer, pool_seconds = _timed(lambda: pooled.answer(0, raw))
        fanout = pooled.front_ends[0].last_fanout
        return [
            {
                "engine": "threaded",
                "workers": threaded.executor.max_workers,
                "answer_seconds": thr_seconds,
                "engine_speedup": threaded.front_ends[0].last_fanout.speedup,
                "answers_match": True,
            },
            {
                "engine": "procpool",
                "workers": pool.max_workers,
                "answer_seconds": pool_seconds,
                "engine_speedup": fanout.speedup if fanout else None,
                "answers_match": pool_answer == thr_answer,
            },
        ]
    finally:
        pool.shutdown()


def run() -> dict:
    """Exercise both concurrency layers at toy sizes; return the record."""
    return {
        "experiment": "E12 async sessions + multiprocess scan workers "
                      "(smoke, toy sizes)",
        "sessions": [_measure_sessions(kind) for kind in server_kinds()],
        "engine": _measure_engines(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = []
    by_kind = {entry["kind"]: entry for entry in data["sessions"]}
    eventloop, threaded = by_kind["eventloop"], by_kind["threaded"]
    if eventloop["concurrent_sessions"] < threaded["concurrent_sessions"]:
        failures.append("event loop sustained fewer sessions than threads")
    if eventloop["service_threads"] != 1:
        failures.append("event loop spent more than one service thread")
    for entry in data["sessions"]:
        if not entry["get_roundtrip_ok"]:
            failures.append(f"{entry['kind']} failed the live roundtrip")
    for entry in data["engine"]:
        if not entry["answers_match"]:
            failures.append(f"{entry['engine']} answers diverged")
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
