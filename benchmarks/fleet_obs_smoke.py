"""E15 smoke — cost of the fleet observability plane.

Two measurements back PR 9's perf claims:

1. **Merged-registry overhead.** Each procpool worker now wraps every
   shard scan in a span and feeds a worker-local registry (histogram
   observe + counter inc), and the parent periodically merges the
   flushed snapshots. The scan loop is timed raw vs instrumented — the
   same 5% bar E10 set for span instrumentation (PR 4) applies to the
   full worker-side metrics path.
2. **Fleet scrape latency.** Four stats sidecars are scraped through
   :func:`repro.obs.fleet.scrape_fleet`; the per-server timeouts run
   concurrently, so four servers should cost about one round-trip, not
   four.

Tier-1 runs this via ``tests/integration/test_fleet_obs_smoke.py``.
Run standalone::

    PYTHONPATH=src python benchmarks/fleet_obs_smoke.py [--out BENCH_fleet_obs.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.obs.fleet import ScrapeTarget, scrape_fleet
from repro.obs.metrics import (
    MetricsRegistry,
    merge_into,
    relabel_snapshot,
    snapshot_total,
)
from repro.obs.trace import span
from repro.pir.database import BlobDatabase

# E9/E10-sized scans (2^13 x 4 KiB = 32 MiB per call): the metric ops
# run cache-cold after each scan — their true production state — so the
# scan must be production-sized too or the relative overhead doubles.
DOMAIN_BITS = 13
BLOB_BYTES = 4096
# 16 scans between parent polls is still far *more* polling than
# production (the parent polls per scrape, i.e. every few seconds of
# scanning) — and long enough rounds (~25 ms) that scheduler noise on a
# shared CI box stays small against the measured quantity.
SCANS_PER_ROUND = 16
ROUNDS = 5
FLEET_SIZE = 4
SCRAPE_ROUNDS = 3

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_fleet_obs.json"


def _filled_db(domain_bits: int, seed: int = 0) -> BlobDatabase:
    db = BlobDatabase(domain_bits, BLOB_BYTES)
    rng = np.random.default_rng(seed)
    for slot in rng.choice(db.n_slots, size=min(64, db.n_slots),
                           replace=False):
        db.set_slot(int(slot),
                    bytes(rng.integers(0, 256, 512, dtype=np.uint8)))
    return db


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_merge_overhead(domain_bits: int = DOMAIN_BITS,
                           scans_per_round: int = SCANS_PER_ROUND,
                           rounds: int = ROUNDS) -> dict:
    """Raw scans vs the worker loop's full metrics path.

    The instrumented loop is exactly what ``procpool._worker_main``
    runs per scan: a span for timing, a histogram observe, a counter
    inc — plus, once per round, the snapshot/relabel/merge the parent's
    polling adds on top.
    """
    db = _filled_db(domain_bits)
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, size=db.n_slots, dtype=np.uint8).astype(bool)

    registry = MetricsRegistry()
    hist = registry.histogram("procpool_scan_seconds",
                              "seconds per shard scan")
    scans = registry.counter("procpool_scans_total", "shard scans run")

    def run_raw():
        for _ in range(scans_per_round):
            db.xor_scan(bits)

    merged: dict = {}

    def run_instrumented():
        for _ in range(scans_per_round):
            with span("procpool.shard_scan", op="scan") as sp:
                db.xor_scan(bits)
            hist.observe(sp.elapsed, op="scan")
            scans.inc(op="scan")
        # The parent-side poll: cumulative flush, worker relabel, merge.
        merge_into(merged, relabel_snapshot(registry.snapshot(), worker=0))

    # Interleave the two variants round by round (rather than timing
    # all-raw then all-instrumented) so a transient load spike on a
    # shared CI box hits both paths alike; best-of then needs only one
    # quiet round apiece for a fair ratio.
    raw_s = instrumented_s = float("inf")
    for _ in range(rounds):
        raw_s = min(raw_s, _best_of(run_raw, 1))
        instrumented_s = min(instrumented_s, _best_of(run_instrumented, 1))
    return {
        "scan_mib": db.memory_bytes() / 2**20,
        "scans_per_round": scans_per_round,
        "raw_seconds": raw_s,
        "instrumented_seconds": instrumented_s,
        "overhead_instrumented": instrumented_s / raw_s - 1.0,
    }


def measure_fleet_scrape(fleet_size: int = FLEET_SIZE,
                         rounds: int = SCRAPE_ROUNDS) -> dict:
    """Stand up ``fleet_size`` stats sidecars and time a full scrape."""
    from repro.core.zltp.sockets import StatsTcpServer

    registry = MetricsRegistry()
    registry.counter("procpool_scans_total", "shard scans run").inc(8.0)
    snap = registry.snapshot()

    sidecars = [
        StatsTcpServer(lambda snap=snap: {"metrics": snap}, port=0)
        for _ in range(fleet_size)
    ]
    targets = [
        ScrapeTarget(server_id=f"bench/{i}", host=sidecar.address[0],
                     port=sidecar.address[1])
        for i, sidecar in enumerate(sidecars)
    ]
    try:
        fleet = scrape_fleet(targets)  # warm-up + correctness probe
        assert fleet.up_count == fleet_size
        assert snapshot_total(fleet.merged, "procpool_scans_total") == \
            8.0 * fleet_size
        scrape_s = _best_of(lambda: scrape_fleet(targets), rounds)
    finally:
        for sidecar in sidecars:
            sidecar.stop()
    return {
        "servers": fleet_size,
        "scrape_seconds": scrape_s,
        "scrape_seconds_per_server": scrape_s / fleet_size,
    }


def run() -> dict:
    return {
        "experiment": "E15 fleet observability (smoke, reduced sizes)",
        "overhead": measure_merge_overhead(),
        "fleet_scrape": measure_fleet_scrape(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    overhead = data["overhead"]["overhead_instrumented"]
    if overhead >= 0.05:
        print(f"OVERHEAD TOO HIGH: worker metrics path costs "
              f"{overhead*100:.2f}% >= 5%")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
