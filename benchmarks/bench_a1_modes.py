"""A1 (ablation) — §2.2's modes of operation, head to head.

The paper describes three trust/cost points: two-server PIR (linear scan,
non-collusion), single-server LWE PIR (linear work, bigger communication,
cryptographic assumption only), and enclave+ORAM (polylog work, hardware
assumption). This ablation measures all three serving the same blobs.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.zltp.modes import (
    EnclaveModeClient,
    EnclaveModeServer,
    LweModeClient,
    LweModeServer,
    Pir2ModeClient,
    Pir2ModeServer,
)
from repro.crypto.lwe import LweParams
from repro.pir.database import BlobDatabase

DOMAIN_BITS = 10
BLOB_BYTES = 1024


@pytest.fixture(scope="module")
def database():
    db = BlobDatabase(DOMAIN_BITS, BLOB_BYTES)
    rng = np.random.default_rng(0)
    for i in range(db.n_slots):
        db.set_slot(i, bytes(rng.integers(0, 256, 200, dtype=np.uint8)))
    return db


def test_a1_pir2_get(benchmark, database):
    server0 = Pir2ModeServer(database, 0)
    server1 = Pir2ModeServer(database, 1)
    client = Pir2ModeClient(DOMAIN_BITS, BLOB_BYTES)

    def get(slot=77):
        queries = client.queries_for_slot(slot)
        return client.decode([server0.answer(queries[0]),
                              server1.answer(queries[1])])

    record = benchmark(get)
    assert record == database.get_slot(77)
    queries = client.queries_for_slot(0)
    report("A1: pir2 (non-collusion assumption)", [
        ("upload per GET", f"{sum(len(q) for q in queries)} B"),
        ("download per GET", f"{2 * BLOB_BYTES} B"),
        ("server work", "full linear scan at BOTH servers"),
    ])


def test_a1_lwe_get(benchmark, database):
    server = LweModeServer(database, params=LweParams(n=64))
    client = LweModeClient(BLOB_BYTES, server.hello_params(), server.setup(),
                           rng=np.random.default_rng(1))

    def get(slot=77):
        queries = client.queries_for_slot(slot)
        return client.decode([server.answer(queries[0])])

    record = benchmark(get)
    assert record == database.get_slot(77)
    setup_bytes = sum(len(v) for v in server.setup().values())
    query = client.queries_for_slot(0)[0]
    report("A1: pir-lwe (cryptographic assumption only)", [
        ("one-time setup (hint) download", f"{setup_bytes} B"),
        ("upload per GET", f"{len(query)} B"),
        ("server work", "one matrix-vector pass (linear)"),
    ])
    assert setup_bytes > 10 * len(query)  # the mode's signature trade-off


def test_a1_enclave_get(benchmark, database):
    server = EnclaveModeServer(database, rng=np.random.default_rng(2))
    client = EnclaveModeClient(server.hello_params())

    def get(slot=77):
        queries = client.queries_for_slot(slot)
        return client.decode([server.answer(queries[0])])

    record = benchmark(get)
    assert record == database.get_slot(77)
    trace_before = len(server.enclave.trace)
    get(12)
    touches = len(server.enclave.trace) - trace_before
    report("A1: enclave-oram (hardware assumption)", [
        ("untrusted-memory touches per GET",
         f"{touches} = 2·(log2 N + 1), polylogarithmic"),
        ("upload per GET", f"{len(client.queries_for_slot(0)[0])} B"),
        ("server work", "ONE ORAM path, not a linear scan"),
    ])
    assert touches == 2 * (DOMAIN_BITS + 1)


def test_a1_work_scaling_contrast(benchmark, database):
    """PIR work grows linearly with the domain; enclave work grows
    logarithmically — the paper's §2.2 performance contrast."""
    import time

    def pir_seconds(bits):
        db = BlobDatabase(bits, 256)
        server = Pir2ModeServer(db, 0)
        client = Pir2ModeClient(bits, 256)
        query = client.queries_for_slot(0)[0]
        t0 = time.perf_counter()
        server.answer(query)
        return time.perf_counter() - t0

    def enclave_touches(bits):
        db = BlobDatabase(bits, 256)
        server = EnclaveModeServer(db, rng=np.random.default_rng(3))
        client = EnclaveModeClient(server.hello_params())
        before = len(server.enclave.trace)
        server.answer(client.queries_for_slot(0)[0])
        return len(server.enclave.trace) - before

    # Measure in the vectorised regime where Python per-call overhead no
    # longer masks the linear term (see E1b).
    results = benchmark.pedantic(
        lambda: {
            "pir": {bits: pir_seconds(bits) for bits in (14, 18)},
            "enclave": {bits: enclave_touches(bits) for bits in (14, 18)},
        },
        rounds=1, iterations=1,
    )
    pir_ratio = results["pir"][18] / results["pir"][14]
    enclave_ratio = results["enclave"][18] / results["enclave"][14]
    report("A1b: scaling 2^14 → 2^18 (16x data)", [
        ("pir2 time ratio (linear ⇒ ~16x)", f"{pir_ratio:.1f}x"),
        ("enclave touch ratio (log ⇒ ~1.27x)", f"{enclave_ratio:.2f}x"),
    ])
    assert pir_ratio > 3
    assert enclave_ratio < 1.5
