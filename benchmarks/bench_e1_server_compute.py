"""E1 — §5.1 "Server computation": per-request cost and its DPF/scan split.

Paper (1 GiB shard, domain 2^22, AVX C++): 167 ms per request = 64 ms DPF
evaluation + 103 ms data scan.

We measure the same request on the Python substrate at reduced domains and
extrapolate linearly (both stages are linear in the domain size). Absolute
numbers differ — Python vs AVX — and the *split* inverts at small blob
sizes (our vectorised scan is relatively cheaper than our Python-looped
DPF tree), which EXPERIMENTS.md discusses; what must hold is that both
stages exist, both scale linearly, and the request is scan+DPF and nothing
else.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.costmodel.estimator import PAPER_SHARD, measure_shard
from repro.crypto.dpf import gen_dpf
from repro.pir.database import BlobDatabase
from repro.pir.twoserver import TwoServerPirServer

DOMAIN_BITS = 12
BLOB_BYTES = 4096


@pytest.fixture(scope="module")
def shard():
    db = BlobDatabase(DOMAIN_BITS, BLOB_BYTES)
    rng = np.random.default_rng(0)
    for i in range(0, db.n_slots, 4):
        db.set_slot(i, bytes(rng.integers(0, 256, 64, dtype=np.uint8)))
    return TwoServerPirServer(db, party=0)


def test_e1_per_request_compute(benchmark, shard):
    key0, _ = gen_dpf(123, DOMAIN_BITS)
    raw = key0.to_bytes()
    benchmark(shard.answer, raw)

    _, timing = shard.answer_timed(raw)
    scale = (1 << PAPER_SHARD.domain_bits) / (1 << DOMAIN_BITS)
    report("E1: server computation per request", [
        (f"measured @2^{DOMAIN_BITS} (ms total / dpf / scan)",
         f"{timing.total_seconds*1e3:.1f} / {timing.dpf_seconds*1e3:.1f} / "
         f"{timing.scan_seconds*1e3:.1f}"),
        ("measured scan fraction", f"{timing.scan_fraction:.2f}"),
        (f"linear extrapolation to 2^22 (s total)",
         f"{timing.total_seconds*scale:.1f}"),
        ("paper @2^22 (ms total / dpf / scan)", "167 / 64 / 103"),
        ("paper scan fraction", f"{PAPER_SHARD.scan_fraction:.2f}"),
    ])
    assert timing.dpf_seconds > 0 and timing.scan_seconds > 0


def test_e1_both_stages_scale_linearly(benchmark, shard):
    """Per-request time grows linearly with the domain.

    Python per-call overhead dominates below ~2^14, so we measure in the
    vectorised regime (2^14..2^18), where 16x more data costs close to
    16x more time.
    """

    def run_at(bits):
        db = BlobDatabase(bits, 256)
        for i in range(0, db.n_slots, 8):
            db.set_slot(i, b"fill")
        server = TwoServerPirServer(db, party=0)
        key0, _ = gen_dpf(1, bits)
        raw = key0.to_bytes()
        times = []
        for _ in range(2):
            _, timing = server.answer_timed(raw)
            times.append((timing.dpf_seconds, timing.scan_seconds))
        dpf = min(t[0] for t in times)
        scan = min(t[1] for t in times)
        return dpf, scan

    results = benchmark.pedantic(
        lambda: {bits: run_at(bits) for bits in (14, 16, 18)},
        rounds=1, iterations=1,
    )
    dpf_ratio = results[18][0] / results[14][0]
    report("E1b: linear scaling of the request stages", [
        ("dpf time ratio 2^18 / 2^14 (ideal 16)", f"{dpf_ratio:.1f}"),
        ("dpf ms at 2^14 / 2^16 / 2^18",
         " / ".join(f"{results[b][0]*1e3:.1f}" for b in (14, 16, 18))),
        ("scan ms at 2^14 / 2^16 / 2^18",
         " / ".join(f"{results[b][1]*1e3:.2f}" for b in (14, 16, 18))),
    ])
    assert 3 < dpf_ratio < 40  # linear in domain size, generous slack


def test_e1_scan_share_grows_with_blob_size(benchmark):
    """The paper's scan-dominated regime is the big-blob/big-data regime:
    as blobs grow, the scan share of the request grows toward it."""

    def scan_fraction(blob_bytes):
        db = BlobDatabase(11, blob_bytes)
        rng = np.random.default_rng(1)
        for i in range(db.n_slots):
            db.set_slot(i, bytes(rng.integers(0, 256, min(64, blob_bytes),
                                              dtype=np.uint8)))
        server = TwoServerPirServer(db, party=0)
        key0, _ = gen_dpf(7, 11)
        raw = key0.to_bytes()
        best = None
        for _ in range(3):
            _, timing = server.answer_timed(raw)
            if best is None or timing.total_seconds < best.total_seconds:
                best = timing
        return best.scan_fraction

    fractions = benchmark.pedantic(
        lambda: [scan_fraction(size) for size in (256, 4096, 32768)],
        rounds=1, iterations=1,
    )
    report("E1c: scan share vs blob size", [
        ("scan fraction at 256 B / 4 KiB / 32 KiB blobs",
         " / ".join(f"{f:.2f}" for f in fractions)),
        ("paper (4 KiB blobs, AVX scan)", "0.62"),
    ])
    assert fractions[-1] > fractions[0]
