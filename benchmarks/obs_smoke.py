"""Smoke-run the E10 observability-overhead measurement at reduced sizes.

Tier-1 runs this (via ``tests/integration/test_obs_smoke.py``) so the
overhead claim — span-wrapped scans within 5% of raw scans — is checked
on every test run. The scan is kept large enough (16 MiB) that a scan
takes milliseconds while a span costs microseconds, so the 5% bar holds
with wide margin even on noisy CI machines; the real E9-sized numbers
live in ``benchmarks/bench_e10_obs_overhead.py``.

Run standalone::

    PYTHONPATH=src python benchmarks/obs_smoke.py [--out BENCH_observability.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from benchmarks.bench_e10_obs_overhead import measure_overhead

DOMAIN_BITS = 12                 # 2^12 x 4 KiB = 16 MiB scanned per call
SCANS_PER_ROUND = 4
ROUNDS = 3

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_observability.json"


def run() -> dict:
    """Measure span overhead at smoke sizes; return the results record."""
    measured = measure_overhead(domain_bits=DOMAIN_BITS,
                                scans_per_round=SCANS_PER_ROUND,
                                rounds=ROUNDS)
    return {
        "experiment": "E10 observability overhead (smoke, reduced sizes)",
        "overhead": measured,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    overhead = data["overhead"]["overhead_span_off"]
    if overhead >= 0.05:
        print(f"OVERHEAD TOO HIGH: span (no tracer) costs "
              f"{overhead*100:.2f}% >= 5%")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
