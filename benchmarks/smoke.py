"""Smoke-run the E9 scan-engine benchmark at toy sizes.

Tier-1 runs this (via ``tests/integration/test_bench_smoke.py``) so the
benchmark code path — deployment construction, engine fan-out, single-pass
batching, JSON emission — is exercised on every test run without the real
E9 sizes. It records timings but asserts only *correctness* (the engine
paths must be bitwise identical to the baselines); perf claims live in
``benchmarks/bench_e9_parallel_scan.py`` at real sizes, where they are
meaningful.

Run standalone::

    PYTHONPATH=src python benchmarks/smoke.py [--out BENCH_parallel_scan.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.crypto.dpf import gen_dpf
from repro.pir.database import BlobDatabase
from repro.pir.engine import ScanExecutor
from repro.pir.sharding import ShardedDeployment

DOMAIN_BITS = 8
BLOB_BYTES = 256
PREFIX_BITS = 2
BATCH = 8

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_parallel_scan.json"


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def run() -> dict:
    """Exercise the engine paths at toy sizes; return the results record."""
    db = BlobDatabase(DOMAIN_BITS, BLOB_BYTES)
    rng = np.random.default_rng(0)
    for slot in range(0, db.n_slots, 5):
        db.set_slot(slot, bytes(rng.integers(0, 256, 64, dtype=np.uint8)))

    key0, _ = gen_dpf(7, DOMAIN_BITS, rng=np.random.default_rng(1))
    raw = key0.to_bytes()

    sequential = ShardedDeployment(db, PREFIX_BITS, parallel=False)
    parallel = ShardedDeployment(db, PREFIX_BITS, executor=ScanExecutor())
    seq_answer, seq_s = _timed(lambda: sequential.answer(0, raw))
    par_answer, par_s = _timed(lambda: parallel.answer(0, raw))
    fanout = parallel.front_ends[0].last_fanout

    select = rng.integers(0, 2, size=(BATCH, db.n_slots),
                          dtype=np.uint8).astype(bool)
    single, single_s = _timed(lambda: db.xor_scan_batch(select))
    per_row, per_row_s = _timed(lambda: db.xor_scan_batch_per_row(select))

    return {
        "experiment": "E9 parallel scan engine (smoke, toy sizes)",
        "fanout": [{
            "shards": 1 << PREFIX_BITS,
            "sequential_seconds": seq_s,
            "parallel_seconds": par_s,
            "speedup": seq_s / par_s if par_s else None,
            "engine_speedup": fanout.speedup if fanout else None,
            "answers_match": par_answer == seq_answer,
        }],
        "batch": [{
            "batch": BATCH,
            "single_pass_seconds": single_s,
            "per_row_seconds": per_row_s,
            "speedup": per_row_s / single_s if single_s else None,
            "answers_match": single == per_row,
        }],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    for section in ("fanout", "batch"):
        for entry in data[section]:
            if not entry["answers_match"]:
                print(f"MISMATCH in {section}: {entry}")
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
