"""E12 — outgrowing thread-per-everything: reactor sessions + process scans.

Two claims from this repo's concurrency work (no direct paper numbers —
the paper's §5.2 front-end is a fleet of real machines; here the win is
showing the *shape* on one host):

1. One selector-reactor thread sustains at least 10× the sessions-per-
   service-thread of the thread-per-connection baseline at equal session
   count — because its per-session cost is a ~200-byte connection record,
   not a thread stack — while still answering live requests.
2. The shared-memory multiprocess scan pool beats the thread-pool engine
   on fan-out wall time once real cores are available: with ≥4 workers on
   ≥4 cores, ``engine_speedup`` (summed busy over wall) must exceed 1.5 —
   the number the GIL pins near 1.0 for the thread engine (E9's finding).

Measured numbers land in ``BENCH_async_sessions.json`` at the repo root.
"""

import json
import socket
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.zltp import messages as msg
from repro.core.zltp.modes import MODE_PIR2
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.serving import create_tcp_server, server_kinds
from repro.core.zltp.wire import FrameDecoder, encode_frame
from repro.crypto.dpf import gen_dpf
from repro.pir.database import BlobDatabase
from repro.pir.engine import ScanExecutor, available_cpus
from repro.pir.keyword import KeywordIndex
from repro.pir.procpool import ProcScanPool
from repro.pir.sharding import ShardedDeployment

SESSIONS = 400                   # concurrent negotiated sessions per kind
ENGINE_DOMAIN_BITS = 14          # 2^14 x 4 KiB = 64 MiB logical database
ENGINE_PREFIX_BITS = 2           # one shard per worker at 4 workers
BLOB_BYTES = 4096
SALT = b"e12-bench"
_ROUNDS = 3

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_async_sessions.json"


def _build_logical() -> ZltpServer:
    db = BlobDatabase(8, 256)
    index = KeywordIndex(db, probes=2, salt=SALT)
    for i in range(12):
        index.put(f"s{i}.com/p", f"e12-{i}".encode())
    return ZltpServer(db, modes=[MODE_PIR2], party=0, salt=SALT, probes=2)


def _best_of(fn, rounds: int = _ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _negotiate_many(address, count: int):
    """Open ``count`` sockets, send hellos, read every ServerHello."""
    socks = []
    hello = encode_frame(msg.encode_message(msg.ClientHello(["pir2"])))
    for _ in range(count):
        sock = socket.create_connection(address, timeout=30)
        sock.sendall(hello)
        socks.append(sock)
    for sock in socks:
        sock.settimeout(30)
        decoder = FrameDecoder()
        while True:
            chunk = sock.recv(65536)
            if not chunk or decoder.feed(chunk):
                break
    return socks


@pytest.fixture(scope="module")
def results():
    data = {"experiment": "E12 async sessions + multiprocess scan workers",
            "sessions": [], "engine": []}
    yield data
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\n  wrote {RESULTS_PATH}")


def test_e12_sessions_per_thread(benchmark, results):
    rows = []
    measured = []

    def run_all():
        measured.clear()
        for kind in server_kinds():
            listener = create_tcp_server(kind, _build_logical())
            baseline_threads = threading.active_count()
            try:
                t0 = time.perf_counter()
                socks = _negotiate_many(listener.address, SESSIONS)
                open_seconds = time.perf_counter() - t0
                deadline = time.monotonic() + 10
                while listener.active_connections < SESSIONS and \
                        time.monotonic() < deadline:
                    time.sleep(0.02)
                threads = listener.worker_count
                measured.append({
                    "kind": kind,
                    "concurrent_sessions": listener.active_connections,
                    "service_threads": threads,
                    "sessions_per_thread":
                        listener.active_connections / threads,
                    "process_thread_delta":
                        threading.active_count() - baseline_threads,
                    "open_seconds": open_seconds,
                })
                for sock in socks:
                    sock.close()
            finally:
                listener.stop()
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for m in measured:
        rows.append((
            f"{m['kind']}: {m['concurrent_sessions']} sessions",
            f"{m['service_threads']} service thread(s), "
            f"{m['sessions_per_thread']:.0f} sessions/thread, "
            f"opened in {m['open_seconds']:.2f} s",
        ))
    report("E12: concurrent sessions per service thread", rows)
    results["sessions"] = measured
    by_kind = {m["kind"]: m for m in measured}
    # Shape claim 1: ≥10x sessions-per-thread at equal session count.
    assert (by_kind["eventloop"]["concurrent_sessions"]
            >= by_kind["threaded"]["concurrent_sessions"])
    assert (by_kind["eventloop"]["sessions_per_thread"]
            >= 10 * by_kind["threaded"]["sessions_per_thread"])
    assert by_kind["eventloop"]["service_threads"] == 1


@pytest.mark.skipif(available_cpus() < 4,
                    reason="engine speedup claim needs >= 4 real cores")
def test_e12_process_pool_vs_thread_pool(benchmark, results):
    workers = min(4, available_cpus())
    db = BlobDatabase(ENGINE_DOMAIN_BITS, BLOB_BYTES)
    rng = np.random.default_rng(0)
    for slot in rng.choice(db.n_slots, size=64, replace=False):
        db.set_slot(int(slot), bytes(rng.integers(0, 256, 512,
                                                  dtype=np.uint8)))
    key0, _ = gen_dpf(5, ENGINE_DOMAIN_BITS, rng=np.random.default_rng(1))
    raw = key0.to_bytes()

    rows = []
    measured = []

    def run_all():
        measured.clear()
        threaded = ShardedDeployment(db, ENGINE_PREFIX_BITS,
                                     executor=ScanExecutor(
                                         max_workers=workers))
        pool = ProcScanPool(max_workers=workers)
        try:
            pooled = ShardedDeployment(db, ENGINE_PREFIX_BITS, executor=pool)
            assert pooled.answer(0, raw) == threaded.answer(0, raw)
            thr_seconds = _best_of(lambda: threaded.answer(0, raw))
            thr_fanout = threaded.front_ends[0].last_fanout
            pool_seconds = _best_of(lambda: pooled.answer(0, raw))
            pool_fanout = pooled.front_ends[0].last_fanout
            measured.extend([
                {"engine": "threaded", "workers": workers,
                 "answer_seconds": thr_seconds,
                 "engine_speedup": thr_fanout.speedup,
                 "answers_match": True},
                {"engine": "procpool", "workers": workers,
                 "answer_seconds": pool_seconds,
                 "engine_speedup": pool_fanout.speedup,
                 "answers_match": True},
            ])
        finally:
            pool.shutdown()
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for m in measured:
        rows.append((
            f"{m['engine']} x{m['workers']}",
            f"answer {m['answer_seconds']*1e3:.1f} ms, "
            f"engine_speedup {m['engine_speedup']:.2f}",
        ))
    report("E12: process pool vs thread pool fan-out", rows)
    results["engine"] = measured
    by_engine = {m["engine"]: m for m in measured}
    # Shape claim 2: real cores actually overlap — the number the GIL
    # pins near 1.0 for threads must clear 1.5 for processes.
    assert by_engine["procpool"]["engine_speedup"] > 1.5
    assert (by_engine["procpool"]["answer_seconds"]
            < by_engine["threaded"]["answer_seconds"])
