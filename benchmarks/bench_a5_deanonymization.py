"""A5 (ablation) — §6's deanonymization comparison.

"Another way to eliminate these traffic-analysis attacks would be for the
user to connect to a CDN distributing fixed-size webpages (similar to
lightweb) via an anonymizing proxy. A serious drawback of this approach is
that the CDN knows all webpage requests for many users and so can run a
deanonymization attack to map users to requests [43, 44]. The ZLTP
protocol defends against both traffic-analysis and deanonymization
attacks."

We run the SimAttack-style profile-linking attacker against both designs.
"""

import pytest

from benchmarks.conftest import report
from repro.netsim.deanon import run_linking_experiment

N_USERS = 12


def test_a5_proxy_design_fails(benchmark):
    accuracy = benchmark(run_linking_experiment, N_USERS, 200, 3, 2, True, 7)
    report("A5: CDN-visible requests (fixed-size pages over a proxy)", [
        ("linking accuracy", f"{accuracy:.1%}"),
        ("chance", f"{1 / N_USERS:.1%}"),
        ("paper's verdict", "'a serious drawback' — the CDN deanonymizes"),
    ])
    assert accuracy > 0.8


def test_a5_zltp_resists(benchmark):
    accuracy = benchmark(run_linking_experiment, N_USERS, 200, 3, 2, False, 7)
    report("A5b: opaque ZLTP requests", [
        ("linking accuracy (volume only)", f"{accuracy:.1%}"),
        ("chance", f"{1 / N_USERS:.1%}"),
        ("residual signal", "request volume (the §2.1 non-goal), not identity"),
    ])
    assert accuracy < 0.45


def test_a5_cover_traffic_removes_residual_volume(benchmark):
    """Composing the A4 fixed fetch grid removes even the volume signal:
    every user emits the same number of requests per epoch."""
    import numpy as np

    from repro.netsim.deanon import ProfileLinkingAttack, make_population

    rng = np.random.default_rng(11)
    users = make_population(N_USERS, 200, seed=12)
    grid_requests = 64  # the schedule's fixed daily page-view count

    def run():
        attacker = ProfileLinkingAttack(200, observe_pages=False)
        for user in users:
            for _ in range(3):
                # Under the schedule the observable stream is exactly the
                # grid: fixed length, opaque contents.
                attacker.observe_training(user.user_id, [0] * grid_requests)
        trials = [(user.user_id, [0] * grid_requests) for user in users]
        return attacker.accuracy(trials)

    accuracy = benchmark(run)
    report("A5d: ZLTP + the A4 cover-traffic schedule", [
        ("linking accuracy", f"{accuracy:.1%}"),
        ("chance", f"{1 / N_USERS:.1%}"),
        ("note", "fixed grid ⇒ identical volume ⇒ nothing left to link"),
    ])
    assert accuracy <= 1 / N_USERS + 0.01


def test_a5_gap(benchmark):
    def both():
        return (run_linking_experiment(N_USERS, 200, 3, 2, True, 9),
                run_linking_experiment(N_USERS, 200, 3, 2, False, 9))

    proxy, zltp = benchmark(both)
    report("A5c: the design gap", [
        ("proxy-design linking", f"{proxy:.1%}"),
        ("ZLTP linking", f"{zltp:.1%}"),
        ("ratio", f"{proxy / max(zltp, 1e-9):.1f}x"),
    ])
    assert proxy > 2 * zltp
