"""E5 — §4 "Who pays?": the ~$15/month per-user estimate.

Paper: "For users who make on average 50 daily page requests where each
page request results in 5 GET requests for data blobs, we estimate that
the monthly per-user cost ... to be roughly $15 (comparable to the cost
of a Netflix membership)."

We reproduce it twice: straight from the profile constants, and from a
generated month of browsing sessions (Poisson days, Zipf sites) priced at
the Table 2 request cost.
"""

import pytest

from benchmarks.conftest import report
from repro.costmodel.billing import UserProfile, monthly_user_cost
from repro.costmodel.datasets import C4
from repro.costmodel.estimator import estimate_deployment
from repro.workloads.sessions import BrowsingProfile, SessionGenerator


def test_e5_constant_profile(benchmark):
    request_cost = estimate_deployment(C4).request_cost_usd
    monthly = benchmark(monthly_user_cost, request_cost, UserProfile())
    report("E5: monthly per-user cost (§4 constants)", [
        ("request cost (from Table 2 pipeline)", f"${request_cost:.5f}"),
        ("50 pages/day x 5 GETs x 30 days", f"{UserProfile().gets_per_month():.0f} GETs"),
        ("monthly cost (ours)", f"${monthly:.2f}"),
        ("monthly cost (paper)", "~$15, 'a Netflix membership'"),
    ])
    assert 10 < monthly < 25


def test_e5_simulated_month(benchmark):
    request_cost = estimate_deployment(C4).request_cost_usd
    generator = SessionGenerator(
        100, 50, profile=BrowsingProfile(pages_per_day=50, gets_per_page=5),
        seed=11,
    )

    def simulate():
        month = generator.month(30)
        return generator.data_gets(month), generator.code_gets_upper_bound(month)

    data_gets, code_gets = benchmark(simulate)
    data_cost = data_gets * request_cost
    report("E5b: monthly cost from simulated sessions", [
        ("data GETs in the month", f"{data_gets}"),
        ("monthly data cost", f"${data_cost:.2f}"),
        ("code GETs upper bound (cold cache daily)", f"{code_gets}"),
        ("paper", "~$15/month"),
    ])
    assert data_cost == pytest.approx(
        monthly_user_cost(request_cost, UserProfile()), rel=0.15
    )


def test_e5_replayed_workload(benchmark):
    """Cross-check with *real protocol traffic*: a reduced-scale workload
    replayed through an actual browser over the simulated network, then
    scaled by the measured GET rate."""
    from repro.workloads.replay import run_replay

    report_data = benchmark.pedantic(
        lambda: run_replay(n_sites=5, pages_per_site=6, n_days=2,
                           pages_per_day=8.0, fetch_budget=3, seed=21),
        rounds=1, iterations=1,
    )
    request_cost = estimate_deployment(C4).request_cost_usd
    measured_monthly = report_data.monthly_cost(request_cost)
    # Scale from the reduced profile (8 pages x 3 GETs) to the paper's
    # (50 x 5): GET volume is the only driver.
    scaled = measured_monthly * (50 * 5) / (8 * 3)
    report("E5c: monthly cost from a replayed real-protocol workload", [
        ("visits replayed", f"{report_data.n_visits} over {report_data.n_days} days"),
        ("data GETs (==visits x budget)", f"{report_data.data_gets}"),
        ("code-cache hit rate", f"{report_data.code_cache_hit_rate():.0%}"),
        ("scaled to the §4 profile", f"${scaled:.2f}/month"),
        ("paper", "~$15/month"),
        ("adversary", f"{report_data.adversary_events} page-view events, "
                      f"{report_data.distinct_signatures} distinct signatures"),
    ])
    assert report_data.data_gets == report_data.n_visits * 3
    assert 5 < scaled < 40
    assert report_data.distinct_signatures <= 2
