"""E6 — §5.2 "Distributing DPF evaluation": the front-end tree split.

Paper: "the front-end server can build the top part of the tree and then,
for each sub-tree, send the sub-tree root to the corresponding server. The
cost for the data server of completing the DPF evaluation from that point
is the same as the cost of evaluating the DPF key for the smaller domain."

Checks, at 2^16 over {4, 16, 64} shards: (1) recombined shard answers are
bit-identical to the unsharded answer, (2) per-shard DPF time tracks the
smaller domain (≈ total/n_shards), and (3) the front-end split is cheap.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.crypto.dpf import eval_dpf_full, gen_dpf
from repro.crypto.dpf_distributed import eval_subkey_full, split_dpf_key

DOMAIN_BITS = 16


@pytest.fixture(scope="module")
def key():
    key0, _ = gen_dpf(12345, DOMAIN_BITS, rng=np.random.default_rng(0))
    return key0


def test_e6_split_correctness(benchmark, key):
    def split_and_recombine():
        subkeys = split_dpf_key(key, 4)
        return np.concatenate([eval_subkey_full(s) for s in subkeys])

    recombined = benchmark(split_and_recombine)
    full = eval_dpf_full(key)
    assert (recombined == full).all()
    report("E6: distributed evaluation correctness", [
        ("16 shards recombine to the unsharded evaluation", "bit-identical"),
    ])


def test_e6_shard_work_scales_with_subdomain(benchmark, key):
    def measure(prefix_bits):
        subkeys = split_dpf_key(key, prefix_bits)
        t0 = time.perf_counter()
        eval_subkey_full(subkeys[0])
        per_shard = time.perf_counter() - t0
        t0 = time.perf_counter()
        for subkey in subkeys:
            eval_subkey_full(subkey)
        total = time.perf_counter() - t0
        return per_shard, total

    results = benchmark.pedantic(
        lambda: {1 << p: measure(p) for p in (2, 4, 6)},
        rounds=1, iterations=1,
    )
    t0 = time.perf_counter()
    eval_dpf_full(key)
    unsharded = time.perf_counter() - t0

    rows = [("unsharded full evaluation", f"{unsharded*1e3:.1f} ms")]
    for n_shards, (per_shard, total) in results.items():
        rows.append((
            f"{n_shards} shards: per-shard / all-shards",
            f"{per_shard*1e3:.2f} ms / {total*1e3:.1f} ms "
            f"(ideal per-shard {unsharded/n_shards*1e3:.2f} ms)",
        ))
    report("E6b: per-shard work equals the smaller-domain evaluation", rows)
    # Per-shard time shrinks as shards multiply (generous constant-factor
    # slack for per-call overhead at tiny sub-domains).
    assert results[64][0] < results[4][0]
    # Total work stays within a constant factor of the unsharded scan.
    assert results[4][1] < 4 * unsharded


def test_e6_frontend_split_is_cheap(benchmark, key):
    split_seconds = benchmark(lambda: _time(split_dpf_key, key, 6))
    full_seconds = _time(eval_dpf_full, key)
    report("E6c: front-end cost", [
        ("front-end split to 64 sub-trees", f"{split_seconds*1e3:.2f} ms"),
        ("one full-domain evaluation", f"{full_seconds*1e3:.1f} ms"),
    ])
    assert split_seconds < full_seconds


def _time(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
