"""A6 (ablation) — ORAM health: stash growth and recursion overhead.

The enclave mode's viability (§2.2) rests on two Path ORAM facts this
ablation verifies empirically: the trusted stash stays O(log N) under
sustained load (the classic Stefanov et al. result — a growing stash would
eventually overflow enclave memory), and recursing the position map trades
a modest constant-factor access overhead for trusted state that no longer
scales with the store.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.oram.path_oram import PathOram
from repro.oram.position_map import RecursivePathOram


def test_a6_stash_stays_logarithmic(benchmark):
    def stash_sweep():
        maxima = {}
        for bits in (5, 7, 9):
            oram = PathOram(bits, 16, rng=np.random.default_rng(bits))
            workload = np.random.default_rng(100 + bits)
            for _ in range(800):
                oram.write(int(workload.integers(0, oram.capacity)), b"x" * 16)
            maxima[bits] = oram.max_stash_seen
        return maxima

    maxima = benchmark.pedantic(stash_sweep, rounds=1, iterations=1)
    report("A6: max stash after 800 writes", [
        (f"N = 2^{bits}", f"{stash} blocks") for bits, stash in maxima.items()
    ])
    # O(log N): far below capacity at every size (never, say, N/2).
    for bits, stash in maxima.items():
        assert stash <= 4 * (bits + 1)


def test_a6_hot_address_same_stash_behaviour(benchmark):
    """Stash behaviour must not depend on the access pattern either."""

    def run(pattern):
        oram = PathOram(7, 16, rng=np.random.default_rng(7))
        for i in range(600):
            address = 5 if pattern == "hot" else i % 128
            oram.write(address, b"y" * 16)
        return oram.max_stash_seen

    hot = benchmark.pedantic(lambda: run("hot"), rounds=1, iterations=1)
    scan = run("scan")
    report("A6b: stash vs access pattern (2^7 blocks, 600 writes)", [
        ("single hot address", f"{hot} blocks"),
        ("sequential scan", f"{scan} blocks"),
    ])
    assert hot <= 4 * 8 and scan <= 4 * 8


def test_a6_recursion_overhead(benchmark):
    def build_and_measure():
        rows = {}
        flat = PathOram(12, 32, rng=np.random.default_rng(1))
        flat.write(0, b"z" * 32)
        rows["flat"] = (2 * 13, "O(N) map entries")
        recursive = RecursivePathOram(12, 32, entries_per_block=16,
                                      min_trusted_entries=16,
                                      rng=np.random.default_rng(2))
        recursive.write(0, b"z" * 32)
        rows["recursive"] = (recursive.accesses_per_op(),
                             "<= 16 trusted map entries")
        return rows

    rows = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    report("A6c: flat vs recursive position map (2^12 blocks)", [
        (name, f"{touches} bucket touches/op, {state}")
        for name, (touches, state) in rows.items()
    ])
    flat_touches = rows["flat"][0]
    recursive_touches = rows["recursive"][0]
    assert flat_touches < recursive_touches < 4 * flat_touches
