"""Smoke-run the E13 lint-performance benchmark over ``src/``.

Tier-1 runs this (via ``tests/integration/test_lint_bench_smoke.py``) so
the whole-program analyzer's summary cache is exercised against a cold
run on every test run. It records timings but gates only on *structure*
and *correctness*:

- the cached run must produce findings byte-identical to the cold run
  (the cache is an optimisation, never an answer change);
- both runs must leave ``src/`` at zero unsuppressed findings;
- the cached run must revalidate every module from the cache (no
  re-extraction when nothing changed).

Wall-clock numbers are recorded for EXPERIMENTS.md but never asserted
as ratios — tier-1 stays deterministic on any machine.

Run standalone::

    PYTHONPATH=src python benchmarks/lint_smoke.py [--out BENCH_lint.json]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.analysis.report import render_json
from repro.analysis.rules import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_lint.json"
SRC = REPO_ROOT / "src"


def _timed_lint(cache_path: str) -> dict:
    """One full ``analyze_paths`` over src/ against ``cache_path``."""
    t0 = time.perf_counter()
    result = analyze_paths([str(SRC)], cache_path=cache_path)
    seconds = time.perf_counter() - t0
    report = render_json(result.findings, result.suppressed,
                         result.baselined, len(result.files))
    return {
        "seconds": seconds,
        "files": len(result.files),
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "report": report,
    }


def run() -> dict:
    """Cold vs cached whole-program lint over src/; return the record."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = str(Path(tmp) / "summaries.json")
        cold = _timed_lint(cache)
        cached = _timed_lint(cache)
    identical = cold["report"] == cached["report"]
    record = {
        "experiment": "E13 whole-program lint: cold vs summary-cached "
                      "runs over src/",
        "cold": {k: v for k, v in cold.items() if k != "report"},
        "cached": {k: v for k, v in cached.items() if k != "report"},
        "reports_identical": identical,
        "speedup": (cold["seconds"] / cached["seconds"]
                    if cached["seconds"] else None),
    }
    return record


def main(argv=None) -> int:
    """CLI entry point; returns 0 when every gate holds."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = []
    if not data["reports_identical"]:
        failures.append("cached findings differ from the cold run")
    for leg in ("cold", "cached"):
        if data[leg]["findings"]:
            failures.append(f"{leg} run left unsuppressed findings in src/")
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
