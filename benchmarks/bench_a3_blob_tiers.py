"""A3 (ablation) — blob-size economics and the design choices of §3.1/§3.5.

Two design decisions get measured:

1. **Code/data split** (§3.1): "The separation of page content into code
   blobs and data blobs is primarily a performance optimization ...
   reduces the amount of data stored at the CDN", and hence the linear
   scan. We compare a universe with shared per-domain code against one
   that inlines code into every page.
2. **Blob-size tiers** (§3.5): scan cost per request as the fixed blob
   size grows — why a CDN would tier small/medium/large universes rather
   than serve everything at the largest size.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.costmodel.datasets import DatasetSpec
from repro.costmodel.estimator import estimate_deployment
from repro.crypto.dpf import gen_dpf
from repro.pir.database import BlobDatabase
from repro.pir.twoserver import TwoServerPirServer

BLOB_SIZES = (1024, 2048, 4096, 8192, 16384)


def test_a3_scan_cost_vs_blob_size(benchmark):
    def scan_ms(blob_bytes):
        db = BlobDatabase(10, blob_bytes)
        rng = np.random.default_rng(0)
        for i in range(db.n_slots):
            db.set_slot(i, bytes(rng.integers(0, 256, 64, dtype=np.uint8)))
        server = TwoServerPirServer(db, party=0)
        key0, _ = gen_dpf(3, 10)
        raw = key0.to_bytes()
        best = None
        for _ in range(3):
            _, timing = server.answer_timed(raw)
            scan = timing.scan_seconds
            best = scan if best is None else min(best, scan)
        return best * 1e3

    times = benchmark.pedantic(
        lambda: {size: scan_ms(size) for size in BLOB_SIZES},
        rounds=1, iterations=1,
    )
    report("A3: per-request scan cost vs fixed blob size (2^10 blobs)", [
        (f"{size} B blobs", f"{ms:.2f} ms scan") for size, ms in times.items()
    ])
    # Bigger blobs -> more bytes scanned -> more time; motivates tiering.
    assert times[BLOB_SIZES[-1]] > times[BLOB_SIZES[0]]


def test_a3_tier_cost_model(benchmark):
    """Cost of a 10M-page universe at each tier's fixed page size."""

    def tier_costs():
        costs = {}
        for size in (1024, 4096, 16384):
            dataset = DatasetSpec(f"tier-{size}", 10_000_000 * size,
                                  10_000_000, size)
            costs[size] = estimate_deployment(dataset).request_cost_usd
        return costs

    costs = benchmark(tier_costs)
    report("A3b: request cost per tier (10M pages each)", [
        (f"{size} B tier", f"${cost:.5f}/request")
        for size, cost in costs.items()
    ])
    assert costs[16384] > costs[1024]  # the §3.5 trade-off is real


def test_a3_code_data_split_saves_storage(benchmark):
    """Shared code blobs vs code inlined into every page."""
    code_bytes = 8192     # one domain program
    page_bytes = 900      # the paper's average page
    pages_per_site = 200
    n_sites = 50

    def storage():
        split = n_sites * code_bytes + n_sites * pages_per_site * page_bytes
        inlined = n_sites * pages_per_site * (page_bytes + code_bytes)
        return split, inlined

    split, inlined = benchmark(storage)
    report("A3c: the §3.1 code/data split", [
        ("CDN bytes with shared code blobs", f"{split/1e6:.1f} MB"),
        ("CDN bytes with code inlined per page", f"{inlined/1e6:.1f} MB"),
        ("scan-cost multiplier avoided", f"{inlined/split:.1f}x"),
    ])
    assert inlined > 5 * split
