"""E4 — Table 2: estimated costs of running ZLTP on C4 and Wikipedia.

Paper row (C4):        305 GiB | 360M | 0.9 KiB | 204 vCPU-s | $0.002 | 15.9 KiB
Paper row (Wikipedia):  21 GiB |  60M | 0.4 KiB |  10 vCPU-s | $0.0001 | 14.9 KiB

We regenerate both rows through the paper's own estimation pipeline
(per-GiB shard cost × shard count × 2 vCPUs × 2 servers, priced at
c5.large), first with the paper's shard constants and then with constants
measured on this machine. Note: the Wikipedia vCPU number derived from the
paper's own published constants is ~14, not 10 — the ratio C4/Wikipedia
(305/21 ≈ 14.5×) is fixed by the shard counts; EXPERIMENTS.md discusses
the discrepancy.
"""

import pytest

from benchmarks.conftest import report
from repro.costmodel.datasets import C4, WIKIPEDIA
from repro.costmodel.estimator import (
    PAPER_SHARD,
    estimate_deployment,
    measure_shard,
)

PAPER_ROWS = {
    "C4": {"vcpu_sec": 204, "request_cost_usd": 0.002, "communication_kib": 15.9},
    "Wikipedia": {"vcpu_sec": 10, "request_cost_usd": 0.0001,
                  "communication_kib": 14.9},
}


def _format_row(row):
    return (f"{row['total_size_gib']:.0f} GiB | {row['n_pages']/1e6:.0f}M | "
            f"{row['avg_page_kib']:.1f} KiB | {row['vcpu_sec']:.1f} vCPU-s | "
            f"${row['request_cost_usd']:.5f} | {row['communication_kib']:.1f} KiB")


def test_e4_table2_from_paper_constants(benchmark):
    rows = benchmark(
        lambda: {d.name: estimate_deployment(d).row() for d in (C4, WIKIPEDIA)}
    )
    report("E4: Table 2 regenerated (paper shard constants)", [
        ("C4 (ours)", _format_row(rows["C4"])),
        ("C4 (paper)", "305 GiB | 360M | 0.9 KiB | 204 | $0.002 | 15.9 KiB"),
        ("Wikipedia (ours)", _format_row(rows["Wikipedia"])),
        ("Wikipedia (paper)", "21 GiB | 60M | 0.4 KiB | 10 | $0.0001 | 14.9 KiB"),
    ])
    c4 = rows["C4"]
    assert c4["vcpu_sec"] == pytest.approx(204, rel=0.01)
    assert c4["request_cost_usd"] == pytest.approx(0.002, rel=0.25)
    assert c4["communication_kib"] == pytest.approx(15.9, rel=0.05)
    wiki = rows["Wikipedia"]
    assert wiki["communication_kib"] == pytest.approx(14.9, rel=0.05)
    # Shape: C4 is roughly an order of magnitude costlier than Wikipedia.
    assert 10 < c4["vcpu_sec"] / wiki["vcpu_sec"] < 25
    assert 10 < c4["request_cost_usd"] / wiki["request_cost_usd"] < 25


def test_e4_table2_from_measured_constants(benchmark):
    shard = measure_shard(domain_bits=12, blob_bytes=4096, n_requests=2)
    rows = benchmark(
        lambda: {d.name: estimate_deployment(d, shard=shard).row()
                 for d in (C4, WIKIPEDIA)}
    )
    report("E4b: Table 2 with THIS machine's measured shard", [
        ("measured shard",
         f"2^{shard.domain_bits}, {shard.request_seconds*1e3:.1f} ms/request"),
        ("C4 (measured-substrate)", _format_row(rows["C4"])),
        ("Wikipedia (measured-substrate)", _format_row(rows["Wikipedia"])),
        ("note", "absolute values reflect a Python shard; ratios match"),
    ])
    ratio = rows["C4"]["vcpu_sec"] / rows["Wikipedia"]["vcpu_sec"]
    assert ratio == pytest.approx(305 / 21, rel=0.02)
