"""E8 — §5.1's collision analysis and the cuckoo mitigation.

Paper: "With ... an output domain of size 2^22, we guarantee that if there
are roughly 2^20 key-value pairs ... the probability of collision is at
most 1/4 when the ZLTP server is almost at capacity. ... We could decrease
this probability by increasing the DPF output domain or by using cuckoo
hashing and probing several locations per request."

We verify the analytic bound, Monte-Carlo it at reduced scale, show the
domain-size knob, and show cuckoo hashing absorbing loads that break
single-hash placement.
"""

import pytest

from benchmarks.conftest import report
from repro.crypto.cuckoo import CuckooTable, build_table
from repro.crypto.hashing import (
    KeyedHash,
    any_collision_probability,
    collision_probability,
    domain_bits_for,
)
from repro.errors import CapacityError, CollisionError


def test_e8_paper_bound(benchmark):
    bound = benchmark(collision_probability, 2**20, 22)
    report("E8: the §5.1 collision bound", [
        ("Pr[new key collides], 2^20 keys in 2^22 slots",
         f"{bound:.3f} (paper: at most 1/4)"),
        ("exact occupied-slot probability",
         f"{collision_probability(2**20, 22, exact=True):.3f}"),
        ("Pr[ANY pair collides] (why it's per-insert)",
         f"{any_collision_probability(2**20, 22):.6f}"),
        ("smallest domain for 1/4 at 2^20 keys",
         f"2^{domain_bits_for(2**20, 0.25)}"),
    ])
    assert bound == pytest.approx(0.25)


def test_e8_monte_carlo(benchmark):
    """Empirical per-insert collision rate at the same 1:4 load, scaled."""
    domain_bits = 14  # 16384 slots, 4096 keys: same n/D = 1/4
    h = KeyedHash(domain_bits, salt=b"e8")

    def run():
        occupied = {h.slot(f"page-{i}") for i in range(1 << (domain_bits - 2))}
        hits = sum(1 for i in range(4000)
                   if h.slot(f"probe-{i}") in occupied)
        return hits / 4000, len(occupied) / (1 << domain_bits)

    rate, actual_load = benchmark(run)
    report("E8b: Monte-Carlo at 2^12 keys in 2^14 slots", [
        ("empirical per-insert collision rate", f"{rate:.3f}"),
        ("occupied fraction (≤ 1/4 after self-collisions)",
         f"{actual_load:.3f}"),
        ("paper bound", "0.25"),
    ])
    assert rate == pytest.approx(actual_load, abs=0.03)
    assert rate < 0.27


def test_e8_domain_size_knob(benchmark):
    probs = benchmark(
        lambda: {bits: collision_probability(2**20, bits)
                 for bits in (21, 22, 23, 24)}
    )
    report("E8c: increasing the output domain", [
        (f"Pr[collision] at 2^{bits}", f"{prob:.3f}")
        for bits, prob in probs.items()
    ])
    values = list(probs.values())
    assert all(a > b for a, b in zip(values, values[1:]))


def test_e8_cuckoo_mitigation(benchmark):
    """Single-hash placement breaks at loads cuckoo absorbs entirely."""
    domain_bits = 10
    n_keys = 400  # ~40% load

    def single_hash_failures():
        table = CuckooTable(domain_bits, n_hashes=1, salt=b"e8-single")
        failures = 0
        for i in range(n_keys):
            try:
                table.insert(f"key-{i}")
            except (CollisionError, CapacityError):
                failures += 1
        return failures

    failures = benchmark(single_hash_failures)
    cuckoo = build_table([f"key-{i}" for i in range(n_keys)],
                         domain_bits, n_hashes=2, salt=b"e8-cuckoo")
    report("E8d: cuckoo hashing vs single-hash at 40% load", [
        ("single-hash keys needing a rename", f"{failures} / {n_keys}"),
        ("cuckoo (2 probes) keys placed", f"{len(cuckoo)} / {n_keys}"),
        ("client cost of cuckoo", "2 private-GETs per lookup (fixed)"),
    ])
    assert failures > 0
    assert len(cuckoo) == n_keys
