"""E9 — the parallel scan engine: shard fan-out and single-pass batching.

Two claims from this repo's scan-engine work (no direct paper numbers —
the paper's §5.2 deployment is real machines; here the win is showing the
*shape* on one host):

1. A front-end that gang-evaluates the fleet's DPF sub-keys in one
   vectorised pass and fans shard scans out through the engine answers
   faster than the sequential per-shard walk, and the gap widens with the
   shard count (≥4 shards must already win).
2. The truly single-pass batch scan (one blocked walk over storage per
   batch) beats the per-row baseline once the batch is big enough to
   amortise the walk (batch ≥8 must win at 128 MiB storage — the block
   stays cache-hot across the batch's rows while the per-row path streams
   all of storage once per request).

Measured numbers land in ``BENCH_parallel_scan.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.crypto.dpf import gen_dpf
from repro.pir.database import BlobDatabase
from repro.pir.engine import ScanExecutor
from repro.pir.sharding import ShardedDeployment

FANOUT_DOMAIN_BITS = 13          # 2^13 x 4 KiB = 32 MiB logical database
FANOUT_PREFIX_BITS = (2, 4)      # 4 and 16 data servers per party
BATCH_DOMAIN_BITS = 15           # 2^15 x 4 KiB = 128 MiB (>> L2, the regime
                                 # the single-pass walk is built for)
BLOB_BYTES = 4096
BATCH_SIZES = (8, 16)
_ROUNDS = 3

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel_scan.json"


def _filled_db(domain_bits: int, seed: int = 0) -> BlobDatabase:
    db = BlobDatabase(domain_bits, BLOB_BYTES)
    rng = np.random.default_rng(seed)
    for slot in rng.choice(db.n_slots, size=min(64, db.n_slots), replace=False):
        db.set_slot(int(slot), bytes(rng.integers(0, 256, 512, dtype=np.uint8)))
    return db


def _best_of(fn, rounds: int = _ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def results():
    data = {"experiment": "E9 parallel scan engine", "fanout": [], "batch": []}
    yield data
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\n  wrote {RESULTS_PATH}")


def test_e9_fanout_vs_sequential(benchmark, results):
    db = _filled_db(FANOUT_DOMAIN_BITS)
    key0, _ = gen_dpf(5, FANOUT_DOMAIN_BITS, rng=np.random.default_rng(1))
    raw = key0.to_bytes()

    rows = []
    measured = []

    def run_all():
        measured.clear()
        for prefix_bits in FANOUT_PREFIX_BITS:
            sequential = ShardedDeployment(db, prefix_bits, parallel=False)
            parallel = ShardedDeployment(db, prefix_bits,
                                         executor=ScanExecutor())
            assert parallel.answer(0, raw) == sequential.answer(0, raw)
            seq_s = _best_of(lambda: sequential.answer(0, raw))
            par_s = _best_of(lambda: parallel.answer(0, raw))
            fanout = parallel.front_ends[0].last_fanout
            measured.append({
                "shards": 1 << prefix_bits,
                "sequential_seconds": seq_s,
                "parallel_seconds": par_s,
                "speedup": seq_s / par_s,
                "engine_speedup": fanout.speedup if fanout else None,
            })
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for m in measured:
        rows.append((
            f"shards={m['shards']}",
            f"sequential {m['sequential_seconds']*1e3:.1f} ms, "
            f"engine {m['parallel_seconds']*1e3:.1f} ms "
            f"({m['speedup']:.2f}x)",
        ))
    report("E9: engine fan-out vs sequential shard walk", rows)
    results["fanout"] = measured
    # Shape claim 1: the engine wins from 4 shards up, and keeps winning.
    for m in measured:
        if m["shards"] >= 4:
            assert m["parallel_seconds"] < m["sequential_seconds"], m


def test_e9_single_pass_batch_vs_per_row(benchmark, results):
    db = _filled_db(BATCH_DOMAIN_BITS, seed=2)
    rng = np.random.default_rng(3)

    rows = []
    measured = []

    def run_all():
        measured.clear()
        for batch in BATCH_SIZES:
            select = rng.integers(0, 2, size=(batch, db.n_slots),
                                  dtype=np.uint8).astype(bool)
            assert db.xor_scan_batch(select) == db.xor_scan_batch_per_row(select)
            single = _best_of(lambda: db.xor_scan_batch(select))
            per_row = _best_of(lambda: db.xor_scan_batch_per_row(select))
            measured.append({
                "batch": batch,
                "single_pass_seconds": single,
                "per_row_seconds": per_row,
                "speedup": per_row / single,
            })
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for m in measured:
        rows.append((
            f"batch={m['batch']}",
            f"per-row {m['per_row_seconds']*1e3:.1f} ms, "
            f"single-pass {m['single_pass_seconds']*1e3:.1f} ms "
            f"({m['speedup']:.2f}x)",
        ))
    rows.append(("storage", f"{db.memory_bytes() / 2**20:.0f} MiB, "
                            f"amortised rows/request "
                            f"{db.amortized_rows_per_request:.0f}"))
    report("E9b: single-pass batch scan vs per-row baseline", rows)
    results["batch"] = measured
    # Shape claim 2: one blocked walk beats per-row streaming from batch 8.
    for m in measured:
        if m["batch"] >= 8:
            assert m["single_pass_seconds"] < m["per_row_seconds"], m
