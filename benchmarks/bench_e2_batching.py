"""E2 — §5.1 "Batching requests to increase throughput".

Paper: batch 1 → 0.51 s latency, 2 req/s; batch 16 → 2.6 s latency,
6 req/s (167 ms amortised per request).

Two parts: the analytic trade-off curve with the paper's constants (it
must pass through both published endpoints), and measured batch answering
on the Python substrate (throughput must not degrade with batch size, and
latency must grow with it).
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.pir.batching import BatchCostModel, BatchScheduler
from repro.pir.database import BlobDatabase
from repro.pir.twoserver import TwoServerPirClient, TwoServerPirServer

DOMAIN_BITS = 11
BLOB_BYTES = 2048
BATCH_SIZES = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def deployment():
    db = BlobDatabase(DOMAIN_BITS, BLOB_BYTES)
    rng = np.random.default_rng(0)
    for i in range(db.n_slots):
        db.set_slot(i, bytes(rng.integers(0, 256, 128, dtype=np.uint8)))
    return TwoServerPirServer(db, party=0), TwoServerPirClient(DOMAIN_BITS, BLOB_BYTES)


def test_e2_paper_model_curve(benchmark):
    model = BatchCostModel()
    curve = benchmark(model.curve, list(BATCH_SIZES))
    rows = [("paper endpoints",
             "B=1: 0.51 s, 2 req/s | B=16: 2.6 s, 6 req/s")]
    for point in curve:
        rows.append((
            f"model B={point.batch_size}",
            f"latency {point.latency_seconds:.2f} s, "
            f"throughput {point.throughput_rps:.2f} req/s, "
            f"{point.per_request_seconds*1e3:.0f} ms/req",
        ))
    report("E2: batching trade-off (paper-constant model)", rows)
    assert curve[0].latency_seconds == pytest.approx(0.51)
    assert curve[-1].throughput_rps == pytest.approx(6.0, rel=0.02)
    assert curve[-1].latency_seconds == pytest.approx(2.6, rel=0.05)


def test_e2_measured_batching(benchmark, deployment):
    server, client = deployment

    def run_batch(batch_size, repeats=2):
        scheduler = BatchScheduler(server, batch_size=batch_size)
        for _ in range(repeats):
            for i in range(batch_size):
                scheduler.submit(client.query(i * 7 % server.database.n_slots)[0])
        return scheduler.measured_point()

    points = benchmark.pedantic(
        lambda: [run_batch(b) for b in BATCH_SIZES],
        rounds=1, iterations=1,
    )
    rows = []
    for point in points:
        rows.append((
            f"measured B={point.batch_size}",
            f"latency {point.latency_seconds*1e3:.1f} ms, "
            f"throughput {point.throughput_rps:.1f} req/s",
        ))
    report("E2b: measured batching on this machine", rows)
    # Shape: latency grows with batch size; throughput does not collapse.
    assert points[-1].latency_seconds > points[0].latency_seconds
    assert points[-1].throughput_rps > 0.5 * points[0].throughput_rps
