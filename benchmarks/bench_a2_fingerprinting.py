"""A2 (ablation) — the motivating traffic-analysis claim, measured.

§1: website fingerprinting works against encrypted classic-web traffic
([31]); lightweb "protects against traffic-analysis attacks by design".
We run the same naive-Bayes attack against both traffic sources and
report accuracies; lightweb must sit at chance.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.lightweb.browser import LightwebBrowser
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.publisher import Publisher
from repro.core.zltp.modes import MODE_PIR2
from repro.netsim.adversary import PassiveAdversary
from repro.netsim.fingerprint import NaiveBayesFingerprinter
from repro.netsim.simnet import NetworkPath, SimClock, sim_transport_pair
from repro.netsim.traffic import ClassicWebTraffic

N_SITES = 6


def test_a2_classic_web_attack_succeeds(benchmark):
    traffic = ClassicWebTraffic(noise=0.10)
    sites = [f"site{i}.com" for i in range(N_SITES)]
    train = traffic.corpus(sites, loads_per_site=8, seed=1)
    test = traffic.corpus(sites, loads_per_site=4, seed=2)
    clf = NaiveBayesFingerprinter(bucket_bytes=4096)
    clf.fit([t.transfers for t in train], [t.site for t in train])
    accuracy = benchmark(
        clf.accuracy, [t.transfers for t in test], [t.site for t in test]
    )
    chance = 1 / N_SITES
    report("A2: fingerprinting the classic web", [
        ("accuracy", f"{accuracy:.1%}"),
        ("chance", f"{chance:.1%}"),
        ("paper's claim", "encrypted links still fingerprint (Herrmann [31])"),
    ])
    assert accuracy > 3 * chance


@pytest.fixture(scope="module")
def lightweb_traces():
    cdn = Cdn("a2-cdn", modes=[MODE_PIR2])
    cdn.create_universe("u", data_domain_bits=10, code_domain_bits=7,
                        fetch_budget=3)
    for i in range(N_SITES):
        publisher = Publisher(f"pub{i}")
        site = publisher.site(f"site{i}.example")
        for j in range(4):
            site.add_page(f"/p{j}", "content " * (5 + 30 * i))
        publisher.push(cdn, "u")

    def record(site_index, rep):
        adversary = PassiveAdversary()
        clock = SimClock()

        def factory(name):
            return sim_transport_pair(
                NetworkPath(clock, name=name, observer=adversary)
            )

        browser = LightwebBrowser(rng=np.random.default_rng(500 + rep))
        browser.connect(cdn, "u", transport_factory=factory)
        browser.visit(f"site{site_index}.example/p0")
        adversary.clear()
        browser.visit(f"site{site_index}.example/p{1 + rep % 3}")
        return adversary.trace()

    train_x, train_y, test_x, test_y = [], [], [], []
    for i in range(N_SITES):
        for rep in range(4):
            trace = record(i, rep)
            if rep < 3:
                train_x.append(trace)
                train_y.append(f"site{i}")
            else:
                test_x.append(trace)
                test_y.append(f"site{i}")
    return train_x, train_y, test_x, test_y


def test_a2_lightweb_attack_collapses(benchmark, lightweb_traces):
    train_x, train_y, test_x, test_y = lightweb_traces
    clf = NaiveBayesFingerprinter(bucket_bytes=512)
    clf.fit(train_x, train_y)
    accuracy = benchmark(clf.accuracy, test_x, test_y)
    chance = 1 / N_SITES
    report("A2b: fingerprinting lightweb", [
        ("accuracy", f"{accuracy:.1%}"),
        ("chance", f"{chance:.1%}"),
        ("why", "fixed blob sizes + fixed fetch count per page view"),
    ])
    assert accuracy <= chance + 0.35  # at/near chance; never classic-web-like

    # Stronger: all recorded page loads are byte-identical in signature.
    signatures = {tuple(sorted(trace)) for trace in train_x + test_x}
    report("A2c: trace signatures", [
        ("distinct (direction,size) multisets across all visits",
         f"{len(signatures)} (1 means perfectly uniform traffic)"),
    ])
    assert len(signatures) == 1
