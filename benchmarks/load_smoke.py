"""E16 smoke — the saturation curve, with and without admission control.

The claim under test (PR 10): a deployment behind an admission gate
keeps the latency of *admitted* requests inside the deadline as offered
load crosses the knee, shedding the excess with fast overload errors,
while the same deployment without the gate lets queueing delay blow the
p99 for everyone. Concretely, at the top offered level:

- admission **on**: completed-request p99 stays under the deadline, the
  gate sheds a nonzero remainder, and goodput does not collapse past the
  knee (monotone non-decreasing within tolerance);
- admission **off**: p99 exceeds the deadline — every request queues
  behind a backlog the server should have refused.

To keep the curve deterministic on shared CI hardware, the served
database's scan is a *fixed sleep behind a lock* — a hard capacity of
``1/SERVICE_SECONDS`` requests/s per party, independent of how fast the
box is — and every threshold is derived from a measured idle-latency
calibration, not wall-clock constants.

Tier-1 runs this via ``tests/integration/test_load_smoke.py``.
Run standalone::

    PYTHONPATH=src python benchmarks/load_smoke.py [--out BENCH_load.json]
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.discovery import CachingResolver, static_directory
from repro.core.zltp.admission import AdmissionController
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.serving import create_tcp_server
from repro.costmodel.capacity import SaturationCurve
from repro.loadgen import LoadgenConfig, build_client, sweep_load
from repro.pir.database import BlobDatabase

#: Injected per-scan service time: the deployment's capacity is exactly
#: ``1 / SERVICE_SECONDS`` page views/s, by construction (the two
#: parties scan in parallel, one query each per page). Large enough
#: that the injected sleep — not client-side crypto under the GIL —
#: is the bottleneck on any hardware.
SERVICE_SECONDS = 0.05
DOMAIN_BITS = 8
BLOB_BYTES = 1024
N_USERS = 10
DURATION_SECONDS = 2.0
#: Offered levels as multiples of the calibrated capacity: under the
#: knee, at it, and well past it.
LEVEL_FACTORS = (0.5, 1.2, 2.5)
CALIBRATION_REQUESTS = 5

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_load.json"


class SlowScanDatabase(BlobDatabase):
    """A blob database whose scan costs a fixed, serialized sleep.

    Models a machine with one scan pipeline: one request's scan at a
    time, each costing exactly ``service_seconds`` — so saturation
    arithmetic in this benchmark is deterministic instead of
    hardware-dependent. The lock is the capacity bottleneck on purpose.
    """

    def __init__(self, domain_bits: int, blob_size: int,
                 service_seconds: float):
        super().__init__(domain_bits, blob_size)
        self.service_seconds = service_seconds
        self._scan_lock = threading.Lock()

    def xor_scan(self, select_bits):
        with self._scan_lock:
            time.sleep(self.service_seconds)
            return super().xor_scan(select_bits)

    def xor_scan_batch(self, select_matrix):
        # One single-pass sleep per batch — the §5.1 batching story.
        with self._scan_lock:
            time.sleep(self.service_seconds)
            return super().xor_scan_batch(select_matrix)


def build_fixture():
    """Two slow pir2 data servers (the non-colluding pair) over TCP.

    Returns ``(resolver, servers, listeners)``; the servers start with
    no admission gate (the off-curve state).
    """
    rng = np.random.default_rng(0)
    servers = []
    listeners = []
    for party in range(2):
        db = SlowScanDatabase(DOMAIN_BITS, BLOB_BYTES, SERVICE_SECONDS)
        for slot in range(0, db.n_slots, 16):
            db.set_slot(slot,
                        bytes(rng.integers(0, 256, 64, dtype=np.uint8)))
        server = ZltpServer(db, modes=["pir2"], party=party)
        servers.append(server)
        listeners.append(create_tcp_server("threaded", server, port=0))
    directory = static_directory(
        "127.0.0.1",
        {"data": [listener.address[1] for listener in listeners]},
        modes=["pir2"], attrs={"fetch_budget": 1})
    return CachingResolver(directory, grace_seconds=None), servers, listeners


def calibrate(resolver) -> float:
    """Median idle page-view latency — the unit every threshold scales by."""
    client = build_client(resolver, "main", modes=["pir2"], retries=1)
    n_slots = 2 ** client.domain_bits
    samples = []
    for i in range(CALIBRATION_REQUESTS):
        t0 = time.monotonic()
        client.get_slots([(i * 37) % n_slots])
        samples.append(time.monotonic() - t0)
    client.close()
    return float(np.median(samples))


def run() -> dict:
    resolver, servers, listeners = build_fixture()
    try:
        idle_seconds = calibrate(resolver)
        # One idle page view costs the injected scan plus the real
        # client/server overhead around it; with the sleep dominating,
        # that sum is also the per-page *drain* cost under load, so its
        # inverse is the measured page capacity the levels scale from.
        capacity_rps = 1.0 / idle_seconds
        # The deadline allows one idle request plus seven service times
        # of queueing; the full population queued at the scan lock costs
        # (N_USERS - 1) service times on top of idle, so an ungated
        # saturated server must blow it (9 > 7) — and the measured
        # ungated p99 lands far higher still, because closed-loop users
        # re-queue as fast as they are served.
        deadline = idle_seconds + 7.0 * SERVICE_SECONDS
        levels = [round(capacity_rps * factor, 2)
                  for factor in LEVEL_FACTORS]
        # Sub-capacity levels must still give every user >= 1 request.
        duration = max(DURATION_SECONDS, 1.1 * N_USERS / min(levels))
        config = LoadgenConfig(
            n_users=N_USERS, duration_seconds=duration,
            deadline_seconds=deadline, gets_per_page=1,
            modes=["pir2"], seed=7)

        off = sweep_load(resolver, levels, config=config)
        for server in servers:
            # Gate at four service times of predicted queueing — the
            # deadline budgets seven, so an admitted request finishes
            # with ~three service times to spare even after its own
            # scan and the idle round-trip. Pre-seeding the service
            # estimate (we *know* the injected scan cost) keeps the
            # first burst from being admitted at full depth while the
            # EWMA is still learning.
            server.admission = AdmissionController(
                deadline_seconds=4.0 * SERVICE_SECONDS,
                max_queue_depth=64,
                initial_service_seconds=SERVICE_SECONDS)
        on = sweep_load(resolver, levels, config=config)

        curve = SaturationCurve.from_sweep(
            [report.to_dict() for report in on], n_shards=1)
        plan = {
            "n_users": 10_000,
            "p99_target_seconds": deadline,
            "shards": curve.shards_for(10_000, deadline),
        }
    finally:
        for listener in listeners:
            listener.stop()
    admission_totals = [server.admission.snapshot() for server in servers]
    return {
        "experiment": "E16 saturation with/without admission (smoke)",
        "service_seconds": SERVICE_SECONDS,
        "idle_page_seconds": idle_seconds,
        "capacity_rps": capacity_rps,
        "deadline_seconds": deadline,
        "offered_levels_rps": levels,
        "admission_off": [report.to_dict() for report in off],
        "admission_on": [report.to_dict() for report in on],
        "admission_gates": admission_totals,
        "capacity_plan": plan,
    }


def check(data: dict) -> list:
    """The E16 acceptance assertions; returns failure messages."""
    failures = []
    deadline = data["deadline_seconds"]
    on_top = data["admission_on"][-1]
    off_top = data["admission_off"][-1]
    on_knee = data["admission_on"][-2]
    if on_top["p99_seconds"] is None or \
            on_top["p99_seconds"] > deadline:
        failures.append(
            f"admitted p99 {on_top['p99_seconds']} blew the deadline "
            f"{deadline:g}s with admission ON")
    if off_top["p99_seconds"] is not None and \
            off_top["p99_seconds"] <= deadline:
        failures.append(
            f"p99 {off_top['p99_seconds']:.3f}s stayed under the deadline "
            f"{deadline:g}s with admission OFF — no saturation signal")
    if on_top["shed"] == 0:
        failures.append("the gate shed nothing at 3x capacity")
    if on_top["goodput_rps"] < 0.7 * on_knee["goodput_rps"]:
        failures.append(
            f"goodput collapsed past the knee with admission ON: "
            f"{on_top['goodput_rps']:.1f} < 0.7 x "
            f"{on_knee['goodput_rps']:.1f} rps")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    for off_row, on_row in zip(data["admission_off"], data["admission_on"]):
        print(f"offered {off_row['offered_rps']:>7.1f} rps | "
              f"off: goodput {off_row['goodput_rps']:5.1f} "
              f"p99 {off_row['p99_seconds'] or 0:.3f}s | "
              f"on: goodput {on_row['goodput_rps']:5.1f} "
              f"p99 {on_row['p99_seconds'] or 0:.3f}s "
              f"shed {on_row['shed']}")
    failures = check(data)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
