"""Shared helpers for the benchmark harness.

Every experiment benchmark prints a small report comparing this machine's
measurements (on the Python substrate) with the paper's published numbers,
then asserts the *shape* claims recorded in EXPERIMENTS.md. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def report(title: str, rows):
    """Print a paper-vs-measured comparison block."""
    print(f"\n=== {title} ===")
    for label, value in rows:
        print(f"  {label:<58} {value}")
