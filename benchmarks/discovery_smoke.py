"""Smoke-run the E14 discovery measurement: resolve latency + healing.

Two halves, matching the two claims the discovery layer makes:

* **Resolve latency** — wall-clock round trips against a real TCP
  :class:`~repro.core.discovery.DirectoryServer` (one fixed-size frame
  per request), reported as percentiles. This half touches real sockets
  and so is *not* part of the deterministic record.
* **Failover via rediscovery** — real pir2 sessions over seeded-lossy
  simulated paths where the party-0 primary is killed mid-batch and its
  replacement is only announced *afterwards*: every completion past the
  kill point had to re-resolve through the directory. Entirely on
  :class:`~repro.netsim.simnet.SimClock` with seeded RNGs, so
  ``availability_rows()`` is a pure function — same numbers every run.

Tier-1 runs this (via ``tests/integration/test_discovery_smoke.py``) so
the availability-via-rediscovery claim is checked on every test run.

Run standalone::

    PYTHONPATH=src python benchmarks/discovery_smoke.py [--out BENCH_discovery.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.discovery import (
    AnnounceRecord,
    CapabilityQuery,
    DirectoryClient,
    DirectoryServer,
    InProcessDirectory,
    resolved_pool,
)
from repro.core.resilience import RetryPolicy, resilient_pool
from repro.core.zltp.client import connect_client
from repro.core.zltp.server import ZltpServer
from repro.errors import TransportError
from repro.netsim.simnet import NetworkPath, SimClock, sim_transport_pair
from repro.pir.database import BlobDatabase
from repro.pir.keyword import KeywordIndex

SECRET = b"e14-smoke"
SALT = b"e14-smoke"
LOSS_RATES = (0.0, 0.1, 0.25)
OPS_PER_RATE = 30
RESOLVES = 25
SEED = 14

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_discovery.json"


def _record(party: int, role: str) -> AnnounceRecord:
    return AnnounceRecord(
        server_id=f"smoke/{party}/{role}", host=f"sim-{party}-{role}",
        port=0, universe="main", kind="data", party=party,
        modes=("pir2",)).sign(SECRET)


class _SimWorld:
    """Two pir2 parties behind a directory, over seeded-lossy sim paths.

    Each announced endpoint gets its own :class:`NetworkPath`; killing
    an endpoint closes its live transports and makes further dials fail,
    exactly like a SIGKILLed process whose port stops answering.
    """

    def __init__(self, loss_rate: float, seed: int):
        self.clock = SimClock()
        self.directory = InProcessDirectory(secret=SECRET,
                                            clock=lambda: self.clock.now)
        db = BlobDatabase(8, 64)
        index = KeywordIndex(db, probes=2, salt=SALT)
        for i in range(OPS_PER_RATE):
            index.put(f"s{i}.com/p", f"e14-{i}".encode())
        self.db = db
        # Primary and replica share the logical server (as replicas do in
        # a real deployment), so session resume survives the failover.
        self._servers = {party: ZltpServer(db, modes=["pir2"], party=party,
                                           salt=SALT, probes=2)
                         for party in (0, 1)}
        self.paths = {}
        self._live = {}
        self._killed = set()
        for offset, (party, role) in enumerate(
                [(0, "primary"), (0, "replica"), (1, "primary")]):
            host = f"sim-{party}-{role}"
            self.paths[host] = NetworkPath(
                self.clock, name=host,
                rng=np.random.default_rng(seed + offset))
            self._live[host] = []
        for party in (0, 1):
            self.directory.announce(_record(party, "primary"))

    def connect(self, host: str, port: int):
        if host in self._killed:
            raise TransportError(f"{host} is down")
        client_end, server_end = sim_transport_pair(self.paths[host])
        party = int(host.split("-")[1])
        self._servers[party].serve_transport(server_end)
        self._live[host].append(client_end)
        return client_end

    def kill(self, party: int, role: str) -> None:
        """SIGKILL one endpoint: live connections die, dials refuse, the
        directory drops it — and the replacement announces itself."""
        host = f"sim-{party}-{role}"
        self._killed.add(host)
        for transport in self._live[host]:
            transport.close()
        self.directory.withdraw(f"smoke/{party}/{role}")
        self.directory.announce(_record(party, "replica"))

    def set_loss(self, loss_rate: float) -> None:
        for path in self.paths.values():
            path.loss_rate = loss_rate


def measure_availability(loss_rate: float, n_ops: int = OPS_PER_RATE,
                         seed: int = SEED) -> dict:
    """Run ``n_ops`` private GETs; kill the party-0 primary halfway."""
    world = _SimWorld(loss_rate, seed)
    transports = [
        resilient_pool(
            resolved_pool(world.directory,
                          CapabilityQuery("main", "data", party=party),
                          connect=world.connect),
            policy=RetryPolicy(max_attempts=12, base_delay=0.01, jitter=0.1,
                               rng=np.random.default_rng(seed + 10 + party),
                               sleep=world.clock.advance))
        for party in (0, 1)
    ]
    client = connect_client(transports, supported_modes=["pir2"])
    world.set_loss(loss_rate)
    completed = 0
    for i in range(n_ops):
        if i == n_ops // 2:
            # The replica is only announced here: every op past this
            # point that touches party 0 had to rediscover it.
            world.kill(0, "primary")
        slot = client.candidate_slots(f"s{i}.com/p")[0]
        try:
            if client.get_slot(slot) == world.db.get_slot(slot):
                completed += 1
        except TransportError:
            pass  # counted as lost; availability drops
    client.close()
    return {
        "loss_rate": loss_rate,
        "ops": n_ops,
        "completed": completed,
        "availability": completed / n_ops,
        "rediscoveries": sum(t.pool.refreshes for t in transports),
        "reconnects": sum(t.reconnects for t in transports),
        "frames_dropped": sum(p.frames_dropped
                              for p in world.paths.values()),
        "sim_seconds": world.clock.now,
    }


def availability_rows() -> list:
    """The deterministic half: one row per loss rate."""
    return [measure_availability(rate) for rate in LOSS_RATES]


def measure_resolve_latency(n_resolves: int = RESOLVES) -> dict:
    """Wall-clock resolve round trips against a real TCP directory."""
    directory = DirectoryServer(secret=SECRET)
    try:
        client = DirectoryClient(*directory.address, secret=SECRET)
        for party in (0, 1):
            for role in ("primary", "replica"):
                client.announce(_record(party, role))
        query = CapabilityQuery("main", "data", party=0)
        samples = []
        for _ in range(n_resolves):
            start = time.perf_counter()
            found = client.resolve(query)
            samples.append(time.perf_counter() - start)
            assert len(found) == 2
        samples.sort()
        return {
            "resolves": n_resolves,
            "records_announced": 4,
            "p50_ms": samples[len(samples) // 2] * 1e3,
            "p95_ms": samples[int(len(samples) * 0.95)] * 1e3,
            "max_ms": samples[-1] * 1e3,
        }
    finally:
        directory.stop()


def run() -> dict:
    return {
        "experiment": "E14 discovery resolve latency and "
                      "failover-via-rediscovery (smoke)",
        "resolve_latency": measure_resolve_latency(),
        "rows": availability_rows(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    bad = [row for row in data["rows"]
           if row["availability"] < 1.0 or row["rediscoveries"] == 0]
    if bad:
        for row in bad:
            print(f"DISCOVERY REGRESSION: {row['completed']}/{row['ops']} "
                  f"completed, {row['rediscoveries']} rediscoveries "
                  f"at loss_rate={row['loss_rate']}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
