"""E7 — §5.2's cost comparisons and the "Looking forward" projection.

Paper: Fi charges $10/GiB, so the 22.4 MiB NYT homepage costs $0.218 and
4 KiB costs $0.000038; ZLTP's $0.002 per 4 KiB fetch is "roughly two
orders of magnitude more expensive". Compute got 16x cheaper per 5 years
(2003→2008), suggesting an order-of-magnitude ZLTP cost drop in 5 years.
"""

import math

import pytest

from benchmarks.conftest import report
from repro.costmodel.billing import (
    NYT_HOMEPAGE_BYTES,
    fi_bytes_cost,
    fi_page_cost,
    zltp_vs_fi_ratio,
)
from repro.costmodel.datasets import C4, KIB
from repro.costmodel.estimator import estimate_deployment
from repro.costmodel.projection import projected_cost, years_until_cost


def test_e7_fi_anchors(benchmark):
    nyt = benchmark(fi_page_cost)
    four_kib = fi_bytes_cost(4 * KIB)
    report("E7: Google Fi anchors", [
        ("22.4 MiB NYT homepage over Fi", f"${nyt:.3f} (paper: $0.218)"),
        ("4 KiB over Fi", f"${four_kib:.6f} (paper: $0.000038)"),
    ])
    assert nyt == pytest.approx(0.218, rel=0.01)
    assert four_kib == pytest.approx(3.8e-5, rel=0.03)


def test_e7_zltp_premium(benchmark):
    request_cost = estimate_deployment(C4).request_cost_usd
    ratio = benchmark(zltp_vs_fi_ratio, request_cost)
    report("E7b: the ZLTP premium", [
        ("ZLTP per 4 KiB", f"${request_cost:.4f}"),
        ("Fi per 4 KiB", f"${fi_bytes_cost(4 * KIB):.6f}"),
        ("ratio", f"{ratio:.0f}x  (paper: 'roughly two orders of magnitude')"),
        ("willingness anchor", f"one NYT homepage over Fi buys "
                               f"{fi_page_cost()/request_cost:.0f} ZLTP fetches"),
    ])
    assert math.log10(ratio) == pytest.approx(2, abs=0.75)


def test_e7_forward_projection(benchmark):
    request_cost = estimate_deployment(C4).request_cost_usd
    in_five = benchmark(projected_cost, request_cost, 5)
    parity_years = years_until_cost(request_cost, fi_bytes_cost(4 * KIB))
    report("E7c: looking forward (16x per 5 years)", [
        ("today", f"${request_cost:.4f}/request"),
        ("in 5 years", f"${in_five:.5f}/request "
                       f"({request_cost/in_five:.0f}x cheaper — paper: "
                       f"'an order of magnitude')"),
        ("years until ZLTP matches today's Fi price", f"{parity_years:.1f}"),
    ])
    assert request_cost / in_five == pytest.approx(16, rel=0.01)
    assert in_five < request_cost / 10  # "order of magnitude" holds
