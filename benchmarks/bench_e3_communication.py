"""E3 — §5.1 "Communication": per-request bytes.

Paper: DPF key size "(λ+2)d" with λ=128, d=22; 4 KiB output buckets;
"the total communication per request is 13.6 KiB (including the 2x
overhead for two-server private information retrieval)".

The paper's total only reconciles if (λ+2)·d is read in *bytes*
(2×2860 B + 2×4096 B = 13.6 KiB) — we reproduce that arithmetic, report
our implementation's true key size alongside, and measure actual on-the-
wire bytes for a full ZLTP GET.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.zltp.client import connect_client
from repro.core.zltp.modes import MODE_PIR2
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.transport import transport_pair
from repro.costmodel.datasets import KIB
from repro.costmodel.estimator import implementation_key_bytes, paper_key_bytes
from repro.crypto.dpf import gen_dpf
from repro.pir.database import BlobDatabase
from repro.pir.keyword import KeywordIndex

PAPER_D = 22
PAPER_BUCKET = 4096


def test_e3_paper_arithmetic(benchmark):
    key_bytes = benchmark(paper_key_bytes, PAPER_D)
    total = 2 * key_bytes + 2 * PAPER_BUCKET
    ours = implementation_key_bytes(PAPER_D)
    our_total = 2 * ours + 2 * PAPER_BUCKET
    report("E3: per-request communication at d=22", [
        ("paper key size (λ+2)·d bytes", f"{key_bytes} B ≈ {key_bytes/KIB:.1f} KiB"),
        ("paper total (2 keys + 2 buckets)", f"{total/KIB:.1f} KiB (paper: 13.6)"),
        ("our implementation's key size", f"{ours} B"),
        ("our total (2 keys + 2 buckets)", f"{our_total/KIB:.1f} KiB"),
    ])
    assert total / KIB == pytest.approx(13.6, rel=0.03)
    # Our keys are smaller; download (2 buckets) dominates either way.
    assert 2 * PAPER_BUCKET / our_total > 0.5


def test_e3_upload_logarithmic_in_domain(benchmark):
    """§2.2: "the upload is logarithmic in the size of the key space"."""

    def key_size(bits):
        key0, _ = gen_dpf(0, bits)
        return len(key0.to_bytes())

    sizes = benchmark.pedantic(
        lambda: {bits: key_size(bits) for bits in (8, 16, 24)},
        rounds=1, iterations=1,
    )
    report("E3b: key size vs domain (log scaling)", [
        ("key bytes at 2^8 / 2^16 / 2^24",
         " / ".join(str(sizes[b]) for b in (8, 16, 24))),
    ])
    # Domain grew 2^16-fold; the key grew ~3x: logarithmic.
    assert sizes[24] < 4 * sizes[8]


def test_e3_measured_wire_bytes(benchmark):
    """Actual framed bytes for one keyword GET over ZLTP pir2."""
    salt = b"e3"
    transports = []
    for party in (0, 1):
        db = BlobDatabase(12, PAPER_BUCKET)
        index = KeywordIndex(db, probes=1, salt=salt)
        index.put("target.example/page", b"the payload")
        server = ZltpServer(db, modes=[MODE_PIR2], party=party, salt=salt,
                            probes=1)
        client_end, server_end = transport_pair()
        server.serve_transport(server_end)
        transports.append(client_end)
    client = connect_client(transports)
    base_up, base_down = client.bytes_sent, client.bytes_received

    def one_get():
        return client.get("target.example/page")

    result = benchmark(one_get)
    assert result == b"the payload"
    gets = max(1, client._next_request_id)
    upload = (client.bytes_sent - base_up) / gets
    download = (client.bytes_received - base_down) / gets
    report("E3c: measured ZLTP wire bytes per GET (d=12, 4 KiB blobs)", [
        ("upload (2 DPF keys + framing)", f"{upload:.0f} B"),
        ("download (2 buckets + framing)", f"{download:.0f} B"),
        ("total", f"{(upload+download)/KIB:.2f} KiB"),
        ("paper (d=22)", "13.6 KiB"),
    ])
    assert download > 2 * PAPER_BUCKET  # two buckets plus framing
    assert upload < download  # download-dominated, like the paper
