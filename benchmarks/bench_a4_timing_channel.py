"""A4 (ablation) — the §3.2 timing channel and the cover-traffic defense.

The paper concedes that visit *timing* leaks ("a user fetching a page
every five minutes in the morning might be most likely to be reading the
news") and calls the leakage modest. This ablation measures it: a timing
classifier identifies behavioural archetypes from raw visit times with
high accuracy, the fixed-grid cover-traffic schedule pushes it to chance,
and the defense's price (latency + dummy-traffic dollars under the §4
billing model) is swept across grid periods.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.lightweb.scheduler import CoverTrafficSchedule
from repro.costmodel.datasets import C4
from repro.costmodel.estimator import estimate_deployment
from repro.netsim.timing import (
    DEFAULT_ARCHETYPES,
    TimingClassifier,
    archetype_corpus,
)


def test_a4_raw_timing_leaks(benchmark):
    train_days, train_labels = archetype_corpus(DEFAULT_ARCHETYPES, 30, seed=1)
    test_days, test_labels = archetype_corpus(DEFAULT_ARCHETYPES, 15, seed=2)
    clf = TimingClassifier()
    clf.fit(train_days, train_labels)
    accuracy = benchmark(clf.accuracy, test_days, test_labels)
    chance = 1 / len(DEFAULT_ARCHETYPES)
    report("A4: archetype inference from raw visit timing", [
        ("accuracy", f"{accuracy:.1%}"),
        ("chance", f"{chance:.1%}"),
        ("paper", "§3.2 concedes this channel ('even this leakage is modest')"),
    ])
    assert accuracy > 0.9


def test_a4_cover_traffic_flattens(benchmark):
    schedule = CoverTrafficSchedule(900, window_hours=(7, 23))
    train_days, train_labels = archetype_corpus(DEFAULT_ARCHETYPES, 30, seed=3)

    def covered_corpus():
        days = []
        for raw in train_days:
            plan = schedule.apply(raw)
            days.append(list(plan.fetch_times))
        return days

    covered = benchmark(covered_corpus)
    clf = TimingClassifier()
    clf.fit(covered, train_labels)
    test_days, test_labels = archetype_corpus(DEFAULT_ARCHETYPES, 15, seed=4)
    covered_test = [list(schedule.apply(day).fetch_times) for day in test_days]
    accuracy = clf.accuracy(covered_test, test_labels)
    chance = 1 / len(DEFAULT_ARCHETYPES)
    report("A4b: the same attack against the fixed fetch grid", [
        ("accuracy", f"{accuracy:.1%}"),
        ("chance", f"{chance:.1%}"),
        ("grid", "one page view per 15 min, 07:00-23:00, every user"),
    ])
    assert accuracy == pytest.approx(chance, abs=0.05)


def test_a4_defense_price_sweep(benchmark):
    """Latency and §4 dollars vs grid period, for a 50-page/day user."""
    request_cost = estimate_deployment(C4).request_cost_usd
    gets_per_page = 5
    rng = np.random.default_rng(5)
    real_day = sorted(rng.uniform(7 * 3600, 23 * 3600, size=50))

    def sweep():
        rows = {}
        for period in (300, 900, 1800, 3600):
            schedule = CoverTrafficSchedule(period, window_hours=(7, 23))
            plan = schedule.apply(real_day)
            monthly = (schedule.daily_fetches() * gets_per_page * 30
                       * request_cost)
            rows[period] = (plan.mean_latency, plan.overhead, monthly,
                            len(plan.dropped))
        return rows

    rows = benchmark(sweep)
    baseline = 50 * gets_per_page * 30 * request_cost
    table = [("baseline (no cover traffic)",
              f"$ {baseline:.2f}/month, 0 s latency, timing leaks")]
    for period, (latency, overhead, monthly, dropped) in rows.items():
        table.append((
            f"grid period {period//60} min",
            f"latency {latency:.0f} s, {overhead:.0%} dummies, "
            f"${monthly:.2f}/month, {dropped} dropped",
        ))
    report("A4c: what flattening the channel costs", table)
    # Shape: shorter periods cost more dollars but less latency.
    assert rows[300][2] > rows[3600][2]
    assert rows[300][0] < rows[3600][0]
