"""Smoke-run the E11 availability-under-loss measurement.

Drives real pir2 sessions over simulated network paths that lose frames
at seeded random rates, with the resilience layer (reconnecting
transports, deterministic backoff) recovering every lost exchange. The
whole run lives on the simulated clock — backoff sleeps advance
:class:`~repro.netsim.simnet.SimClock`, never the wall clock — so the
measurement is deterministic: same seeds, same drops, same retry
schedule, same numbers, every run.

Tier-1 runs this (via ``tests/integration/test_resilience_smoke.py``) so
the availability claim — 100% of private GETs complete at every tested
loss rate — is checked on every test run.

Run standalone::

    PYTHONPATH=src python benchmarks/resilience_smoke.py [--out BENCH_resilience.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.core.resilience import ReconnectingTransport, RetryPolicy
from repro.core.zltp.client import connect_client
from repro.core.zltp.server import ZltpServer
from repro.errors import TransportError
from repro.netsim.simnet import NetworkPath, SimClock, sim_transport_pair
from repro.pir.database import BlobDatabase
from repro.pir.keyword import KeywordIndex

SALT = b"e11-smoke"
LOSS_RATES = (0.0, 0.1, 0.25)
OPS_PER_RATE = 30
SEED = 7

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_resilience.json"


def _build_world(loss_rate: float, seed: int):
    db = BlobDatabase(8, 64)
    index = KeywordIndex(db, probes=2, salt=SALT)
    for i in range(OPS_PER_RATE):
        index.put(f"s{i}.com/p", f"e11-{i}".encode())
    servers = [ZltpServer(db, modes=["pir2"], party=party, salt=SALT,
                          probes=2)
               for party in (0, 1)]
    clock = SimClock()
    paths = [NetworkPath(clock, name=f"party{party}",
                         rng=np.random.default_rng(seed + party))
             for party in (0, 1)]

    def sim_dial(server, path):
        def dial():
            client_end, server_end = sim_transport_pair(path)
            server.serve_transport(server_end)
            return client_end
        return dial

    transports = [
        ReconnectingTransport(
            sim_dial(servers[party], paths[party]),
            policy=RetryPolicy(max_attempts=12, base_delay=0.01,
                               jitter=0.1,
                               rng=np.random.default_rng(seed + 10 + party),
                               sleep=clock.advance),
            name=f"party{party}")
        for party in (0, 1)
    ]
    client = connect_client(transports, supported_modes=["pir2"])
    # Loss switches on after the handshake (a client that never said
    # hello has no session to resume); drops from here on hit live GETs.
    for path in paths:
        path.loss_rate = loss_rate
    return db, client, transports, paths, clock


def measure_availability(loss_rate: float, n_ops: int = OPS_PER_RATE,
                         seed: int = SEED) -> dict:
    """Run ``n_ops`` private GETs at one loss rate; count completions."""
    db, client, transports, paths, clock = _build_world(loss_rate, seed)
    completed = 0
    for i in range(n_ops):
        slot = client.candidate_slots(f"s{i}.com/p")[0]
        try:
            if client.get_slot(slot) == db.get_slot(slot):
                completed += 1
        except TransportError:
            pass  # the op is counted as lost; availability drops
    client.close()
    return {
        "loss_rate": loss_rate,
        "ops": n_ops,
        "completed": completed,
        "availability": completed / n_ops,
        "frames_dropped": sum(path.frames_dropped for path in paths),
        "reconnects": sum(t.reconnects for t in transports),
        "transport_retries": sum(t.retries for t in transports),
        "sim_seconds": clock.now,
    }


def run() -> dict:
    """Measure availability at every smoke loss rate; return the record."""
    return {
        "experiment": "E11 availability under injected frame loss (smoke)",
        "rows": [measure_availability(rate) for rate in LOSS_RATES],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    data = run()
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")
    failed = [row for row in data["rows"] if row["availability"] < 1.0]
    if failed:
        for row in failed:
            print(f"AVAILABILITY REGRESSION: {row['completed']}/{row['ops']} "
                  f"at loss_rate={row['loss_rate']}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
