"""A pure-numpy ChaCha20 block function, vectorised over many blocks at once.

The paper's prototype leans on AVX vector instructions to make the per-request
linear scan and DPF evaluation fast (§5, "Implementation and experiment
setup"). We get the same effect in Python by evaluating ChaCha20 on *batches*
of states with numpy: one call computes the keystream block for thousands of
independent (key, nonce, counter) triples. This is what makes full-domain DPF
evaluation tractable at the domain sizes our benchmarks use.

The implementation follows RFC 8439: a 4x4 state of 32-bit words
(constants | key | counter, nonce), 20 rounds arranged as 10 column/diagonal
double rounds, and a final feed-forward addition of the input state.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CryptoError

#: The ASCII constants "expa" "nd 3" "2-by" "te k" as little-endian words.
_CONSTANTS = np.array(
    [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32
)

_ROUND_PAIRS = (
    # column round
    (0, 4, 8, 12),
    (1, 5, 9, 13),
    (2, 6, 10, 14),
    (3, 7, 11, 15),
    # diagonal round
    (0, 5, 10, 15),
    (1, 6, 11, 12),
    (2, 7, 8, 13),
    (3, 4, 9, 14),
)


def _rotl(x: np.ndarray, n: int) -> np.ndarray:
    """Rotate each uint32 left by ``n`` bits."""
    return ((x << np.uint32(n)) | (x >> np.uint32(32 - n))).astype(np.uint32)


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """Apply one ChaCha quarter round in place on ``state[:, i]`` columns."""
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_block(keys: np.ndarray, counters: np.ndarray, nonces: np.ndarray) -> np.ndarray:
    """Compute ChaCha20 keystream blocks for a batch of states.

    Args:
        keys: ``(n, 8)`` uint32 array — one 256-bit key per row.
        counters: ``(n,)`` uint32 array of block counters.
        nonces: ``(n, 3)`` uint32 array — one 96-bit nonce per row.

    Returns:
        ``(n, 16)`` uint32 array of keystream words (64 bytes per row).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    counters = np.ascontiguousarray(counters, dtype=np.uint32)
    nonces = np.ascontiguousarray(nonces, dtype=np.uint32)
    if keys.ndim != 2 or keys.shape[1] != 8:
        raise CryptoError(f"keys must be (n, 8) uint32, got {keys.shape}")
    n = keys.shape[0]
    if counters.shape != (n,) or nonces.shape != (n, 3):
        raise CryptoError("counters/nonces shape mismatch with keys")

    # State layout: rows 0-3 constants, 4-11 key, 12 counter, 13-15 nonce.
    # We keep the word index as the FIRST axis so quarter rounds are
    # contiguous row operations over the batch.
    state = np.empty((16, n), dtype=np.uint32)
    state[0:4] = _CONSTANTS[:, None]
    state[4:12] = keys.T
    state[12] = counters
    state[13:16] = nonces.T

    working = state.copy()
    old = np.seterr(over="ignore")
    try:
        for _ in range(10):
            for a, b, c, d in _ROUND_PAIRS:
                _quarter_round(working, a, b, c, d)
        working += state
    finally:
        np.seterr(**old)
    return working.T.copy()


def chacha20_stream(key: bytes, nonce_words: tuple, length: int) -> bytes:
    """Generate ``length`` keystream bytes for one (key, nonce) pair.

    Args:
        key: 32-byte key.
        nonce_words: three integers forming the 96-bit nonce.
        length: number of keystream bytes to produce.

    Returns:
        ``length`` pseudorandom bytes.
    """
    if len(key) != 32:
        raise CryptoError("chacha20 key must be 32 bytes")
    if length < 0:
        raise CryptoError("length must be non-negative")
    if length == 0:
        return b""
    n_blocks = (length + 63) // 64
    keys = np.frombuffer(key, dtype="<u4").astype(np.uint32)
    keys = np.tile(keys, (n_blocks, 1))
    counters = np.arange(n_blocks, dtype=np.uint32)
    nonces = np.tile(np.array(nonce_words, dtype=np.uint32), (n_blocks, 1))
    blocks = chacha20_block(keys, counters, nonces)
    return blocks.astype("<u4").tobytes()[:length]


def xor_stream(key: bytes, nonce_words: tuple, data: bytes) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (encrypt == decrypt)."""
    stream = chacha20_stream(key, nonce_words, len(data))
    return bytes(a ^ b for a, b in zip(data, stream)) if len(data) < 64 else (
        np.frombuffer(data, dtype=np.uint8) ^ np.frombuffer(stream, dtype=np.uint8)
    ).tobytes()
