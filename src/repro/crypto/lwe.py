"""Single-server PIR from learning-with-errors (the paper's alternative mode).

§2.2: "Schemes whose security rests only on cryptographic assumptions also
exist, but these have higher communication and computation costs [7, 35]."
We implement such a scheme so ZLTP can actually negotiate it: a SimplePIR-
style construction (Henzinger et al.) from the plain LWE assumption.

The database is arranged as an ``r x c`` matrix of Z_p entries. A query for
column ``j`` is an LWE encryption of the unit vector ``e_j`` scaled by
``Δ = q/p``; the server's answer is one matrix-vector product; the client
removes the ``H·s`` mask using the *hint* ``H = DB·A`` it downloaded once
and rounds away the noise. Per query the server does O(r·c) word operations
— linear in the database, like the DPF scan, but with only ONE server and no
non-collusion assumption, at the cost of the large one-time hint download.

All arithmetic is mod ``q = 2**32``, done in uint64 and masked, which numpy
vectorises well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import CryptoError

_Q_BITS = 32
_Q = 1 << _Q_BITS
_MASK = np.uint64(_Q - 1)


@dataclass(frozen=True)
class LweParams:
    """Parameters for the LWE PIR scheme.

    Attributes:
        n: LWE secret dimension (security parameter; >=512 for real security,
            smaller in tests for speed — correctness is unaffected).
        p: plaintext modulus; database entries live in Z_p.
        noise_bound: errors are sampled uniformly from
            ``[-noise_bound, noise_bound]``.
    """

    n: int = 512
    p: int = 256
    noise_bound: int = 4

    def __post_init__(self):
        if self.n < 1:
            raise CryptoError("n must be positive")
        if not 2 <= self.p <= 2**16:
            raise CryptoError("p must be in [2, 2^16]")
        if self.noise_bound < 1:
            raise CryptoError("noise_bound must be at least 1")

    @property
    def delta(self) -> int:
        """The scaling factor Δ = q / p."""
        return _Q // self.p

    def max_columns(self) -> int:
        """Largest column count with guaranteed correct decryption.

        Decryption needs ``|DB·e| < Δ/2``; each of the ``c`` summands is at
        most ``(p-1)·noise_bound``.
        """
        per_term = (self.p - 1) * self.noise_bound
        return max(1, (self.delta // 2 - 1) // per_term)


def _mod(x: np.ndarray) -> np.ndarray:
    return x & _MASK


def shape_database(n_records: int) -> Tuple[int, int]:
    """Choose a near-square ``(rows, cols)`` layout for ``n_records`` cells."""
    if n_records < 1:
        raise CryptoError("n_records must be positive")
    cols = max(1, int(np.ceil(np.sqrt(n_records))))
    rows = (n_records + cols - 1) // cols
    return rows, cols


class LwePirServer:
    """The (single) server: holds the DB matrix and the public matrix A."""

    def __init__(self, db: np.ndarray, params: LweParams | None = None, seed: int = 7):
        """Create a server.

        Args:
            db: ``(r, c)`` array of integers in ``[0, p)``.
            params: scheme parameters.
            seed: seed for the public matrix ``A`` (shared with clients; in
                deployment this is a transparent public random string).
        """
        self.params = params if params is not None else LweParams()
        db = np.asarray(db, dtype=np.uint64)
        if db.ndim != 2:
            raise CryptoError("db must be a 2-D matrix")
        if db.size and int(db.max()) >= self.params.p:
            raise CryptoError(f"db entries must be < p = {self.params.p}")
        if db.shape[1] > self.params.max_columns():
            raise CryptoError(
                f"{db.shape[1]} columns exceeds correctness bound "
                f"{self.params.max_columns()}; lower p or noise_bound"
            )
        self.db = db
        rng = np.random.default_rng(seed)
        self.a_matrix = rng.integers(0, _Q, size=(db.shape[1], self.params.n), dtype=np.uint64)

    @property
    def shape(self) -> Tuple[int, int]:
        """The ``(rows, cols)`` database shape."""
        return self.db.shape

    def hint(self) -> np.ndarray:
        """The one-time client download ``H = DB · A mod q`` (r x n)."""
        return _mod(self.db @ self.a_matrix)

    def answer(self, query: np.ndarray) -> np.ndarray:
        """Answer a query vector: ``DB · query mod q`` (one linear scan)."""
        query = np.asarray(query, dtype=np.uint64)
        if query.shape != (self.db.shape[1],):
            raise CryptoError(
                f"query must have shape ({self.db.shape[1]},), got {query.shape}"
            )
        return _mod(self.db @ query)

    def update_column(self, column: int, new_values: np.ndarray
                      ) -> Tuple[int, np.ndarray]:
        """Replace one database column; returns a compact client hint delta.

        Publishers update blobs (§3.1 pushes); rather than forcing every
        client to re-download the full hint, the server applies the change
        and broadcasts ``(column, δ)`` with ``δ = new - old mod q`` — only
        ``rows`` words on the wire. Clients reconstruct the rank-1 hint
        increment ``δ ⊗ A[column]`` locally (they hold ``A``).

        Args:
            column: which record changed.
            new_values: the column's new Z_p entries, shape ``(rows,)``.

        Returns:
            ``(column, delta_vector)`` — the broadcastable update.
        """
        new_values = np.asarray(new_values, dtype=np.uint64)
        if new_values.shape != (self.db.shape[0],):
            raise CryptoError(
                f"column must have shape ({self.db.shape[0]},), got "
                f"{new_values.shape}"
            )
        if new_values.size and int(new_values.max()) >= self.params.p:
            raise CryptoError(f"entries must be < p = {self.params.p}")
        if not 0 <= column < self.db.shape[1]:
            raise CryptoError(f"column {column} out of range")
        delta = _mod(new_values - self.db[:, column])
        self.db = self.db.copy()
        self.db[:, column] = new_values
        return column, delta

    def query_bytes(self) -> int:
        """Upload size of one query in bytes."""
        return self.db.shape[1] * 4

    def answer_bytes(self) -> int:
        """Download size of one answer in bytes."""
        return self.db.shape[0] * 4

    def hint_bytes(self) -> int:
        """Size of the one-time hint in bytes."""
        return self.db.shape[0] * self.params.n * 4


class LwePirClient:
    """A client that can privately fetch any database column."""

    def __init__(self, server_a: np.ndarray, hint: np.ndarray, params: LweParams | None = None,
                 rng: np.random.Generator | None = None):
        """Create a client from the server's public matrix and hint."""
        self.params = params if params is not None else LweParams()
        self.a_matrix = np.asarray(server_a, dtype=np.uint64)
        self.hint = np.asarray(hint, dtype=np.uint64)
        self._rng = rng if rng is not None else np.random.default_rng()
        # Secrets queue FIFO so several queries may be in flight; answers
        # must come back in query order.
        self._secrets: list = []

    def apply_hint_update(self, column: int, delta: np.ndarray) -> None:
        """Fold a server-broadcast ``(column, δ)`` update into the hint."""
        delta = np.asarray(delta, dtype=np.uint64)
        if delta.shape != (self.hint.shape[0],):
            raise CryptoError(
                f"delta must have shape ({self.hint.shape[0]},), got "
                f"{delta.shape}"
            )
        if not 0 <= column < self.a_matrix.shape[0]:
            raise CryptoError(f"column {column} out of range")
        self.hint = _mod(self.hint + np.outer(delta, self.a_matrix[column]))

    def query(self, column: int) -> np.ndarray:
        """Build an encrypted query for ``column``.

        Returns the query vector to upload. The client remembers the secret
        for :meth:`decode`; one query at a time (call in lockstep).
        """
        c = self.a_matrix.shape[0]
        if not 0 <= column < c:
            raise CryptoError(f"column {column} out of range [0, {c})")
        params = self.params
        secret = self._rng.integers(0, _Q, size=params.n, dtype=np.uint64)
        noise = self._rng.integers(
            -params.noise_bound, params.noise_bound + 1, size=c
        ).astype(np.int64)
        query = _mod(self.a_matrix @ secret + noise.astype(np.uint64))
        query[column] = _mod(query[column : column + 1] + np.uint64(params.delta))[0]
        self._secrets.append(secret)
        return query

    def decode(self, answer: np.ndarray) -> np.ndarray:
        """Recover the queried column (answers decode in query order)."""
        if not self._secrets:
            raise CryptoError("decode called before query")
        secret = self._secrets.pop(0)
        answer = np.asarray(answer, dtype=np.uint64)
        masked = _mod(answer - _mod(self.hint @ secret))
        # Round Δ-scaled values: nearest multiple of Δ, mod p.
        delta = self.params.delta
        # Work in int64 to express "nearest" around the wraparound cleanly.
        vals = ((masked.astype(np.float64) / delta) + 0.5).astype(np.int64)
        return (vals % self.params.p).astype(np.uint64)


__all__ = ["LweParams", "LwePirServer", "LwePirClient", "shape_database"]
