"""Distributed DPF evaluation — the front-end / data-server split of §5.2.

The paper scales ZLTP across 305 data servers by having a front-end server
evaluate the *top* of the DPF tree once, then hand each data server the seed
of its sub-tree: "DPF evaluation is done by building a tree, and so the
front-end server can build the top part of the tree and then, for each
sub-tree, send the sub-tree root to the corresponding server. The cost for
the data server of completing the DPF evaluation from that point is the same
as the cost of evaluating the DPF key for the smaller domain."

:func:`split_dpf_key` performs the front-end work; :func:`eval_subkey_full`
is what a data server runs. Concatenating every sub-tree's output in prefix
order reproduces the full-domain evaluation bit-for-bit — this is the
correctness property benchmark E6 checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.crypto.dpf import DpfKey
from repro.crypto.prg import convert_seeds, expand_seeds
from repro.errors import CryptoError


@dataclass
class SubtreeKey:
    """The state a data server needs to finish a DPF evaluation (§5.2).

    Attributes:
        party: which server pair member this share belongs to.
        prefix: index of this sub-tree among the ``2**prefix_bits`` sub-trees.
        prefix_bits: how many top levels the front-end already evaluated.
        remaining_bits: tree levels left for the data server to expand.
        seed: ``(4,)`` uint32 sub-tree root seed.
        t_bit: the control bit at the sub-tree root.
        cw_seeds: ``(remaining_bits, 4)`` correction words for the remaining
            levels (the tail of the original key's correction words).
        cw_t_left / cw_t_right: matching control-bit corrections.
        out_bytes / cw_final: output conversion data, as in :class:`DpfKey`.
    """

    party: int
    prefix: int
    prefix_bits: int
    remaining_bits: int
    seed: np.ndarray
    t_bit: int
    cw_seeds: np.ndarray
    cw_t_left: np.ndarray
    cw_t_right: np.ndarray
    out_bytes: int = 0
    cw_final: Optional[np.ndarray] = None

    @property
    def domain_size(self) -> int:
        """Number of leaves under this sub-tree."""
        return 1 << self.remaining_bits

    def size_bytes(self) -> int:
        """Approximate wire size of the sub-tree key in bytes.

        seed (16) + control bit (1) + the remaining correction words. This is
        what the front-end ships to one data server per request.
        """
        per_level = 16 + 1
        final = self.out_bytes if self.out_bytes else 0
        return 16 + 1 + self.remaining_bits * per_level + final


def split_dpf_key(key: DpfKey, prefix_bits: int) -> List[SubtreeKey]:
    """Evaluate the top ``prefix_bits`` levels and emit one key per sub-tree.

    This is the front-end server's job in the §5.2 deployment. The cost is
    ``O(2**prefix_bits)`` PRG expansions — tiny next to the data servers'
    scans — and afterwards each data server only pays for a DPF evaluation
    over the *smaller* domain of ``domain_bits - prefix_bits`` levels.

    Args:
        key: one party's full DPF key.
        prefix_bits: number of levels to evaluate at the front-end; must be
            in ``[0, key.domain_bits]``.

    Returns:
        ``2**prefix_bits`` sub-tree keys in prefix order.
    """
    if not 0 <= prefix_bits <= key.domain_bits:
        raise CryptoError(
            f"prefix_bits must be in [0, {key.domain_bits}], got {prefix_bits}"
        )
    seeds = key.root_seed.reshape(1, 4).copy()
    t_bits = np.array([key.party], dtype=np.uint8)
    for level in range(prefix_bits):
        left, right, tl, tr = expand_seeds(seeds)
        mask = t_bits.astype(bool)
        if mask.any():
            left[mask] ^= key.cw_seeds[level]
            right[mask] ^= key.cw_seeds[level]
            tl[mask] ^= key.cw_t_left[level]
            tr[mask] ^= key.cw_t_right[level]
        n = seeds.shape[0]
        new_seeds = np.empty((2 * n, 4), dtype=np.uint32)
        new_seeds[0::2] = left
        new_seeds[1::2] = right
        new_t = np.empty(2 * n, dtype=np.uint8)
        new_t[0::2] = tl
        new_t[1::2] = tr
        seeds = new_seeds
        t_bits = new_t

    remaining = key.domain_bits - prefix_bits
    subkeys = []
    for prefix in range(1 << prefix_bits):
        subkeys.append(
            SubtreeKey(
                party=key.party,
                prefix=prefix,
                prefix_bits=prefix_bits,
                remaining_bits=remaining,
                seed=seeds[prefix].copy(),
                t_bit=int(t_bits[prefix]),
                cw_seeds=key.cw_seeds[prefix_bits:].copy(),
                cw_t_left=key.cw_t_left[prefix_bits:].copy(),
                cw_t_right=key.cw_t_right[prefix_bits:].copy(),
                out_bytes=key.out_bytes,
                cw_final=None if key.cw_final is None else key.cw_final.copy(),
            )
        )
    return subkeys


def eval_subkeys_batch(subkeys: List[SubtreeKey]) -> np.ndarray:
    """Evaluate every sub-tree of one split in a single vectorised pass.

    All sub-keys emitted by one :func:`split_dpf_key` call share their
    correction-word tail and depth, so their level loops can be fused:
    stacking the ``2**prefix_bits`` sub-tree roots and expanding them
    together costs exactly one full-domain evaluation while paying the
    per-level Python overhead *once* instead of once per data server. This
    is how the in-process front-end simulates the fleet's collective DPF
    work without multiplying interpreter overhead by the shard count.

    Args:
        subkeys: the sub-tree keys of one ``split_dpf_key`` call, in prefix
            order (same party, same remaining depth, same correction tail).

    Returns:
        In bit-output mode a ``(len(subkeys), 2**remaining_bits)`` uint8
        array — row ``i`` equals ``eval_subkey_full(subkeys[i])`` exactly;
        in block-output mode ``(len(subkeys), 2**remaining_bits, out_bytes)``.
    """
    if not subkeys:
        raise CryptoError("need at least one sub-tree key")
    head = subkeys[0]
    for subkey in subkeys[1:]:
        if (subkey.party, subkey.remaining_bits, subkey.out_bytes) != (
            head.party, head.remaining_bits, head.out_bytes
        ):
            raise CryptoError("sub-tree keys must come from a single split")
    seeds = np.stack([s.seed for s in subkeys]).astype(np.uint32)
    t_bits = np.array([s.t_bit for s in subkeys], dtype=np.uint8)
    for level in range(head.remaining_bits):
        left, right, tl, tr = expand_seeds(seeds)
        mask = t_bits.astype(bool)
        if mask.any():
            left[mask] ^= head.cw_seeds[level]
            right[mask] ^= head.cw_seeds[level]
            tl[mask] ^= head.cw_t_left[level]
            tr[mask] ^= head.cw_t_right[level]
        n = seeds.shape[0]
        new_seeds = np.empty((2 * n, 4), dtype=np.uint32)
        new_seeds[0::2] = left
        new_seeds[1::2] = right
        new_t = np.empty(2 * n, dtype=np.uint8)
        new_t[0::2] = tl
        new_t[1::2] = tr
        seeds = new_seeds
        t_bits = new_t
    # Tree expansion keeps each root's leaves contiguous and in input
    # order, so reshaping recovers the per-sub-tree rows.
    if head.out_bytes == 0:
        return t_bits.reshape(len(subkeys), -1)
    shares = convert_seeds(seeds, head.out_bytes)
    mask = t_bits.astype(bool)
    shares[mask] ^= head.cw_final
    return shares.reshape(len(subkeys), -1, head.out_bytes)


def eval_subkey_full(subkey: SubtreeKey) -> np.ndarray:
    """Finish a DPF evaluation over one sub-tree (the data server's job).

    Returns:
        In bit-output mode, a ``(2**remaining_bits,)`` uint8 array of share
        bits for the leaves under this sub-tree; in block-output mode, a
        ``(2**remaining_bits, out_bytes)`` uint8 array.
    """
    seeds = subkey.seed.reshape(1, 4).copy()
    t_bits = np.array([subkey.t_bit], dtype=np.uint8)
    for level in range(subkey.remaining_bits):
        left, right, tl, tr = expand_seeds(seeds)
        mask = t_bits.astype(bool)
        if mask.any():
            left[mask] ^= subkey.cw_seeds[level]
            right[mask] ^= subkey.cw_seeds[level]
            tl[mask] ^= subkey.cw_t_left[level]
            tr[mask] ^= subkey.cw_t_right[level]
        n = seeds.shape[0]
        new_seeds = np.empty((2 * n, 4), dtype=np.uint32)
        new_seeds[0::2] = left
        new_seeds[1::2] = right
        new_t = np.empty(2 * n, dtype=np.uint8)
        new_t[0::2] = tl
        new_t[1::2] = tr
        seeds = new_seeds
        t_bits = new_t
    if subkey.out_bytes == 0:
        return t_bits
    shares = convert_seeds(seeds, subkey.out_bytes)
    mask = t_bits.astype(bool)
    shares[mask] ^= subkey.cw_final
    return shares


__all__ = ["SubtreeKey", "split_dpf_key", "eval_subkey_full", "eval_subkeys_batch"]
