"""Authenticated encryption for access-controlled lightweb content (§3.3).

"To solve this problem, the CDN can simply store an encryption of the data.
When the client makes an account with the publisher outside of lightweb, it
obtains cryptographic key(s) that it can use to decrypt data for that
publisher that correspond to its permissions."

The construction is encrypt-then-MAC: ChaCha20 for confidentiality, keyed
BLAKE2b for integrity, with independent subkeys derived from the single
32-byte account key. Ciphertexts are exactly ``NONCE_BYTES + len(plaintext)
+ TAG_BYTES`` long — a fixed expansion, which matters because every lightweb
data blob must stay within the universe's fixed blob size.
"""

from __future__ import annotations

import hashlib
import hmac
import os

import numpy as np

from repro.crypto.chacha import chacha20_stream
from repro.errors import CryptoError, IntegrityError

KEY_BYTES = 32
NONCE_BYTES = 12
TAG_BYTES = 16

#: Total ciphertext expansion over the plaintext, in bytes.
OVERHEAD_BYTES = NONCE_BYTES + TAG_BYTES


def generate_key(rng_bytes: bytes = b"") -> bytes:
    """Return a fresh 32-byte key (deterministic if ``rng_bytes`` given)."""
    if rng_bytes:
        return hashlib.blake2b(rng_bytes, digest_size=KEY_BYTES).digest()
    return os.urandom(KEY_BYTES)


def _subkeys(key: bytes) -> tuple:
    """Derive independent (encryption, MAC) subkeys from the account key."""
    if len(key) != KEY_BYTES:
        raise CryptoError(f"key must be {KEY_BYTES} bytes, got {len(key)}")
    enc = hashlib.blake2b(key, digest_size=KEY_BYTES, person=b"lw-aead-enc").digest()
    mac = hashlib.blake2b(key, digest_size=KEY_BYTES, person=b"lw-aead-mac").digest()
    return enc, mac


def _nonce_words(nonce: bytes) -> tuple:
    return tuple(int.from_bytes(nonce[i : i + 4], "little") for i in (0, 4, 8))


def _xor(data: bytes, stream: bytes) -> bytes:
    # Branch-free, including the empty-plaintext case: an emptiness
    # early-out would branch on secret plaintext length.
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(stream[: len(data)], dtype=np.uint8)
    return (a ^ b).tobytes()


def _tag(mac_key: bytes, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
    h = hashlib.blake2b(digest_size=TAG_BYTES, key=mac_key)
    h.update(len(aad).to_bytes(8, "little"))
    h.update(aad)
    h.update(nonce)
    h.update(ciphertext)
    return h.digest()


def seal(key: bytes, plaintext: bytes, aad: bytes = b"", nonce: bytes = b"") -> bytes:
    """Encrypt and authenticate ``plaintext``.

    Args:
        key: 32-byte account key.
        plaintext: the data blob contents.
        aad: associated data bound into the tag but not encrypted — lightweb
            binds the blob's path here so a malicious CDN cannot swap blobs
            between paths undetected.
        nonce: optional explicit 12-byte nonce (random if omitted).

    Returns:
        ``nonce || ciphertext || tag``.
    """
    enc_key, mac_key = _subkeys(key)
    if not nonce:
        nonce = os.urandom(NONCE_BYTES)
    if len(nonce) != NONCE_BYTES:
        raise CryptoError(f"nonce must be {NONCE_BYTES} bytes")
    stream = chacha20_stream(enc_key, _nonce_words(nonce), len(plaintext))
    ciphertext = _xor(plaintext, stream)
    tag = _tag(mac_key, nonce, ciphertext, aad)
    return nonce + ciphertext + tag


def open_sealed(key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify and decrypt a sealed blob.

    Raises:
        IntegrityError: if the tag does not verify (wrong key, wrong aad, or
            tampered ciphertext) — the §3.3 revocation path: a client holding
            a rotated-out key simply fails here.
    """
    enc_key, mac_key = _subkeys(key)
    if len(sealed) < OVERHEAD_BYTES:
        raise IntegrityError("sealed blob shorter than nonce + tag")
    nonce = sealed[:NONCE_BYTES]
    ciphertext = sealed[NONCE_BYTES:-TAG_BYTES]
    tag = sealed[-TAG_BYTES:]
    expected = _tag(mac_key, nonce, ciphertext, aad)
    if not hmac.compare_digest(tag, expected):
        raise IntegrityError("authentication tag mismatch")
    stream = chacha20_stream(enc_key, _nonce_words(nonce), len(ciphertext))
    return _xor(ciphertext, stream)


__all__ = [
    "seal",
    "open_sealed",
    "generate_key",
    "KEY_BYTES",
    "NONCE_BYTES",
    "TAG_BYTES",
    "OVERHEAD_BYTES",
]
