"""Cryptographic building blocks for lightweb, implemented from scratch.

The centrepiece is :mod:`repro.crypto.dpf`, a two-party distributed point
function (Boyle-Gilboa-Ishai, CCS 2016) — the primitive the paper's prototype
uses for two-server private information retrieval. Everything the DPF needs
(a vectorised ChaCha20 block function and a tree PRG) is also here, as are the
supporting primitives the paper calls for: keyed hashing of lightweb paths
into the DPF output domain, cuckoo hashing as the collision mitigation,
authenticated encryption for access-controlled content, GGM-style key trees
for revocation, and a Regev-LWE single-server PIR core for the
"cryptographic assumptions only" mode of operation.
"""

from repro.crypto.chacha import chacha20_block, chacha20_stream
from repro.crypto.prg import Prg, expand_seeds, seed_bytes_to_words, seed_words_to_bytes
from repro.crypto.dpf import DpfKey, gen_dpf, eval_dpf, eval_dpf_full, dpf_key_bits
from repro.crypto.dpf_distributed import split_dpf_key, eval_subkey_full, SubtreeKey
from repro.crypto.hashing import KeyedHash, collision_probability, domain_bits_for
from repro.crypto.cuckoo import CuckooTable
from repro.crypto.aead import seal, open_sealed, generate_key
from repro.crypto.keys import KeyEpoch, PublisherKeychain, BroadcastKeyTree
from repro.crypto.lwe import LweParams, LwePirClient, LwePirServer
from repro.crypto.merkle import MerkleTree, verify_proof

__all__ = [
    "chacha20_block",
    "chacha20_stream",
    "Prg",
    "expand_seeds",
    "seed_bytes_to_words",
    "seed_words_to_bytes",
    "DpfKey",
    "gen_dpf",
    "eval_dpf",
    "eval_dpf_full",
    "dpf_key_bits",
    "split_dpf_key",
    "eval_subkey_full",
    "SubtreeKey",
    "KeyedHash",
    "collision_probability",
    "domain_bits_for",
    "CuckooTable",
    "seal",
    "open_sealed",
    "generate_key",
    "KeyEpoch",
    "PublisherKeychain",
    "BroadcastKeyTree",
    "LweParams",
    "LwePirClient",
    "LwePirServer",
    "MerkleTree",
    "verify_proof",
]
