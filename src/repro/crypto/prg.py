"""Tree PRG for distributed point functions, built on vectorised ChaCha20.

A DPF walks a binary tree of 128-bit seeds. At each level every seed is
expanded into two child seeds plus two control bits — the classic GGM tree
shape. :func:`expand_seeds` performs that expansion for an arbitrary batch of
seeds with a single vectorised ChaCha20 call, which is what keeps full-domain
evaluation (the server-side linear scan of paper §5.1) fast enough to
benchmark in Python.

Seeds are represented as ``(n, 4)`` uint32 numpy arrays (128 bits per row).
"""

from __future__ import annotations

import os

import numpy as np

from repro.crypto.chacha import chacha20_block, chacha20_stream
from repro.errors import CryptoError

#: Domain-separating nonces: tree expansion vs. leaf value conversion.
_EXPAND_NONCE = (0x65787061, 0x6E640000, 0x00000001)
_CONVERT_NONCE = (0x636F6E76, 0x65727400, 0x00000002)

SEED_WORDS = 4
SEED_BYTES = 16


def random_seed(rng: np.random.Generator | None = None) -> np.ndarray:
    """Return a fresh random 128-bit seed as a ``(4,)`` uint32 array."""
    if rng is None:
        raw = os.urandom(SEED_BYTES)
        return np.frombuffer(raw, dtype="<u4").astype(np.uint32)
    return rng.integers(0, 2**32, size=SEED_WORDS, dtype=np.uint32)


def seed_bytes_to_words(raw: bytes) -> np.ndarray:
    """Convert a 16-byte seed into its ``(4,)`` uint32 word form."""
    if len(raw) != SEED_BYTES:
        raise CryptoError(f"seed must be {SEED_BYTES} bytes, got {len(raw)}")
    return np.frombuffer(raw, dtype="<u4").astype(np.uint32)


def seed_words_to_bytes(words: np.ndarray) -> bytes:
    """Convert a ``(4,)`` uint32 seed into its 16-byte wire form."""
    words = np.asarray(words, dtype=np.uint32)
    if words.shape != (SEED_WORDS,):
        raise CryptoError(f"seed must have shape (4,), got {words.shape}")
    return words.astype("<u4").tobytes()


def _seeds_to_keys(seeds: np.ndarray) -> np.ndarray:
    """Stretch ``(n, 4)`` seeds to ``(n, 8)`` ChaCha keys by duplication."""
    return np.concatenate([seeds, seeds], axis=1)


def expand_seeds(seeds: np.ndarray):
    """Expand a batch of seeds one tree level down.

    Args:
        seeds: ``(n, 4)`` uint32 array of parent seeds.

    Returns:
        Tuple ``(left, right, t_left, t_right)`` where ``left`` and ``right``
        are ``(n, 4)`` child-seed arrays and ``t_left``/``t_right`` are
        ``(n,)`` uint8 arrays of control bits.
    """
    seeds = np.asarray(seeds, dtype=np.uint32)
    if seeds.ndim != 2 or seeds.shape[1] != SEED_WORDS:
        raise CryptoError(f"seeds must be (n, 4) uint32, got {seeds.shape}")
    n = seeds.shape[0]
    keys = _seeds_to_keys(seeds)
    counters = np.zeros(n, dtype=np.uint32)
    nonces = np.tile(np.array(_EXPAND_NONCE, dtype=np.uint32), (n, 1))
    block = chacha20_block(keys, counters, nonces)
    left = block[:, 0:4].copy()
    right = block[:, 4:8].copy()
    t_left = (block[:, 8] & 1).astype(np.uint8)
    t_right = ((block[:, 8] >> 1) & 1).astype(np.uint8)
    return left, right, t_left, t_right


def convert_seeds(seeds: np.ndarray, out_bytes: int) -> np.ndarray:
    """Convert a batch of leaf seeds into pseudorandom output blocks.

    This is the ``Convert`` map of the BGI16 DPF: it turns the final seed at a
    leaf into an element of the output group (here: a byte block under XOR).

    Args:
        seeds: ``(n, 4)`` uint32 array of leaf seeds.
        out_bytes: length of each output block in bytes.

    Returns:
        ``(n, out_bytes)`` uint8 array.
    """
    seeds = np.asarray(seeds, dtype=np.uint32)
    if seeds.ndim != 2 or seeds.shape[1] != SEED_WORDS:
        raise CryptoError(f"seeds must be (n, 4) uint32, got {seeds.shape}")
    if out_bytes <= 0:
        raise CryptoError("out_bytes must be positive")
    n = seeds.shape[0]
    blocks_per_seed = (out_bytes + 63) // 64
    keys = np.repeat(_seeds_to_keys(seeds), blocks_per_seed, axis=0)
    counters = np.tile(np.arange(blocks_per_seed, dtype=np.uint32), n)
    nonces = np.tile(np.array(_CONVERT_NONCE, dtype=np.uint32), (n * blocks_per_seed, 1))
    block = chacha20_block(keys, counters, nonces)
    raw = block.astype("<u4").view(np.uint8).reshape(n, blocks_per_seed * 64)
    return raw[:, :out_bytes].copy()


class Prg:
    """A seekable pseudorandom generator keyed by a 16- or 32-byte seed.

    Used wherever the library needs deterministic pseudorandomness outside the
    DPF tree itself: blob padding, synthetic corpora, nonce derivation.
    """

    def __init__(self, seed: bytes, domain: int = 0):
        """Create a PRG.

        Args:
            seed: 16 or 32 bytes of key material.
            domain: a small integer domain-separation tag; two PRGs with the
                same seed but different domains produce independent streams.
        """
        if len(seed) == SEED_BYTES:
            seed = seed + seed
        if len(seed) != 32:
            raise CryptoError("Prg seed must be 16 or 32 bytes")
        self._key = seed
        self._nonce = (0x70726730, domain & 0xFFFFFFFF, 0x00000003)
        self._offset = 0

    def read(self, length: int) -> bytes:
        """Return the next ``length`` bytes of the stream."""
        # Generating from the start each call would be quadratic; instead we
        # generate the covering block range and slice.
        start = self._offset
        end = start + length
        first_block = start // 64
        last_block = (end + 63) // 64
        span = chacha20_stream_range(self._key, self._nonce, first_block, last_block)
        self._offset = end
        return span[start - first_block * 64 : end - first_block * 64]

    def read_uint64(self, n: int) -> np.ndarray:
        """Return ``n`` pseudorandom uint64 values."""
        raw = self.read(8 * n)
        return np.frombuffer(raw, dtype="<u8").astype(np.uint64)


def chacha20_stream_range(key: bytes, nonce_words: tuple, first_block: int, last_block: int) -> bytes:
    """Generate keystream blocks ``[first_block, last_block)`` for one key."""
    n_blocks = last_block - first_block
    if n_blocks <= 0:
        return b""
    keys = np.tile(np.frombuffer(key, dtype="<u4").astype(np.uint32), (n_blocks, 1))
    counters = np.arange(first_block, last_block, dtype=np.uint32)
    nonces = np.tile(np.array(nonce_words, dtype=np.uint32), (n_blocks, 1))
    return chacha20_block(keys, counters, nonces).astype("<u4").tobytes()


__all__ = [
    "Prg",
    "expand_seeds",
    "convert_seeds",
    "random_seed",
    "seed_bytes_to_words",
    "seed_words_to_bytes",
    "chacha20_stream_range",
    "SEED_BYTES",
    "SEED_WORDS",
]
