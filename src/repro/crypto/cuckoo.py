"""Cuckoo hashing — the paper's suggested collision mitigation (§5.1).

"We could decrease this probability by increasing the DPF output domain or by
using cuckoo hashing and probing several locations per request."

A :class:`CuckooTable` places each key at one of ``n_hashes`` candidate slots
(computed with :class:`~repro.crypto.hashing.KeyedHash` probes), evicting
residents along a random walk when all candidates are full. A keyword-PIR
client built on it (see :mod:`repro.pir.keyword`) issues one private-GET per
probe location, so lookups stay oblivious while eliminating insertion
failures at load factors far beyond what a single-hash table tolerates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.crypto.hashing import KeyedHash
from repro.errors import CapacityError, CollisionError, CryptoError


class CuckooTable:
    """A cuckoo hash table mapping string keys to slots in a power-of-two domain.

    The table stores only the key-to-slot *placement*; the blobs themselves
    live in the PIR database at the chosen slots. ``n_hashes=1`` degenerates
    to the paper's baseline single-hash placement (useful for comparing
    failure rates in benchmark E8).
    """

    def __init__(
        self,
        domain_bits: int,
        n_hashes: int = 2,
        salt: bytes = b"",
        max_evictions: int = 500,
        rng: Optional[np.random.Generator] = None,
    ):
        """Create an empty table over ``2**domain_bits`` slots."""
        if n_hashes < 1:
            raise CryptoError("n_hashes must be at least 1")
        self.domain_bits = domain_bits
        self.n_hashes = n_hashes
        self.hash = KeyedHash(domain_bits, salt)
        self.max_evictions = max_evictions
        self._rng = rng if rng is not None else np.random.default_rng(0xC0C0)
        self._slot_to_key: Dict[int, str] = {}
        self._key_to_slot: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._key_to_slot)

    def __contains__(self, key: str) -> bool:
        return key in self._key_to_slot

    @property
    def load_factor(self) -> float:
        """Fraction of the domain currently occupied."""
        return len(self) / self.hash.domain_size

    def candidates(self, key: str) -> List[int]:
        """The ``n_hashes`` slots where ``key`` may legally live.

        A keyword-PIR client privately probes exactly these locations.
        """
        return [self.hash.slot(key, probe=i) for i in range(self.n_hashes)]

    def slot_of(self, key: str) -> int:
        """Return the slot where ``key`` was placed.

        Raises:
            KeyError: if the key is not in the table.
        """
        return self._key_to_slot[key]

    def insert(self, key: str) -> int:  # lint: allow(secret-branch) — publisher-side placement over the public name directory; client-side secret lookups go through the branch-free candidates() probes only
        """Place ``key``, evicting residents if needed; return its slot.

        Raises:
            CollisionError: if ``n_hashes == 1`` and the single slot is
                occupied by a different key (the paper's "select another key
                name" case).
            CapacityError: if the eviction walk exceeds ``max_evictions``.
        """
        if key in self._key_to_slot:
            return self._key_to_slot[key]
        if self.n_hashes == 1:
            slot = self.hash.slot(key, probe=0)
            resident = self._slot_to_key.get(slot)
            if resident is not None:
                raise CollisionError(
                    f"slot {slot} already holds {resident!r}; "
                    "single-hash placement cannot resolve this"
                )
            self._place(key, slot)
            return slot

        current = key
        for _ in range(self.max_evictions):
            free = [s for s in self.candidates(current) if s not in self._slot_to_key]
            if free:
                slot = free[0]
                self._place(current, slot)
                return self._key_to_slot[key]
            # All candidates full: evict a random resident and retry with it.
            slots = self.candidates(current)
            victim_slot = slots[int(self._rng.integers(0, len(slots)))]
            victim = self._slot_to_key[victim_slot]
            self._unplace(victim, victim_slot)
            self._place(current, victim_slot)
            current = victim
        raise CapacityError(
            f"cuckoo eviction walk exceeded {self.max_evictions} steps "
            f"at load factor {self.load_factor:.3f}"
        )

    def remove(self, key: str) -> None:
        """Remove ``key`` from the table."""
        slot = self._key_to_slot.pop(key)
        del self._slot_to_key[slot]

    def items(self) -> Iterable[Tuple[str, int]]:
        """Iterate over ``(key, slot)`` placements."""
        return self._key_to_slot.items()

    def _place(self, key: str, slot: int) -> None:
        self._slot_to_key[slot] = key
        self._key_to_slot[key] = slot

    def _unplace(self, key: str, slot: int) -> None:
        del self._slot_to_key[slot]
        del self._key_to_slot[key]


def build_table(
    keys: Iterable[str],
    domain_bits: int,
    n_hashes: int = 2,
    max_rebuilds: int = 8,
    salt: bytes = b"",
) -> CuckooTable:
    """Build a table over ``keys``, re-salting and retrying on failure.

    Returns:
        A fully populated :class:`CuckooTable`.

    Raises:
        CapacityError: if no build succeeds within ``max_rebuilds`` salts.
    """
    keys = list(keys)
    for attempt in range(max_rebuilds):
        table = CuckooTable(
            domain_bits,
            n_hashes=n_hashes,
            salt=salt + attempt.to_bytes(4, "little"),
        )
        try:
            for key in keys:
                table.insert(key)
            return table
        except (CollisionError, CapacityError):
            continue
    raise CapacityError(
        f"could not build cuckoo table for {len(keys)} keys in 2^{domain_bits} "
        f"slots after {max_rebuilds} rebuilds"
    )


__all__ = ["CuckooTable", "build_table"]
