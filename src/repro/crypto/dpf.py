"""Two-party distributed point functions (Boyle-Gilboa-Ishai, CCS 2016).

This is the cryptographic core of the paper's prototype: "We use Google's
distributed point function library for two-server private information
retrieval" (§5). A DPF lets a dealer split the point function

    f_{alpha,beta}(x) = beta if x == alpha else 0

into two keys such that each key alone reveals nothing about ``alpha`` or
``beta``, yet the two parties' evaluations XOR to ``f(x)`` at every point.
For PIR, the client deals keys for ``beta = 1``; each server expands its key
over the whole database index domain (``eval_dpf_full``) and XORs together
the records selected by its share bits. The two servers' answers XOR to
exactly the record at ``alpha`` — and each server saw only a pseudorandom
bit vector.

Two output flavours are provided:

- **bit output** (``value=None``): the natural GF(2) sharing where the leaf
  control bits themselves share the indicator function. This is what the PIR
  scan consumes and matches the cost model of §5.1.
- **block output** (``value=bytes``): a byte-string under XOR, via a final
  correction word. Used by the private-aggregation substrate and anywhere a
  full value (not just a selector) must be shared.

Key size matches the paper's formula: "(λ+2)·d where λ is the security
parameter (λ=128) and 2^d is the size of the output domain" (§5.1) — see
:func:`dpf_key_bits`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.crypto import prg
from repro.crypto.prg import (
    SEED_BYTES,
    convert_seeds,
    expand_seeds,
    random_seed,
)
from repro.errors import CryptoError

#: The security parameter λ of §5.1 — the seed length in bits.
LAMBDA_BITS = 128

MAX_DOMAIN_BITS = 30


def dpf_key_bits(domain_bits: int, lam: int = LAMBDA_BITS) -> int:
    """Theoretical DPF key size in bits: the paper's (λ+2)·d formula (§5.1)."""
    if domain_bits <= 0:
        raise CryptoError("domain_bits must be positive")
    return (lam + 2) * domain_bits


@dataclass
class DpfKey:
    """One party's share of a distributed point function.

    Attributes:
        party: 0 or 1 — which of the two servers this key belongs to.
        domain_bits: d; the key evaluates points in ``[0, 2**d)``.
        root_seed: ``(4,)`` uint32 — the party's level-0 seed.
        cw_seeds: ``(d, 4)`` uint32 — per-level seed correction words.
        cw_t_left: ``(d,)`` uint8 — per-level left control-bit corrections.
        cw_t_right: ``(d,)`` uint8 — per-level right control-bit corrections.
        out_bytes: output block length; 0 means bit-output mode.
        cw_final: ``(out_bytes,)`` uint8 final correction word, or None in
            bit-output mode.
    """

    party: int
    domain_bits: int
    root_seed: np.ndarray
    cw_seeds: np.ndarray
    cw_t_left: np.ndarray
    cw_t_right: np.ndarray
    out_bytes: int = 0
    cw_final: Optional[np.ndarray] = None

    @property
    def domain_size(self) -> int:
        """Number of points in the key's domain, 2**domain_bits."""
        return 1 << self.domain_bits

    def size_bytes(self) -> int:
        """Serialised key size in bytes."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Serialise the key to its wire form."""
        header = struct.pack("<BBI", self.party, self.domain_bits, self.out_bytes)
        body = [header, prg.seed_words_to_bytes(self.root_seed)]
        for level in range(self.domain_bits):
            body.append(prg.seed_words_to_bytes(self.cw_seeds[level]))
            packed = (int(self.cw_t_left[level]) & 1) | ((int(self.cw_t_right[level]) & 1) << 1)
            body.append(bytes([packed]))
        if self.out_bytes:
            body.append(self.cw_final.astype(np.uint8).tobytes())
        return b"".join(body)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DpfKey":
        """Parse a key from its wire form, validating structure."""
        if len(raw) < 6 + SEED_BYTES:
            raise CryptoError("DPF key too short")
        party, domain_bits, out_bytes = struct.unpack_from("<BBI", raw, 0)
        if party not in (0, 1):
            raise CryptoError(f"invalid DPF party {party}")
        if not 1 <= domain_bits <= MAX_DOMAIN_BITS:
            raise CryptoError(f"invalid domain_bits {domain_bits}")
        offset = 6
        expected = offset + SEED_BYTES + domain_bits * (SEED_BYTES + 1) + out_bytes
        if len(raw) != expected:
            raise CryptoError(
                f"DPF key length mismatch: got {len(raw)}, expected {expected}"
            )
        root_seed = prg.seed_bytes_to_words(raw[offset : offset + SEED_BYTES])
        offset += SEED_BYTES
        cw_seeds = np.empty((domain_bits, 4), dtype=np.uint32)
        cw_tl = np.empty(domain_bits, dtype=np.uint8)
        cw_tr = np.empty(domain_bits, dtype=np.uint8)
        for level in range(domain_bits):
            cw_seeds[level] = prg.seed_bytes_to_words(raw[offset : offset + SEED_BYTES])
            offset += SEED_BYTES
            packed = raw[offset]
            offset += 1
            cw_tl[level] = packed & 1
            cw_tr[level] = (packed >> 1) & 1
        cw_final = None
        if out_bytes:
            cw_final = np.frombuffer(raw[offset:], dtype=np.uint8).copy()
        return cls(
            party=party,
            domain_bits=domain_bits,
            root_seed=root_seed,
            cw_seeds=cw_seeds,
            cw_t_left=cw_tl,
            cw_t_right=cw_tr,
            out_bytes=out_bytes,
            cw_final=cw_final,
        )


def gen_dpf(  # lint: allow(secret-branch) — dealer-side: alpha/beta are the dealer's own secrets; only the pseudorandom keys leave this process, so local branching on alpha is unobservable
    alpha: int,
    domain_bits: int,
    value: Optional[bytes] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[DpfKey, DpfKey]:
    """Deal a pair of DPF keys for the point function at ``alpha``.

    Args:
        alpha: the distinguished point, in ``[0, 2**domain_bits)``.
        domain_bits: d, the depth of the evaluation tree.
        value: the non-zero output ``beta`` as a byte string, or None for the
            bit-output mode (``beta = 1`` in GF(2)).
        rng: optional deterministic randomness source (for tests).

    Returns:
        ``(key0, key1)`` — one key per server.
    """
    if not 1 <= domain_bits <= MAX_DOMAIN_BITS:
        raise CryptoError(f"domain_bits must be in [1, {MAX_DOMAIN_BITS}]")
    if not 0 <= alpha < (1 << domain_bits):
        raise CryptoError(f"alpha {alpha} out of domain [0, 2^{domain_bits})")
    if value is not None and len(value) == 0:
        raise CryptoError("value must be non-empty (or None for bit output)")

    seeds = np.stack([random_seed(rng), random_seed(rng)])  # (2, 4)
    t_bits = np.array([0, 1], dtype=np.uint8)

    cw_seeds = np.empty((domain_bits, 4), dtype=np.uint32)
    cw_tl = np.empty(domain_bits, dtype=np.uint8)
    cw_tr = np.empty(domain_bits, dtype=np.uint8)
    root_seeds = (seeds[0].copy(), seeds[1].copy())

    for level in range(domain_bits):
        bit = (alpha >> (domain_bits - 1 - level)) & 1
        left, right, tl, tr = expand_seeds(seeds)
        keep_seed, lose_seed = (right, left) if bit else (left, right)
        keep_t = tr if bit else tl

        seed_cw = lose_seed[0] ^ lose_seed[1]
        tl_cw = np.uint8(tl[0] ^ tl[1] ^ bit ^ 1)
        tr_cw = np.uint8(tr[0] ^ tr[1] ^ bit)
        cw_seeds[level] = seed_cw
        cw_tl[level] = tl_cw
        cw_tr[level] = tr_cw

        t_cw_keep = tr_cw if bit else tl_cw
        new_seeds = keep_seed.copy()
        new_t = keep_t.copy()
        for b in (0, 1):
            if t_bits[b]:
                new_seeds[b] ^= seed_cw
                new_t[b] ^= t_cw_keep
        seeds = new_seeds
        t_bits = new_t

    out_bytes = 0
    cw_final = None
    if value is not None:
        out_bytes = len(value)
        conv = convert_seeds(seeds, out_bytes)
        target = np.frombuffer(value, dtype=np.uint8)
        cw_final = conv[0] ^ conv[1] ^ target

    keys = []
    for b in (0, 1):
        keys.append(
            DpfKey(
                party=b,
                domain_bits=domain_bits,
                root_seed=root_seeds[b],
                cw_seeds=cw_seeds.copy(),
                cw_t_left=cw_tl.copy(),
                cw_t_right=cw_tr.copy(),
                out_bytes=out_bytes,
                cw_final=None if cw_final is None else cw_final.copy(),
            )
        )
    return keys[0], keys[1]


def _walk(key: DpfKey, x: int) -> Tuple[np.ndarray, int]:
    """Walk the evaluation tree to leaf ``x``; return (seed, control bit)."""
    if not 0 <= x < key.domain_size:
        raise CryptoError(f"point {x} out of domain [0, {key.domain_size})")
    seed = key.root_seed.reshape(1, 4)
    t = int(key.party)
    for level in range(key.domain_bits):
        bit = (x >> (key.domain_bits - 1 - level)) & 1
        left, right, tl, tr = expand_seeds(seed)
        child_seed = right[0] if bit else left[0]
        child_t = int(tr[0]) if bit else int(tl[0])
        if t:
            child_seed = child_seed ^ key.cw_seeds[level]
            child_t ^= int(key.cw_t_right[level]) if bit else int(key.cw_t_left[level])
        seed = child_seed.reshape(1, 4)
        t = child_t
    return seed, t


def eval_dpf(key: DpfKey, x: int):
    """Evaluate one party's share at a single point.

    Returns:
        In bit-output mode, a Python int (0/1): the party's GF(2) share of
        the indicator ``x == alpha``. In block-output mode, a byte string:
        the party's XOR share of the value at ``x``.
    """
    seed, t = _walk(key, x)
    if key.out_bytes == 0:
        return t
    share = convert_seeds(seed, key.out_bytes)[0]
    if t:
        share = share ^ key.cw_final
    return share.tobytes()


def eval_dpf_full(key: DpfKey) -> np.ndarray:
    """Evaluate one party's share at every point of the domain.

    This is the server-side operation of §5.1: a full tree expansion whose
    cost is linear in the domain size (the "DPF evaluation" part of the
    167 ms per-request budget).

    Returns:
        In bit-output mode, a ``(2**d,)`` uint8 array of share bits. In
        block-output mode, a ``(2**d, out_bytes)`` uint8 array of XOR value
        shares.
    """
    seeds = key.root_seed.reshape(1, 4).copy()
    t_bits = np.array([key.party], dtype=np.uint8)
    for level in range(key.domain_bits):
        left, right, tl, tr = expand_seeds(seeds)
        mask = t_bits.astype(bool)
        if mask.any():
            left[mask] ^= key.cw_seeds[level]
            right[mask] ^= key.cw_seeds[level]
            tl[mask] ^= key.cw_t_left[level]
            tr[mask] ^= key.cw_t_right[level]
        n = seeds.shape[0]
        seeds = np.empty((2 * n, 4), dtype=np.uint32)
        seeds[0::2] = left
        seeds[1::2] = right
        t_bits = np.empty(2 * n, dtype=np.uint8)
        t_bits[0::2] = tl
        t_bits[1::2] = tr
    if key.out_bytes == 0:
        return t_bits
    shares = convert_seeds(seeds, key.out_bytes)
    mask = t_bits.astype(bool)
    shares[mask] ^= key.cw_final
    return shares


__all__ = [
    "DpfKey",
    "gen_dpf",
    "eval_dpf",
    "eval_dpf_full",
    "dpf_key_bits",
    "LAMBDA_BITS",
    "MAX_DOMAIN_BITS",
]
