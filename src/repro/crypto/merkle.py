"""Merkle trees for optional content integrity (extension to §2.1).

The paper scopes integrity out: "ZLTP does not ... provide integrity
against malicious servers." This module supplies the natural extension the
architecture invites: a publisher builds a Merkle tree over its site's
data payloads, ships the **root inside the code blob** (which the client
fetches anyway, and which changes exactly when the site re-publishes), and
inlines each payload's authentication path next to the payload. A
tampering CDN is then caught by the client at render time without any
extra round trips or any change to the ZLTP privacy argument — the proof
travels inside the same fixed-size blob.

Hashing is BLAKE2b-256 with distinct leaf/node prefixes (second-preimage
hardening).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, List, Sequence, Tuple

from repro.errors import IntegrityError, ReproError

DIGEST_BYTES = 32

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    """Hash a leaf payload."""
    return hashlib.blake2b(_LEAF_PREFIX + data, digest_size=DIGEST_BYTES).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """Hash an interior node from its children."""
    return hashlib.blake2b(
        _NODE_PREFIX + left + right, digest_size=DIGEST_BYTES
    ).digest()


class MerkleTree:
    """A Merkle tree over an ordered list of byte-string leaves."""

    def __init__(self, leaves: Sequence[bytes]):
        """Build the tree.

        Args:
            leaves: the payloads, in a fixed order both sides agree on
                (lightweb uses sorted path order).

        Raises:
            ReproError: for an empty leaf list.
        """
        if not leaves:
            raise ReproError("Merkle tree needs at least one leaf")
        self.n_leaves = len(leaves)
        level = [leaf_hash(leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = [level]
        while len(level) > 1:
            if len(level) % 2:
                level = level + [level[-1]]  # duplicate-last padding
            level = [
                node_hash(level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        """The 32-byte tree root."""
        return self._levels[-1][0]

    def proof(self, index: int) -> List[Tuple[str, bytes]]:
        """The authentication path for leaf ``index``.

        Returns:
            A list of ``(side, sibling_digest)`` pairs from leaf level to
            the root, where ``side`` is ``"l"`` if the sibling is on the
            left.
        """
        if not 0 <= index < self.n_leaves:
            raise ReproError(f"leaf {index} out of range [0, {self.n_leaves})")
        path = []
        position = index
        for level in self._levels[:-1]:
            padded = level + ([level[-1]] if len(level) % 2 else [])
            sibling = position ^ 1
            side = "l" if sibling < position else "r"
            path.append((side, padded[sibling]))
            position //= 2
        return path

    def proof_bytes(self, index: int) -> int:
        """Wire size of one proof."""
        return len(self.proof(index)) * (1 + DIGEST_BYTES)


def verify_proof(root: bytes, data: bytes,
                 proof: List[Tuple[str, bytes]]) -> None:
    """Check a payload against a root via its authentication path.

    Raises:
        IntegrityError: if the recomputed root does not match.
    """
    digest = leaf_hash(data)
    for side, sibling in proof:
        if side == "l":
            digest = node_hash(sibling, digest)
        elif side == "r":
            digest = node_hash(digest, sibling)
        else:
            raise IntegrityError(f"malformed proof side {side!r}")
    # Constant-time: the recomputed digest is derived from fetched secret
    # content, and an early-exit compare would let a tampering CDN probe
    # it byte by byte through verification timing.
    if not hmac.compare_digest(digest, root):
        raise IntegrityError("Merkle proof does not match the published root")


def encode_proof(proof: List[Tuple[str, bytes]]) -> str:
    """Hex-encode a proof for embedding in JSON blob payloads."""
    return "".join(
        ("L" if side == "l" else "R") + sibling.hex() for side, sibling in proof
    )


def decode_proof(encoded: str) -> List[Tuple[str, bytes]]:
    """Inverse of :func:`encode_proof`.

    Raises:
        IntegrityError: on malformed encodings.
    """
    step = 1 + 2 * DIGEST_BYTES
    if len(encoded) % step:
        raise IntegrityError("malformed encoded proof length")
    proof = []
    for offset in range(0, len(encoded), step):
        side_char = encoded[offset]
        if side_char not in ("L", "R"):
            raise IntegrityError(f"malformed proof side {side_char!r}")
        try:
            sibling = bytes.fromhex(encoded[offset + 1 : offset + step])
        except ValueError as exc:
            raise IntegrityError("malformed proof hex") from exc
        proof.append(("l" if side_char == "L" else "r", sibling))
    return proof


__all__ = [
    "MerkleTree",
    "verify_proof",
    "leaf_hash",
    "node_hash",
    "encode_proof",
    "decode_proof",
    "DIGEST_BYTES",
]
