"""Publisher key management: rotation and broadcast-style revocation (§3.3).

Two mechanisms from the paper:

- **Key rotation** — "The publisher can periodically rotate keys in order to
  revoke users' access as necessary, and clients can query the publisher
  periodically for updated keys." :class:`PublisherKeychain` tracks key
  epochs and derives per-path content keys from each epoch key.

- **Broadcast encryption** — "The publisher could also use broadcast
  encryption to allow clients to update their keys based on membership
  changes [25, 41]." :class:`BroadcastKeyTree` implements the complete-
  subtree method of Naor-Naor-Lotspiech: users sit at the leaves of a binary
  tree of independent node keys and hold the O(log n) keys on their own
  path; to distribute a new epoch key while excluding a revoked set, the
  publisher encrypts it under the minimal subtree cover containing no
  revoked leaf. Revoked users hold no key in the cover and cannot recover
  the epoch key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.crypto import aead
from repro.errors import AccessError, CryptoError


def _derive(key: bytes, label: bytes) -> bytes:
    """Derive a 32-byte subkey bound to ``label``."""
    return hashlib.blake2b(label, digest_size=32, key=key).digest()


@dataclass(frozen=True)
class KeyEpoch:
    """One epoch of a publisher's content key.

    Attributes:
        epoch: monotonically increasing epoch counter.
        key: the 32-byte epoch master key.
    """

    epoch: int
    key: bytes

    def path_key(self, path: str) -> bytes:
        """Derive the content key used to seal blobs at ``path``."""
        return _derive(self.key, b"path:" + path.encode("utf-8"))


class PublisherKeychain:
    """A publisher's rotating chain of content-key epochs.

    The publisher seals blobs under the *current* epoch; clients that have
    refreshed recently decrypt with it, clients holding only older epochs
    fail with :class:`~repro.errors.IntegrityError` — which is exactly the
    paper's revocation semantics.
    """

    def __init__(self, master_secret: bytes):
        if len(master_secret) < 16:
            raise CryptoError("master secret must be at least 16 bytes")
        self._master = hashlib.blake2b(master_secret, digest_size=32).digest()
        self._epoch = 0

    @property
    def current_epoch(self) -> int:
        """The active epoch number."""
        return self._epoch

    def epoch_key(self, epoch: int | None = None) -> KeyEpoch:
        """Return the :class:`KeyEpoch` for ``epoch`` (default: current)."""
        if epoch is None:
            epoch = self._epoch
        if epoch < 0 or epoch > self._epoch:
            raise AccessError(f"epoch {epoch} does not exist (current {self._epoch})")
        key = _derive(self._master, b"epoch:" + epoch.to_bytes(8, "little"))
        return KeyEpoch(epoch=epoch, key=key)

    def rotate(self) -> KeyEpoch:
        """Advance to a new epoch, revoking everyone on the old key."""
        self._epoch += 1
        return self.epoch_key()


class BroadcastKeyTree:
    """Complete-subtree broadcast encryption over ``n_users`` leaves.

    Node keys are independent (PRF of the publisher master under the node
    id), so knowing one subtree key reveals nothing about siblings — the
    property that makes revocation sound.
    """

    def __init__(self, master_secret: bytes, n_users: int):
        if n_users < 1:
            raise CryptoError("need at least one user")
        self._master = hashlib.blake2b(master_secret, digest_size=32).digest()
        self.n_users = n_users
        # Round up to a full binary tree.
        self.depth = max(1, (n_users - 1).bit_length())
        self.n_leaves = 1 << self.depth

    def _node_key(self, node: int) -> bytes:
        """Key of tree node ``node`` (heap numbering, root = 1)."""
        return _derive(self._master, b"node:" + node.to_bytes(8, "little"))

    def _leaf_node(self, user: int) -> int:
        if not 0 <= user < self.n_users:
            raise AccessError(f"user {user} out of range [0, {self.n_users})")
        return self.n_leaves + user

    def user_keys(self, user: int) -> Dict[int, bytes]:
        """The path keys user ``user`` holds: every ancestor incl. its leaf."""
        node = self._leaf_node(user)
        keys = {}
        while node >= 1:
            keys[node] = self._node_key(node)
            node //= 2
        return keys

    def cover(self, revoked: Iterable[int]) -> List[int]:
        """Minimal subtree cover containing every non-revoked leaf.

        Returns node ids whose subtrees jointly contain all authorised users
        and no revoked user. With nobody revoked this is just the root.
        """
        revoked_leaves: Set[int] = {self._leaf_node(u) for u in revoked}
        # Valid leaves are the first n_users; padding leaves are treated as
        # revoked so the cover never grants keys for nonexistent users
        # (harmless, but keeps the cover tight and the invariant simple).
        for pad in range(self.n_users, self.n_leaves):
            revoked_leaves.add(self.n_leaves + pad)

        def visit(node: int, lo: int, hi: int) -> List[int]:
            # [lo, hi) is the leaf range (in leaf-node ids) under `node`.
            tainted = any(lo <= leaf < hi for leaf in revoked_leaves)
            if not tainted:
                return [node]
            if hi - lo == 1:
                return []  # a revoked leaf: excluded entirely
            mid = (lo + hi) // 2
            return visit(2 * node, lo, mid) + visit(2 * node + 1, mid, hi)

        return visit(1, self.n_leaves, 2 * self.n_leaves)

    def broadcast(self, payload: bytes, revoked: Iterable[int]) -> List[Tuple[int, bytes]]:
        """Encrypt ``payload`` so exactly the non-revoked users can read it.

        Returns:
            A list of ``(node_id, ciphertext)`` pairs — the broadcast body a
            publisher would publish (out of band or as lightweb blobs).
        """
        return [
            (node, aead.seal(self._node_key(node), payload, aad=b"bcast"))
            for node in self.cover(revoked)
        ]

    @staticmethod
    def receive(user_keys: Dict[int, bytes], broadcast: List[Tuple[int, bytes]]) -> bytes:
        """Decrypt a broadcast with a user's path keys.

        Raises:
            AccessError: if the user holds no key in the cover (revoked).
        """
        for node, ciphertext in broadcast:
            key = user_keys.get(node)
            if key is not None:
                return aead.open_sealed(key, ciphertext, aad=b"bcast")
        raise AccessError("no usable key in broadcast cover: access revoked")


__all__ = ["KeyEpoch", "PublisherKeychain", "BroadcastKeyTree"]
