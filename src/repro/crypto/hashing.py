"""Keyed hashing of lightweb paths into the DPF output domain.

ZLTP is a *keyword* PIR system: clients ask for string keys such as
``nytimes.com/world/africa/2023/06/headlines.json``, but the DPF machinery
retrieves *indices* in a domain of size 2^d. The bridge is a public keyed
hash that both publisher (at upload time) and client (at query time) apply to
the key string.

§5.1 analyses the resulting collisions: "By setting the output domain to size
2^22, we guarantee that if there are roughly 2^20 key-value pairs ... the
probability of collision is at most 1/4 when the ZLTP server is almost at
capacity (if this happens, then the publisher can simply select another key
name)." That is a statement about the chance that a *newly inserted* key
lands on an occupied slot — :func:`collision_probability` computes it, and
benchmark E8 verifies both the bound and its Monte-Carlo estimate.
"""

from __future__ import annotations

import hashlib
import math

from repro.errors import CryptoError


class KeyedHash:
    """A keyed hash from strings into ``[0, 2**domain_bits)``.

    The salt plays the role of the per-universe hash key: publishers and
    clients within one universe share it, so both sides map a path to the
    same slot, while different universes (or a re-hash after a failed cuckoo
    build) get independent mappings.
    """

    def __init__(self, domain_bits: int, salt: bytes = b""):
        """Create a hash into a ``2**domain_bits``-slot domain."""
        if not 1 <= domain_bits <= 63:
            raise CryptoError(f"domain_bits must be in [1, 63], got {domain_bits}")
        self.domain_bits = domain_bits
        self.salt = salt

    @property
    def domain_size(self) -> int:
        """Number of slots, 2**domain_bits."""
        return 1 << self.domain_bits

    def slot(self, key: str, probe: int = 0) -> int:
        """Map ``key`` to a slot index.

        Args:
            key: the lookup string (a lightweb path).
            probe: probe number, for multi-hash schemes such as cuckoo
                hashing; probe 0 is the primary location.

        Returns:
            An integer in ``[0, 2**domain_bits)``.
        """
        h = hashlib.blake2b(
            key.encode("utf-8"),
            digest_size=8,
            key=self.salt[:64],
            person=b"zltp-slot",
            salt=probe.to_bytes(8, "little"),
        )
        return int.from_bytes(h.digest(), "little") % self.domain_size

    def rekeyed(self, extra_salt: bytes) -> "KeyedHash":
        """Return an independent hash over the same domain (for rebuilds)."""
        return KeyedHash(self.domain_bits, self.salt + extra_salt)


def collision_probability(n_existing: int, domain_bits: int, exact: bool = False) -> float:
    """Probability that a newly inserted key collides with an existing one.

    This is the §5.1 quantity: with ``n_existing = 2**20`` keys already in a
    ``2**22``-slot domain, the bound is 1/4.

    Args:
        n_existing: keys already stored.
        domain_bits: log2 of the domain size.
        exact: if True, return ``1 - (1 - 1/D)**n`` (occupied-slot-count
            aware); otherwise the simple union bound ``min(1, n/D)`` the
            paper quotes.

    Returns:
        A probability in [0, 1].
    """
    if n_existing < 0:
        raise CryptoError("n_existing must be non-negative")
    domain = 1 << domain_bits
    if exact:
        return 1.0 - math.exp(n_existing * math.log1p(-1.0 / domain))
    return min(1.0, n_existing / domain)


def any_collision_probability(n_keys: int, domain_bits: int) -> float:
    """Birthday bound: probability that *any* two of ``n_keys`` collide.

    Useful context for E8 — with 2^20 keys in a 2^22 domain *some* pair
    collides almost surely, which is exactly why the paper frames the
    guarantee per-insertion and lets the publisher "simply select another
    key name" (or why cuckoo hashing helps).
    """
    if n_keys < 2:
        return 0.0
    domain = 1 << domain_bits
    exponent = -n_keys * (n_keys - 1) / (2.0 * domain)
    return 1.0 - math.exp(exponent)


def domain_bits_for(n_keys: int, max_collision_prob: float) -> int:
    """Smallest ``domain_bits`` keeping per-insert collisions below a target.

    Inverts the paper's sizing rule: 2^20 keys with target 1/4 gives d=22.
    """
    if not 0 < max_collision_prob <= 1:
        raise CryptoError("max_collision_prob must be in (0, 1]")
    if n_keys <= 0:
        raise CryptoError("n_keys must be positive")
    bits = 1
    while collision_probability(n_keys, bits) > max_collision_prob:
        bits += 1
        if bits > 63:
            raise CryptoError("no domain up to 2^63 satisfies the target")
    return bits


__all__ = [
    "KeyedHash",
    "collision_probability",
    "any_collision_probability",
    "domain_bits_for",
]
