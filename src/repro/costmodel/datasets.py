"""Dataset descriptors for the scaling estimates (Table 2).

"We use the C4 dataset, a cleaned version of the common crawl, to
approximate the contents of lightweb. ... The C4 dataset is roughly 305 GiB
compressed, contains 360M pages, and the average compressed page size is
roughly 0.9 KiB." Table 2 adds Wikipedia: 21 GiB, 60M pages, 0.4 KiB.

We cannot download either dataset here (no network); only these aggregate
statistics enter the paper's evaluation, and
:mod:`repro.workloads.corpus` generates synthetic corpora matching them for
the functional experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError

GIB = 1024**3
KIB = 1024


@dataclass(frozen=True)
class DatasetSpec:
    """Aggregate statistics of a lightweb-scale corpus.

    Attributes:
        name: dataset label.
        total_bytes: compressed corpus size.
        n_pages: page count.
        avg_page_bytes: average compressed page size.
    """

    name: str
    total_bytes: int
    n_pages: int
    avg_page_bytes: float

    def __post_init__(self):
        if self.total_bytes <= 0 or self.n_pages <= 0 or self.avg_page_bytes <= 0:
            raise ReproError(f"invalid dataset spec {self.name!r}")

    @property
    def total_gib(self) -> float:
        """Corpus size in GiB."""
        return self.total_bytes / GIB

    def n_shards(self, shard_bytes: int = GIB) -> int:
        """Shards needed at a given per-server shard size (§5.2: 1 GiB)."""
        return max(1, math.ceil(self.total_bytes / shard_bytes))

    def pages_per_shard(self, shard_bytes: int = GIB) -> int:
        """Average pages held by one shard."""
        return max(1, round(self.n_pages / self.n_shards(shard_bytes)))

    def suggested_domain_bits(self, shard_bytes: int = GIB,
                              max_collision_prob: float = 0.25) -> int:
        """Per-shard DPF domain sized by the §5.1 collision rule.

        The paper rounds the per-shard page count to the nearest power of
        two ("roughly 2^20 key-value pairs ... with 1 GiB of storage and an
        average value size of 0.9 KiB") before applying the n/D <= 1/4
        rule, yielding 2^22 for C4; we follow the same rounding.
        """
        from repro.crypto.hashing import domain_bits_for

        pages = self.pages_per_shard(shard_bytes)
        rounded = 1 << round(math.log2(pages))
        return domain_bits_for(rounded, max_collision_prob)


#: §5 "Dataset": the C4 cleaned common crawl.
C4 = DatasetSpec(
    name="C4",
    total_bytes=305 * GIB,
    n_pages=360_000_000,
    avg_page_bytes=0.9 * KIB,
)

#: Table 2's second row.
WIKIPEDIA = DatasetSpec(
    name="Wikipedia",
    total_bytes=21 * GIB,
    n_pages=60_000_000,
    avg_page_bytes=0.4 * KIB,
)


__all__ = ["DatasetSpec", "C4", "WIKIPEDIA", "GIB", "KIB"]
