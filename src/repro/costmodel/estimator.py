"""Scaling a shard microbenchmark to a full ZLTP deployment (§5.1-§5.2).

The paper's method, which this module reproduces exactly:

1. Measure one 1 GiB shard: 167 ms of computation per request, split into
   64 ms of DPF evaluation and 103 ms of data scan (§5.1).
2. Scale out: one shard per GiB of dataset, every shard touched by every
   request ("we shard each request across 305 c5.large instances"), each
   busy for the measured per-shard time on its 2 vCPUs. C4: 305 shards ×
   0.167 s × 2 vCPUs = 102 vCPU-s ≈ 1.7 vCPU-minutes per logical server;
   ×2 for the two-server setting = **204 vCPU-s** (the Table 2 cell).
3. Price with c5.large: 2 × 305 × 0.167 machine-seconds × $0.085/3600 ≈
   **$0.002 per request**.
4. Communication: upload is two DPF keys of (λ+2)·d_total *bytes* each,
   download two blob-sized buckets. (The paper states the key-size formula
   "(λ+2)d" with λ = 128; its arithmetic — 13.6 KiB at d=22, 7.9 KiB upload
   at full C4 scale — only works if the formula is read in bytes, i.e.
   130·d bytes per key. We follow the paper's arithmetic and flag the unit
   quirk in EXPERIMENTS.md; our implementation's actual key is ~17·d+22
   bytes, reported alongside.)

:func:`measure_shard` runs the same microbenchmark on *our* Python
substrate at reduced scale so benchmark E1/E4 can put measured and paper
constants side by side.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import backend as backend_registry
from repro.costmodel.aws import C5_LARGE, InstanceType
from repro.costmodel.datasets import GIB, KIB, DatasetSpec
from repro.crypto.dpf import LAMBDA_BITS, gen_dpf
from repro.errors import ReproError
from repro.pir.database import BlobDatabase
from repro.pir.twoserver import TwoServerPirServer

#: Blob ("bucket") size the paper's prototype returns per request.
PAPER_BUCKET_BYTES = 4 * KIB

#: Two-server overhead: every request is processed at both servers (§5.1).
#: Kept as a named constant for the Table 2 arithmetic; per-backend values
#: come from the registry via :func:`servers_per_request`.
N_SERVERS = 2


def servers_per_request(backend: str = "pir2") -> int:
    """Logical servers that process every request, by registered backend.

    The Table 2 ``x2`` is ``pir2``'s non-colluding pair; single-server
    backends (``pir-lwe``, ``enclave-oram``) cost one scan per request.
    Looked up from the backend registry's :class:`~repro.core.backend.
    BackendCost`, so a newly registered backend is priceable by name.
    """
    return backend_registry.get_backend(backend).cost.servers_per_request


@dataclass(frozen=True)
class ShardMicrobenchmark:
    """Per-shard measurements: the §5.1 quantities.

    Attributes:
        shard_bytes: bytes of data per shard (paper: 1 GiB).
        domain_bits: per-shard DPF output domain (paper: 22).
        request_seconds: per-request wall time on the shard (paper: 0.167).
        dpf_seconds: the DPF-evaluation share of it (paper: 0.064).
        scan_seconds: the data-scan share (paper: 0.103).
        blob_bytes: bucket size returned per request (paper: 4096).
    """

    shard_bytes: int
    domain_bits: int
    request_seconds: float
    dpf_seconds: float
    scan_seconds: float
    blob_bytes: int = PAPER_BUCKET_BYTES

    @property
    def scan_fraction(self) -> float:
        """Fraction of the request spent scanning (paper: ≈0.62)."""
        return self.scan_seconds / self.request_seconds if self.request_seconds else 0.0


#: §5.1's published microbenchmark.
PAPER_SHARD = ShardMicrobenchmark(
    shard_bytes=GIB,
    domain_bits=22,
    request_seconds=0.167,
    dpf_seconds=0.064,
    scan_seconds=0.103,
    blob_bytes=PAPER_BUCKET_BYTES,
)


def paper_key_bytes(domain_bits: int, lam: int = LAMBDA_BITS) -> int:
    """DPF key size under the paper's (λ+2)·d formula, in bytes.

    See the module docstring for the unit discussion: the paper's own
    communication totals require reading (λ+2)·d as bytes.
    """
    return (lam + 2) * domain_bits


def implementation_key_bytes(domain_bits: int) -> int:
    """Actual serialised key size of *our* DPF implementation."""
    key0, _ = gen_dpf(0, min(domain_bits, 30))
    per_level = 16 + 1
    measured_levels = min(domain_bits, 30)
    overhead = len(key0.to_bytes()) - measured_levels * per_level
    return overhead + domain_bits * per_level


@dataclass(frozen=True)
class DeploymentEstimate:
    """The Table 2 row for one dataset.

    Attributes:
        dataset: which dataset.
        n_shards: data servers per logical server (paper C4: 305).
        vcpu_seconds: system-wide vCPU-seconds per request (C4: 204).
        request_cost_usd: system-wide dollars per request (C4: $0.002).
        upload_bytes: client-to-server bytes per request (C4: ≈7.9 KiB).
        download_bytes: server-to-client bytes per request (C4: 8 KiB).
        latency_floor_seconds: lower bound on page-load latency (§5.2:
            the 2.6 s batched shard latency).
    """

    dataset: DatasetSpec
    n_shards: int
    total_domain_bits: float
    vcpu_seconds: float
    machine_seconds: float
    request_cost_usd: float
    upload_bytes: float
    download_bytes: float
    latency_floor_seconds: float

    @property
    def communication_bytes(self) -> float:
        """Total per-request communication (the Table 2 column)."""
        return self.upload_bytes + self.download_bytes

    @property
    def communication_kib(self) -> float:
        """Communication in KiB, as Table 2 prints it."""
        return self.communication_bytes / KIB

    def row(self) -> dict:
        """The Table 2 row as a dict (used by benchmark E4)."""
        return {
            "dataset": self.dataset.name,
            "total_size_gib": round(self.dataset.total_gib, 1),
            "n_pages": self.dataset.n_pages,
            "avg_page_kib": round(self.dataset.avg_page_bytes / KIB, 2),
            "vcpu_sec": round(self.vcpu_seconds, 1),
            "request_cost_usd": self.request_cost_usd,
            "communication_kib": round(self.communication_kib, 1),
        }


def estimate_deployment(
    dataset: DatasetSpec,
    shard: ShardMicrobenchmark = PAPER_SHARD,
    instance: InstanceType = C5_LARGE,
    batch_latency_seconds: float = 2.6,
    backend: str = "pir2",
) -> DeploymentEstimate:
    """Scale a shard microbenchmark up to a dataset-wide deployment (§5.2).

    Args:
        dataset: the target corpus statistics.
        shard: per-shard measurements (paper constants by default).
        instance: the machine each shard runs on.
        batch_latency_seconds: the per-shard batched latency that lower-
            bounds page-load time (§5.1's 2.6 s at batch 16).
        backend: registered backend name; its cost parameters set how
            many logical servers every request pays for (Table 2 prices
            the paper's ``pir2`` prototype).

    Returns:
        The full Table 2 row plus intermediate quantities.
    """
    n_servers = servers_per_request(backend)
    # Clamp defensively: a corpus smaller than one shard still occupies
    # one shard. DatasetSpec.n_shards already rounds up to >= 1, but this
    # function accepts any duck-typed spec, and n_shards == 0 would turn
    # the domain-bits term below into math.log2(0) -> ValueError.
    n_shards = max(1, dataset.n_shards(shard.shard_bytes))
    # Every shard works for the full per-shard request time, on every
    # logical server; all the instance's vCPUs participate in the scan.
    machine_seconds = n_servers * n_shards * shard.request_seconds
    vcpu_seconds = machine_seconds * instance.vcpus
    request_cost = instance.machine_seconds_to_usd(machine_seconds)
    # Communication (§5.2): the client's DPF key must cover the whole
    # logical domain: per-shard domain plus the shard-routing prefix.
    total_domain_bits = shard.domain_bits + math.log2(n_shards)
    upload = n_servers * paper_key_bytes(int(round(total_domain_bits)))
    download = n_servers * shard.blob_bytes
    return DeploymentEstimate(
        dataset=dataset,
        n_shards=n_shards,
        total_domain_bits=total_domain_bits,
        vcpu_seconds=vcpu_seconds,
        machine_seconds=machine_seconds,
        request_cost_usd=request_cost,
        upload_bytes=upload,
        download_bytes=download,
        latency_floor_seconds=batch_latency_seconds,
    )


def measure_shard(domain_bits: int = 12, blob_bytes: int = 4096,
                  n_requests: int = 3,
                  rng: Optional[np.random.Generator] = None) -> ShardMicrobenchmark:
    """Run the §5.1 microbenchmark on our Python substrate.

    Builds a shard of ``2**domain_bits`` blobs, serves ``n_requests``
    two-server PIR requests, and reports mean timings in the same shape as
    the paper's numbers (so the estimation pipeline can consume either).

    Args:
        domain_bits: shard domain (reduced scale; the paper uses 22).
        blob_bytes: blob size.
        n_requests: requests to average over.
        rng: randomness for query indices.
    """
    if n_requests < 1:
        raise ReproError("need at least one request")
    rng = rng if rng is not None else np.random.default_rng(0)
    database = BlobDatabase(domain_bits, blob_bytes)
    fill = min(database.n_slots, 512)
    for i in range(fill):
        database.set_slot(
            int(i * database.n_slots / fill), f"blob-{i}".encode() * 4
        )
    server = TwoServerPirServer(database, party=0)
    dpf_total = 0.0
    scan_total = 0.0
    for _ in range(n_requests):
        index = int(rng.integers(0, database.n_slots))
        key0, _key1 = gen_dpf(index, domain_bits)
        _, timing = server.answer_timed(key0.to_bytes())
        dpf_total += timing.dpf_seconds
        scan_total += timing.scan_seconds
    dpf_mean = dpf_total / n_requests
    scan_mean = scan_total / n_requests
    return ShardMicrobenchmark(
        shard_bytes=database.memory_bytes(),
        domain_bits=domain_bits,
        request_seconds=dpf_mean + scan_mean,
        dpf_seconds=dpf_mean,
        scan_seconds=scan_mean,
        blob_bytes=blob_bytes,
    )


__all__ = [
    "ShardMicrobenchmark",
    "DeploymentEstimate",
    "estimate_deployment",
    "measure_shard",
    "paper_key_bytes",
    "implementation_key_bytes",
    "PAPER_SHARD",
    "PAPER_BUCKET_BYTES",
    "N_SERVERS",
    "servers_per_request",
]
