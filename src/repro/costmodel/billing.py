"""User-facing economics: §4's monthly cost and §5.2's Fi comparison.

"For users who make on average 50 daily page requests where each page
request results in 5 GET requests for data blobs, we estimate that the
monthly per-user cost for a universe of 360M data blobs with blob size at
most 0.9 KiB each to be roughly $15 (comparable to the cost of a Netflix
membership)."

"Google Fi charges $10/GiB, and so the cost to load the 22.4 MiB New York
Times homepage is $0.218 ... Loading data via ZLTP is roughly two orders of
magnitude more expensive than the traditional web: loading 4 KiB (our ZLTP
value size) costs $0.002 with ZLTP and $0.000038 with Google Fi."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.datasets import GIB, KIB
from repro.errors import ReproError

#: §5.2: "Google Fi charges $10/GiB".
GOOGLE_FI_USD_PER_GIB = 10.0

#: §5.2's reference page: "the 22.4 MiB New York Times homepage".
NYT_HOMEPAGE_BYTES = int(22.4 * 1024 * 1024)

DAYS_PER_MONTH = 30


@dataclass(frozen=True)
class UserProfile:
    """A user's browsing intensity (§4's example values by default).

    Attributes:
        pages_per_day: page views per day (paper: 50).
        gets_per_page: data GETs per page view — the universe's fixed fetch
            budget (paper: 5).
    """

    pages_per_day: float = 50.0
    gets_per_page: int = 5

    def __post_init__(self):
        if self.pages_per_day <= 0 or self.gets_per_page < 1:
            raise ReproError("profile values must be positive")

    @property
    def gets_per_day(self) -> float:
        """Data GETs per day (paper: 250)."""
        return self.pages_per_day * self.gets_per_page

    def gets_per_month(self, days: int = DAYS_PER_MONTH) -> float:
        """Data GETs per month."""
        return self.gets_per_day * days


def monthly_user_cost(request_cost_usd: float,
                      profile: UserProfile = UserProfile(),
                      days: int = DAYS_PER_MONTH) -> float:
    """§4's per-user monthly bill: GETs/month × system cost per GET.

    With the paper's $0.002/request and the default profile this is
    250 × 30 × $0.002 = $15 — "comparable to the cost of a Netflix
    membership".
    """
    if request_cost_usd < 0:
        raise ReproError("request cost cannot be negative")
    return profile.gets_per_month(days) * request_cost_usd


def fi_bytes_cost(n_bytes: float, usd_per_gib: float = GOOGLE_FI_USD_PER_GIB) -> float:
    """Cost of moving ``n_bytes`` over Google Fi."""
    if n_bytes < 0:
        raise ReproError("byte count cannot be negative")
    return (n_bytes / GIB) * usd_per_gib


def fi_page_cost(page_bytes: int = NYT_HOMEPAGE_BYTES) -> float:
    """§5.2's willingness-to-pay anchor: a media-rich page over Fi.

    The default reproduces the paper's $0.218 for the NYT homepage.
    """
    return fi_bytes_cost(page_bytes)


def zltp_vs_fi_ratio(zltp_request_cost_usd: float,
                     value_bytes: int = 4 * KIB) -> float:
    """How many times more a ZLTP fetch costs than the same bytes over Fi.

    Paper: $0.002 / $0.000038 ≈ 52 — "roughly two orders of magnitude".
    """
    fi = fi_bytes_cost(value_bytes)
    if fi <= 0:
        raise ReproError("Fi cost must be positive")
    return zltp_request_cost_usd / fi


__all__ = [
    "UserProfile",
    "monthly_user_cost",
    "fi_bytes_cost",
    "fi_page_cost",
    "zltp_vs_fi_ratio",
    "GOOGLE_FI_USD_PER_GIB",
    "NYT_HOMEPAGE_BYTES",
    "DAYS_PER_MONTH",
]
