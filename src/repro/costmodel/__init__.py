"""The paper's cost analytics: Table 2, §4 ("Who pays?") and §5.2.

This package reproduces the paper's estimation *pipeline*: measure a small
shard, scale to a full dataset deployment (many 1 GiB shards on c5.large
instances, times two non-colluding servers), convert to dollars with AWS
pricing, and derive per-user monthly costs and the Google-Fi comparison.

Defaults are the paper's published constants, so the benchmarks can print
the paper's own numbers; every estimator also accepts *measured* constants
from our Python substrate so EXPERIMENTS.md can compare shapes.
"""

from repro.costmodel.aws import InstanceType, C5_LARGE
from repro.costmodel.datasets import DatasetSpec, C4, WIKIPEDIA
from repro.costmodel.estimator import (
    ShardMicrobenchmark,
    DeploymentEstimate,
    estimate_deployment,
    measure_shard,
    PAPER_SHARD,
)
from repro.costmodel.billing import (
    UserProfile,
    monthly_user_cost,
    fi_page_cost,
    fi_bytes_cost,
    zltp_vs_fi_ratio,
    GOOGLE_FI_USD_PER_GIB,
)
from repro.costmodel.projection import projected_cost, CPU_COST_IMPROVEMENT_PER_5Y
from repro.costmodel.capacity import FleetPlan, plan_fleet, peak_request_rate

__all__ = [
    "InstanceType",
    "C5_LARGE",
    "DatasetSpec",
    "C4",
    "WIKIPEDIA",
    "ShardMicrobenchmark",
    "DeploymentEstimate",
    "estimate_deployment",
    "measure_shard",
    "PAPER_SHARD",
    "UserProfile",
    "monthly_user_cost",
    "fi_page_cost",
    "fi_bytes_cost",
    "zltp_vs_fi_ratio",
    "GOOGLE_FI_USD_PER_GIB",
    "projected_cost",
    "CPU_COST_IMPROVEMENT_PER_5Y",
    "FleetPlan",
    "plan_fleet",
    "peak_request_rate",
]
