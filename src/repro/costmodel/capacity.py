"""Fleet capacity planning: from user population to machine count.

The paper prices a *single request* (Table 2) and a *single user* (§4);
an operator also needs the third number: how many machines serve a user
population at acceptable latency. This planner combines the paper's own
building blocks — the per-shard request time (§5.1), the batching
throughput curve (§5.1), the shard count (§5.2), and the two-server
overhead — into a :class:`FleetPlan`.

Model: a universe of ``n_shards`` is served by replicated *shard groups*;
one group = ``2 x n_shards`` data servers (both parties) answering batched
requests at the measured throughput. Groups scale horizontally: total
request rate / per-group throughput, plus headroom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.costmodel.aws import C5_LARGE, InstanceType
from repro.costmodel.billing import UserProfile
from repro.costmodel.datasets import DatasetSpec
from repro.costmodel.estimator import N_SERVERS, PAPER_SHARD, ShardMicrobenchmark
from repro.errors import ReproError
from repro.pir.batching import BatchCostModel


@dataclass(frozen=True)
class FleetPlan:
    """A sized deployment for a user population.

    Attributes:
        n_users: population served.
        request_rate_rps: aggregate data-GET rate (diurnal peak).
        group_throughput_rps: batched requests/s one shard group sustains.
        n_groups: replicated shard groups needed (with headroom).
        n_machines: total data servers across parties and replicas.
        monthly_machine_cost_usd: the fleet's raw EC2 bill.
        per_user_monthly_usd: that bill amortised per user.
        batch_latency_seconds: the latency the chosen batch size implies.
    """

    n_users: int
    request_rate_rps: float
    group_throughput_rps: float
    n_groups: int
    n_machines: int
    monthly_machine_cost_usd: float
    per_user_monthly_usd: float
    batch_latency_seconds: float


def peak_request_rate(n_users: int, profile: UserProfile,
                      active_hours: float = 16.0,
                      peak_factor: float = 2.0) -> float:
    """Aggregate data-GET rate at the diurnal peak.

    Users spread their GETs over ``active_hours`` a day; the peak hour
    carries ``peak_factor`` times the active-hour average.
    """
    if n_users < 1:
        raise ReproError("need at least one user")
    if active_hours <= 0 or peak_factor < 1:
        raise ReproError("active_hours must be positive, peak_factor >= 1")
    per_user_rps = profile.gets_per_day / (active_hours * 3600)
    return n_users * per_user_rps * peak_factor


def plan_fleet(dataset: DatasetSpec, n_users: int,
               profile: UserProfile = UserProfile(),
               shard: ShardMicrobenchmark = PAPER_SHARD,
               instance: InstanceType = C5_LARGE,
               batch_size: int = 16,
               headroom: float = 1.25,
               active_hours: float = 16.0,
               peak_factor: float = 2.0) -> FleetPlan:
    """Size a deployment for a population (the operator's missing table).

    With the paper's defaults a shard group is 2 x n_shards c5.large
    machines sustaining ~6 req/s (the §5.1 batched throughput); groups
    replicate until the population's peak GET rate fits with headroom.
    """
    if batch_size < 1 or headroom < 1:
        raise ReproError("batch_size and headroom must be >= 1")
    n_shards = dataset.n_shards(shard.shard_bytes)
    # Per-group throughput: the batching curve, scaled from the paper's
    # measured shard to the supplied one.
    model = BatchCostModel(
        amortized_seconds=shard.request_seconds,
        unbatched_seconds=shard.request_seconds
        * (0.51 / 0.167),  # keep the paper's unbatched/batched ratio
    )
    point = model.point(batch_size)
    rate = peak_request_rate(n_users, profile, active_hours, peak_factor)
    n_groups = max(1, math.ceil(rate * headroom / point.throughput_rps))
    n_machines = n_groups * N_SERVERS * n_shards
    hours_per_month = 24 * 30
    monthly_cost = n_machines * instance.hourly_usd * hours_per_month
    return FleetPlan(
        n_users=n_users,
        request_rate_rps=rate,
        group_throughput_rps=point.throughput_rps,
        n_groups=n_groups,
        n_machines=n_machines,
        monthly_machine_cost_usd=monthly_cost,
        per_user_monthly_usd=monthly_cost / n_users,
        batch_latency_seconds=point.latency_seconds,
    )


@dataclass(frozen=True)
class SaturationPoint:
    """One measured point on an offered-load sweep.

    Attributes:
        offered_rps: the load generator's configured arrival rate.
        goodput_rps: requests completed *within deadline* per second.
        p99_seconds: 99th-percentile latency of completed requests.
    """

    offered_rps: float
    goodput_rps: float
    p99_seconds: float


@dataclass(frozen=True)
class SaturationCurve:
    """A measured offered-load-vs-goodput-vs-p99 curve for one deployment.

    This is the planner's *measured* calibration source: where
    :func:`plan_fleet` scales the paper's shard constants analytically,
    a curve from ``repro.loadgen`` (the E16 sweep) answers "how many
    shards for N users at p99 < T?" from what the deployment actually
    sustained.

    Attributes:
        points: the sweep, in any order.
        n_shards: shards in the *measured* deployment (scaling base).
    """

    points: tuple
    n_shards: int = 1

    def __post_init__(self):
        if not self.points:
            raise ReproError("a saturation curve needs at least one point")
        if self.n_shards < 1:
            raise ReproError("the measured deployment has >= 1 shard")

    @classmethod
    def from_sweep(cls, sweep, n_shards: int = 1) -> "SaturationCurve":
        """Build from ``BENCH_load.json``-style dicts (one per load level)."""
        return cls(points=tuple(
            SaturationPoint(offered_rps=float(p["offered_rps"]),
                            goodput_rps=float(p["goodput_rps"]),
                            p99_seconds=float(p["p99_seconds"]))
            for p in sweep), n_shards=n_shards)

    def sustainable_rps(self, p99_target_seconds: float) -> float:
        """Peak measured goodput whose p99 met the target.

        Raises:
            ReproError: no measured point met the target — the curve
                cannot calibrate a plan for that deadline (re-measure
                with admission control on, or relax the target).
        """
        if p99_target_seconds <= 0:
            raise ReproError("p99 target must be positive")
        meeting = [p.goodput_rps for p in self.points
                   if p.p99_seconds <= p99_target_seconds and
                   p.goodput_rps > 0]
        if not meeting:
            raise ReproError(
                f"no measured point sustains p99 <= {p99_target_seconds:g}s; "
                f"the curve cannot size a deployment for that target")
        return max(meeting)

    def shards_for(self, n_users: int, p99_target_seconds: float,
                   profile: UserProfile = UserProfile(),
                   active_hours: float = 16.0,
                   peak_factor: float = 2.0,
                   headroom: float = 1.25) -> int:
        """Shards needed for ``n_users`` at ``p99 < target`` — measured.

        The population's diurnal-peak GET rate (the same
        :func:`peak_request_rate` model :func:`plan_fleet` uses) is
        divided by the measured per-shard sustainable rate; capacity
        scales linearly in shards because each shard group serves an
        independent slice of the domain.
        """
        if headroom < 1:
            raise ReproError("headroom must be >= 1")
        rate = peak_request_rate(n_users, profile, active_hours, peak_factor)
        per_shard_rps = self.sustainable_rps(p99_target_seconds) / self.n_shards
        return max(1, math.ceil(rate * headroom / per_shard_rps))


def shards_for(curve: SaturationCurve, n_users: int,
               p99_target_seconds: float, **kwargs) -> int:
    """Module-level convenience for :meth:`SaturationCurve.shards_for`."""
    return curve.shards_for(n_users, p99_target_seconds, **kwargs)


__all__ = ["FleetPlan", "plan_fleet", "peak_request_rate",
           "SaturationPoint", "SaturationCurve", "shards_for"]
