"""AWS instance catalogue used by the paper's cost estimates.

"We base request cost on the cost of an AWS c5.large instance" (Table 2
caption): 2 vCPUs, 4 GiB of memory, $0.085 per hour (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class InstanceType:
    """One cloud instance type.

    Attributes:
        name: AWS name, e.g. ``"c5.large"``.
        vcpus: virtual CPU count.
        memory_gib: RAM in GiB.
        hourly_usd: on-demand price per hour.
    """

    name: str
    vcpus: int
    memory_gib: float
    hourly_usd: float

    def __post_init__(self):
        if self.vcpus < 1 or self.memory_gib <= 0 or self.hourly_usd <= 0:
            raise ReproError(f"invalid instance spec {self.name!r}")

    @property
    def usd_per_machine_second(self) -> float:
        """Dollars per second of whole-machine time."""
        return self.hourly_usd / 3600.0

    @property
    def usd_per_vcpu_second(self) -> float:
        """Dollars per vCPU-second."""
        return self.hourly_usd / 3600.0 / self.vcpus

    def machine_seconds_to_usd(self, seconds: float) -> float:
        """Cost of occupying the whole machine for ``seconds``."""
        return seconds * self.usd_per_machine_second

    def vcpu_seconds_to_usd(self, vcpu_seconds: float) -> float:
        """Cost of ``vcpu_seconds`` of core time."""
        return vcpu_seconds * self.usd_per_vcpu_second


#: The paper's benchmark machine (§5): "a c5.large instance with 2 vCPUs and
#: 4 GiB of memory ... costs $0.085 per hour".
C5_LARGE = InstanceType(name="c5.large", vcpus=2, memory_gib=4.0, hourly_usd=0.085)

#: A larger instance, for the ablation sweeps.
C5_4XLARGE = InstanceType(name="c5.4xlarge", vcpus=16, memory_gib=32.0, hourly_usd=0.68)


__all__ = ["InstanceType", "C5_LARGE", "C5_4XLARGE"]
