"""The "Looking forward" cost projection (§5.2).

"In 2003, $1 bought 8 CPU hours, and in 2008, $1 bought 128 CPU hours
(adjusted for inflation), a 16x increase. This change suggests that in 5
years, we could potentially see the dollar cost of a ZLTP request drop by
an order of magnitude."
"""

from __future__ import annotations

from repro.errors import ReproError

#: The paper's observed 2003→2008 improvement: 16× per 5 years.
CPU_COST_IMPROVEMENT_PER_5Y = 16.0

#: The historical anchor points the paper cites.
CPU_HOURS_PER_DOLLAR_2003 = 8.0
CPU_HOURS_PER_DOLLAR_2008 = 128.0


def projected_cost(current_cost_usd: float, years: float,
                   improvement_per_5y: float = CPU_COST_IMPROVEMENT_PER_5Y) -> float:
    """Project a compute-bound cost ``years`` into the future.

    Args:
        current_cost_usd: today's cost.
        years: horizon (5 reproduces the paper's order-of-magnitude claim).
        improvement_per_5y: cost-improvement factor per 5 years.

    Returns:
        The projected cost.
    """
    if current_cost_usd < 0:
        raise ReproError("cost cannot be negative")
    if improvement_per_5y <= 1:
        raise ReproError("improvement factor must exceed 1")
    return current_cost_usd / (improvement_per_5y ** (years / 5.0))


def years_until_cost(current_cost_usd: float, target_cost_usd: float,
                     improvement_per_5y: float = CPU_COST_IMPROVEMENT_PER_5Y) -> float:
    """How long until a compute cost falls to a target."""
    import math

    if current_cost_usd <= 0 or target_cost_usd <= 0:
        raise ReproError("costs must be positive")
    if target_cost_usd >= current_cost_usd:
        return 0.0
    return 5.0 * math.log(current_cost_usd / target_cost_usd) / math.log(improvement_per_5y)


__all__ = [
    "projected_cost",
    "years_until_cost",
    "CPU_COST_IMPROVEMENT_PER_5Y",
    "CPU_HOURS_PER_DOLLAR_2003",
    "CPU_HOURS_PER_DOLLAR_2008",
]
