"""``lightweb lint`` — run the zero-leakage static analyzer from the CLI.

Thin delegation to :mod:`repro.analysis` so the argparse surface lives
with the other subcommands and the analyzer stays importable (and
testable) without the CLI.
"""

from __future__ import annotations

import os

from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    render_json,
    render_text,
)
from repro.analysis.rules import analyze_paths
from repro.cli.console import emit


def missing_paths(paths) -> list:
    """The requested paths that do not exist on disk."""
    return [path for path in paths if not os.path.exists(path)]


def cmd_lint(args, print_fn=emit) -> int:
    """Analyze the requested paths; exit 0 clean / 1 findings / 2 error."""
    missing = missing_paths(args.paths)
    if missing:
        print_fn(f"lint error: no such path: {', '.join(missing)}")
        return EXIT_INTERNAL
    try:
        result = analyze_paths(
            args.paths, baseline_path=args.baseline,
            whole_program=not getattr(args, "intra_only", False),
            cache_path=getattr(args, "cache", "") or "",
        )
        if args.json:
            print_fn(render_json(result.findings, result.suppressed,
                                 result.baselined, len(result.files)))
        else:
            print_fn(render_text(result.findings, len(result.suppressed),
                                 len(result.baselined), len(result.files)))
    except Exception as exc:  # noqa: BLE001 - exit-code contract
        print_fn(f"lint internal error: {exc}")
        return EXIT_INTERNAL
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


__all__ = ["cmd_lint", "missing_paths"]
