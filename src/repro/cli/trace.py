"""``lightweb trace`` — read a deployment's flight recorder.

Fetches ``/debug/traces.json`` from the stats sidecar (``lightweb
serve --stats-port``) and renders the retained request trace trees:
the recent ring plus the always-kept slow and errored exemplars. Spans
carry only fixed operation names, fixed-key attributes, and timings —
never request contents — so the flight recorder is safe to leave on
in production (see DESIGN.md, Observability).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.cli.console import emit
from repro.errors import TransportError
from repro.obs.fleet import http_get


def fetch_traces(host: str, port: int,
                 timeout: float = 10.0) -> Dict[str, Any]:
    """GET ``/debug/traces.json`` and return the decoded export.

    Raises:
        TransportError: on connection failure, a non-200 status (a
            sidecar without a flight recorder answers 404), or a
            non-JSON body.
    """
    body = http_get(host, port, "/debug/traces.json", timeout=timeout)
    try:
        export = json.loads(body)
    except json.JSONDecodeError as exc:
        raise TransportError(
            f"{host}:{port}/debug/traces.json returned invalid JSON: "
            f"{exc}") from exc
    if not isinstance(export, dict):
        raise TransportError(
            f"{host}:{port}/debug/traces.json returned a non-object")
    return export


def render_span(node: Dict[str, Any], depth: int = 0) -> List[str]:
    """One span tree as indented lines, millisecond timings."""
    attrs = node.get("attrs") or {}
    attr_text = "".join(f" {key}={attrs[key]}" for key in sorted(attrs))
    lines = [f"{'  ' * depth}{node.get('name', '?')} "
             f"{node.get('wall_seconds', 0.0) * 1e3:.3f} ms{attr_text}"]
    for child in node.get("children") or []:
        lines.extend(render_span(child, depth + 1))
    return lines


def render_traces(export: Dict[str, Any]) -> str:
    """Human-readable flight-recorder dump: counters, then each ring."""
    counters = export.get("counters") or {}
    lines = [
        f"flight recorder: {counters.get('recorded', 0)} recorded, "
        f"{counters.get('slow_kept', 0)} slow kept, "
        f"{counters.get('errors_kept', 0)} errored kept "
        f"(slow >= {export.get('slow_threshold_seconds', 0.0) * 1e3:.0f} ms)"
    ]
    for ring in ("errored", "slow", "recent"):
        roots = export.get(ring) or []
        lines.append("")
        lines.append(f"# {ring} ({len(roots)})")
        if not roots:
            lines.append("(empty)")
            continue
        for root in roots:
            lines.extend(render_span(root))
    return "\n".join(lines)


def cmd_trace(args) -> int:
    """Entry point for ``lightweb trace``."""
    try:
        export = fetch_traces(args.host, args.port, timeout=args.timeout)
    except TransportError as exc:
        emit(f"trace error: {exc}")
        return 1
    if args.json:
        emit(json.dumps(export, indent=2))
        return 0
    emit(render_traces(export))
    return 0


__all__ = ["fetch_traces", "render_span", "render_traces", "cmd_trace"]
