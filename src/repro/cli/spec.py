"""Site specification files for the CLI.

A *site spec* is a JSON document a publisher writes by hand::

    {
      "domain": "news.example",
      "integrity": true,
      "pages": {
        "/":      "Front page. [[news.example/world|World]]",
        "/world": {"title": "World", "body": "..."}
      },
      "program": {                       // optional custom lightscript
        "routes": [
          {"pattern": "^/$", "fetches": ["news.example/"],
           "render": "{data0.body}"}
        ]
      }
    }

:func:`load_site` turns one into a ready-to-push
:class:`~repro.core.lightweb.publisher.Site`.

Specs are plain data — they carry no code and face no privacy rules of
their own; the serving stack that moves them (crypto/PIR/ZLTP layers) is
what ``lightweb lint`` (:mod:`repro.analysis`) holds to the zero-leakage
discipline. Spec errors surface as :class:`~repro.errors.PathError` with
the offending field named, since publishers write these by hand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.core.lightweb.lightscript import LightscriptProgram, Route
from repro.core.lightweb.publisher import Site
from repro.errors import PathError


def parse_site_spec(spec: Dict[str, Any]) -> Site:
    """Build a :class:`Site` from a parsed spec dictionary.

    Raises:
        PathError: on a structurally invalid spec.
    """
    if not isinstance(spec, dict) or "domain" not in spec:
        raise PathError("site spec must be an object with a 'domain' field")
    site = Site(str(spec["domain"]))
    if spec.get("integrity"):
        site.enable_integrity()

    pages = spec.get("pages")
    if not isinstance(pages, dict) or not pages:
        raise PathError("site spec needs a non-empty 'pages' object")
    for rest, content in pages.items():
        site.add_page(str(rest), content)

    program_spec = spec.get("program")
    if program_spec is not None:
        routes_spec = program_spec.get("routes")
        if not isinstance(routes_spec, list):
            raise PathError("'program.routes' must be a list")
        routes = [
            Route(
                pattern=str(entry["pattern"]),
                fetches=tuple(str(f) for f in entry.get("fetches", [])),
                render=str(entry.get("render", "")),
                prompts=tuple(str(p) for p in entry.get("prompts", [])),
            )
            for entry in routes_spec
        ]
        site.set_program(
            LightscriptProgram(site.domain, routes,
                               style=program_spec.get("style") or {})
        )
    return site


def load_site(path: str) -> Site:
    """Load a site spec file.

    Raises:
        PathError: if the file is unreadable or invalid.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise PathError(f"cannot read site spec {path}: {exc}") from exc
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PathError(f"malformed JSON in {path}: {exc}") from exc
    return parse_site_spec(spec)


__all__ = ["load_site", "parse_site_spec"]
