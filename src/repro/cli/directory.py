"""``lightweb directory`` — run the server-discovery directory.

The directory is the control plane that replaces port-flag wiring:
deployments announce their endpoints to it (``lightweb serve
--directory HOST:PORT``) and clients resolve capability queries from it
(``lightweb browse --directory HOST:PORT``). It holds only signed,
TTL'd :class:`~repro.core.discovery.AnnounceRecord`\\ s — public server
topology, never anything about what any client fetches.
"""

from __future__ import annotations

from repro.cli.console import emit
from repro.core.discovery import DEFAULT_SECRET, DirectoryServer
from repro.obs.logs import (
    configure_console_logging,
    configure_json_logging,
    get_logger,
)

_log = get_logger(__name__)


def cmd_directory(args) -> int:
    """Entry point for ``lightweb directory``."""
    if getattr(args, "log_json", False):
        configure_json_logging()
    else:
        configure_console_logging()
    secret = getattr(args, "secret", None)
    server = DirectoryServer(
        secret=secret.encode() if secret else DEFAULT_SECRET,
        host=args.host, port=args.port)
    emit(f"directory listening on {server.address[0]}:{server.address[1]}")
    emit("serving; Ctrl-C to stop.")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        _log.info("directory stopped")
    return 0


__all__ = ["cmd_directory"]
