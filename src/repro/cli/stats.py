"""``lightweb stats`` — read a running deployment's observability snapshot.

Fetches the stats exposition a :class:`~repro.core.zltp.sockets.
StatsTcpServer` serves (``lightweb serve --stats-port``, or the
``stats_port`` argument of :class:`~repro.core.zltp.sockets.
ZltpTcpServer`) and prints it: the Prometheus-style text form by
default, or the raw JSON snapshot with ``--json``.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.cli.console import emit
from repro.errors import TransportError

_RECV_CHUNK = 65536


def fetch_stats(host: str, port: int, as_json: bool = False,
                timeout: Optional[float] = 10.0) -> str:
    """GET the stats endpoint and return the response body.

    Raises:
        TransportError: on connection failure or a malformed response.
    """
    path = "/metrics.json" if as_json else "/metrics"
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
            )
            data = b""
            while True:
                chunk = sock.recv(_RECV_CHUNK)
                if not chunk:
                    break
                data += chunk
    except OSError as exc:
        raise TransportError(
            f"could not fetch stats from {host}:{port}: {exc}") from exc
    head, sep, body = data.partition(b"\r\n\r\n")
    if not sep or not head.startswith(b"HTTP/"):
        raise TransportError(f"malformed stats response from {host}:{port}")
    return body.decode("utf-8", errors="replace")


def cmd_stats(args) -> int:
    """Entry point for ``lightweb stats``."""
    try:
        body = fetch_stats(args.host, args.port, as_json=args.json)
    except TransportError as exc:
        emit(f"stats error: {exc}")
        return 1
    emit(body.rstrip("\n"))
    return 0


__all__ = ["fetch_stats", "cmd_stats"]
