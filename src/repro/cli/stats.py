"""``lightweb stats`` — read a deployment's observability snapshot.

Fetches the stats exposition a :class:`~repro.core.zltp.sockets.
StatsTcpServer` serves (``lightweb serve --stats-port``, or the
``stats_port`` argument of :class:`~repro.core.zltp.sockets.
ZltpTcpServer`) and prints it: the Prometheus-style text form by
default, or the raw JSON snapshot with ``--json``.

With ``--directory HOST:PORT`` the single-server scrape becomes a fleet
scrape: every announced server with a stats sidecar is scraped
concurrently and the merged exposition is printed (``lightweb top``
renders the same scrape as a per-server table instead).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.cli.console import emit
from repro.errors import DiscoveryError, TransportError
from repro.obs.fleet import http_get


def fetch_stats(host: str, port: int, as_json: bool = False,
                timeout: Optional[float] = 10.0) -> str:
    """GET the stats endpoint and return the response body.

    Raises:
        TransportError: on connection failure, a malformed response, or
            a non-200 status — a sidecar's 500 (a raising snapshot) is
            an error, not an exposition.
    """
    path = "/metrics.json" if as_json else "/metrics"
    return http_get(host, port, path, timeout=timeout)


def _fleet_stats(args) -> int:
    """The ``--directory`` path: scrape the whole announced fleet."""
    from repro.cli.top import directory_fleet_snapshot
    from repro.obs.metrics import render_snapshot_text

    try:
        fleet = directory_fleet_snapshot(
            args.directory, secret=args.directory_secret,
            timeout=args.timeout)
    except (TransportError, DiscoveryError, ValueError) as exc:
        emit(f"stats error: {exc}")
        return 1
    if args.json:
        emit(json.dumps(fleet.as_dict(), indent=2))
        return 0
    emit(f"# fleet: {fleet.up_count} up, {fleet.down_count} down")
    for scrape in fleet.scrapes:
        if not scrape.up:
            emit(f"# DOWN {scrape.target.server_id} "
                 f"({scrape.target.host}:{scrape.target.port}): "
                 f"{scrape.error}")
    emit(render_snapshot_text(fleet.merged).rstrip("\n"))
    return 0


def cmd_stats(args) -> int:
    """Entry point for ``lightweb stats``."""
    if getattr(args, "directory", None):
        return _fleet_stats(args)
    if args.port is None:
        emit("stats error: --port is required without --directory")
        return 1
    try:
        body = fetch_stats(args.host, args.port, as_json=args.json)
    except TransportError as exc:
        emit(f"stats error: {exc}")
        return 1
    emit(body.rstrip("\n"))
    return 0


__all__ = ["fetch_stats", "cmd_stats"]
