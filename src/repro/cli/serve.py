"""``lightweb serve`` — host a universe behind real TCP ZLTP listeners.

One deployment exposes one listener per (session kind × party), where the
party count is the largest endpoint count any served mode needs — two
when ``pir2`` is offered, one for a single-server-only deployment. With
the default registry that is four listeners on consecutive ports:

    base+0  code party 0        base+2  data party 0
    base+1  code party 1        base+3  data party 1

Which modes are served is registry-driven: every registered backend by
default, or the ``--modes pir2,lwe,enclave`` subset (aliases accepted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cli.console import emit
from repro.cli.spec import load_site
from repro.core import backend as backend_registry
from repro.core.discovery import (
    DEFAULT_SECRET,
    AnnounceRecord,
    Announcer,
    DirectoryClient,
)
from repro.core.lightweb.cdn import Cdn
from repro.core.zltp.serving import DEFAULT_SERVER_KIND, create_tcp_server
from repro.core.zltp.sockets import StatsTcpServer, ZltpTcpServer
from repro.errors import NegotiationError, ReproError
from repro.obs.logs import (
    configure_console_logging,
    configure_json_logging,
    get_logger,
)
from repro.obs.metrics import REGISTRY, merge_snapshots

_log = get_logger(__name__)


def parse_modes(value: Optional[str]) -> Optional[List[str]]:
    """Parse a ``--modes`` value: comma-separated names or aliases.

    Returns canonical mode names (deduplicated, first occurrence wins),
    or None when no restriction was given (serve everything registered).
    Unknown names raise a one-line
    :class:`~repro.errors.NegotiationError` naming every valid mode and
    alias, instead of surfacing as a late registry lookup failure.
    """
    if not value:
        return None
    names = [part.strip() for part in value.split(",") if part.strip()]
    resolved: List[str] = []
    for name in names:
        try:
            canonical = backend_registry.resolve_mode(name)
        except NegotiationError:
            valid = ", ".join(
                spec.name + (f" (aka {', '.join(spec.aliases)})"
                             if spec.aliases else "")
                for spec in backend_registry.registered_specs())
            raise NegotiationError(
                f"unknown mode {name!r}; valid modes: {valid}") from None
        if canonical not in resolved:
            resolved.append(canonical)
    return resolved


@dataclass
class RunningDeployment:
    """Handle on a served universe: the CDN, listeners, and their ports."""

    cdn: Cdn
    universe_name: str
    #: Listener objects satisfy the shared serving interface of
    #: :mod:`repro.core.zltp.serving`; which flavour backs them is the
    #: deployment's ``--server-kind`` choice.
    listeners: Dict[Tuple[str, int], Any]
    stats: Optional[StatsTcpServer] = field(default=None)
    #: Extra listeners over the *same* logical servers, keyed like
    #: ``listeners``: the failover targets a resilient client dials when
    #: a primary endpoint dies (same salt, geometry, and mode state, so
    #: a reconnect-resume validates against the negotiated session).
    replicas: Dict[Tuple[str, int], List[Any]] = \
        field(default_factory=dict)
    #: The periodic directory announcer, when ``--directory`` is wired.
    announcer: Optional[Announcer] = field(default=None)

    @property
    def n_parties(self) -> int:
        """Listeners per session kind (the widest served mode's endpoints)."""
        return max(party for (_kind, party) in self.listeners) + 1

    def ports(self) -> Dict[str, List[int]]:
        """``{"code": [ports by party...], "data": [ports by party...]}``."""
        return {
            kind: [self.listeners[(kind, party)].address[1]
                   for party in range(self.n_parties)]
            for kind in ("code", "data")
        }

    def replica_ports(self) -> Dict[str, List[List[int]]]:
        """Replica listener ports: ``{"code": [per-party port lists], ...}``."""
        return {
            kind: [[listener.address[1]
                    for listener in self.replicas.get((kind, party), [])]
                   for party in range(self.n_parties)]
            for kind in ("code", "data")
        }

    def announce_records(self, ttl_seconds: Optional[float] = 15.0
                         ) -> List[AnnounceRecord]:
        """Unsigned announce records for every listener, replicas included.

        Each record derives its capability metadata and load snapshot
        from the listener's logical server
        (:meth:`~repro.core.zltp.server.ZltpServer.capability_snapshot`),
        and carries the universe's fetch budget in ``attrs`` so a
        discovered client needs no out-of-band configuration. The
        :class:`~repro.core.discovery.Announcer` signs them and stamps
        the generation on every tick.
        """
        budget = self.cdn.universe(self.universe_name).fetch_budget
        attrs: Dict[str, Any] = {"fetch_budget": budget}
        if self.stats is not None:
            # Fleet scrapers ("lightweb top") find the sidecar through
            # the records — one port attribute, no extra configuration.
            attrs["stats_port"] = self.stats.address[1]
        records: List[AnnounceRecord] = []

        def make(listener: Any, kind: str, party: int, role: str,
                 index: int) -> AnnounceRecord:
            snap = listener.server.capability_snapshot()
            host, port = listener.address
            return AnnounceRecord(
                server_id=(f"{self.universe_name}/{kind}/{party}/"
                           f"{role}{index}"),
                host=host, port=port, universe=self.universe_name,
                kind=kind, party=party, modes=tuple(snap["modes"]),
                prefix_bits=snap["prefix_bits"], cost=snap["cost"],
                load=snap["load"], attrs=dict(attrs),
                ttl_seconds=ttl_seconds,
            )

        for (kind, party), listener in sorted(self.listeners.items()):
            records.append(make(listener, kind, party, "primary", 0))
        for (kind, party), group in sorted(self.replicas.items()):
            for index, listener in enumerate(group):
                records.append(make(listener, kind, party, "replica", index))
        return records

    def _logical_servers(self) -> List[Any]:
        """Distinct logical servers behind the listeners (replicas share
        them, so the set is deduplicated by identity)."""
        seen: List[Any] = []
        for listener in list(self.listeners.values()) + \
                [l for group in self.replicas.values() for l in group]:
            server = getattr(listener, "server", None)
            if server is not None and all(server is not s for s in seen):
                seen.append(server)
        return seen

    def stats_snapshot(self) -> Dict[str, Any]:
        """Deployment-wide serving counters plus the merged metrics
        snapshot (process registry folded with any scan-pool workers the
        logical servers drive)."""
        merged = self.cdn.stats_by_mode(self.universe_name)
        metrics = merge_snapshots(
            [REGISTRY.snapshot()] +
            [snap for snap in (server.executor_metrics()
                               for server in self._logical_servers())
             if snap])
        return {
            "universe": self.universe_name,
            "sessions_opened": sum(server.sessions_opened
                                   for server in self._logical_servers()),
            "gets_served": self.cdn.total_gets(self.universe_name),
            "modes": {mode: stats.as_dict()
                      for mode, stats in sorted(merged.items())},
            "metrics": metrics,
        }

    def traces_snapshot(self) -> Dict[str, Any]:
        """Every logical server's flight-recorder export, concatenated.

        Same schema as :meth:`~repro.obs.flight.FlightRecorder.export`
        (counters summed, rings concatenated in listener order), so the
        ``lightweb trace`` renderer treats a deployment exactly like a
        single server.
        """
        counters = {"recorded": 0, "slow_kept": 0, "errors_kept": 0}
        rings: Dict[str, List[Any]] = {"recent": [], "slow": [], "errored": []}
        threshold = None
        for server in self._logical_servers():
            export = server.flight.export()
            if threshold is None:
                threshold = export.get("slow_threshold_seconds")
            for key in counters:
                counters[key] += export.get("counters", {}).get(key, 0)
            for key in rings:
                rings[key].extend(export.get(key, []))
        return {"slow_threshold_seconds": threshold,
                "counters": counters, **rings}

    def stop(self) -> None:
        """Stop the announcer (withdrawing its records), the stats
        endpoint, and every listener (replicas included)."""
        if self.announcer is not None:
            self.announcer.stop(withdraw=True)
        if self.stats is not None:
            self.stats.stop()
        for listener in self.listeners.values():
            listener.stop()
        for group in self.replicas.values():
            for listener in group:
                listener.stop()


def build_deployment(spec_paths: List[str], universe_name: str = "main",
                     data_blob_size: int = 4096, code_blob_size: int = 65536,
                     data_domain_bits: int = 12, code_domain_bits: int = 8,
                     fetch_budget: int = 5, host: str = "127.0.0.1",
                     port_base: int = 0,
                     state_path: str = "",
                     modes: Optional[List[str]] = None,
                     stats_port: Optional[int] = None,
                     replicas: int = 0,
                     server_kind: Optional[str] = None,
                     admission_deadline_seconds: Optional[float] = None,
                     admission_max_queue_depth: int = 64
                     ) -> RunningDeployment:
    """Create a CDN from site specs (or saved state) and expose it over TCP.

    Args:
        spec_paths: site-spec JSON files to publish.
        universe_name: name of the hosted universe.
        port_base: first of the consecutive listener ports (0 = ephemeral).
        state_path: optional universe archive; loaded if it exists (specs
            are then pushed on top), and (re)written after the build, so a
            restarted server resumes without losing earlier pushes.
        modes: served modes (names or registry aliases); default is every
            registered backend.
        stats_port: when given, also expose the deployment-wide stats
            snapshot on an HTTP sidecar at this port (0 = ephemeral).
        replicas: additional listeners per (kind, party) over the same
            logical servers — failover targets for resilient clients.
        server_kind: serving flavour for every listener (a name from
            :func:`repro.core.zltp.serving.server_kinds`); default is the
            event-loop session core.
        admission_deadline_seconds: when given, attach an
            :class:`~repro.core.zltp.admission.AdmissionController` with
            this deadline to every *data* logical server, so GETs that
            would blow it are shed with a fast overload error instead of
            queued behind a doomed scan. Replica listeners share the
            logical servers and therefore the gate.
        admission_max_queue_depth: the gate's hard in-flight cap.

    Returns:
        A :class:`RunningDeployment`; call ``stop()`` to tear down.
    """
    import os

    from repro.core.lightweb.persistence import load_universe, save_universe

    cdn = Cdn("cli-cdn", modes=modes)
    if state_path and os.path.exists(state_path):
        universe = load_universe(state_path)
        cdn._universes[universe_name] = universe
        cdn.gets_by_universe[universe_name] = 0
    else:
        universe = cdn.create_universe(
            universe_name,
            data_blob_size=data_blob_size,
            code_blob_size=code_blob_size,
            data_domain_bits=data_domain_bits,
            code_domain_bits=code_domain_bits,
            fetch_budget=fetch_budget,
        )
    for path in spec_paths:
        site = load_site(path)
        compiled = site.compile(universe.max_data_payload,
                                universe.max_code_payload)
        cdn.accept_push(f"cli:{site.domain}", universe_name, compiled)
    if state_path:
        save_universe(universe, state_path)

    n_parties = max(backend_registry.mode_endpoints(mode)
                    for mode in cdn.modes)
    listeners: Dict[Tuple[str, int], Any] = {}
    offset = 0
    for kind in ("code", "data"):
        for party in range(n_parties):
            port = port_base + offset if port_base else 0
            server = cdn._server(universe_name, kind, party)
            if kind == "data" and admission_deadline_seconds is not None \
                    and server.admission is None:
                from repro.core.zltp.admission import AdmissionController

                server.admission = AdmissionController(
                    deadline_seconds=admission_deadline_seconds,
                    max_queue_depth=admission_max_queue_depth)
            listeners[(kind, party)] = create_tcp_server(
                server_kind, server, host=host, port=port)
            offset += 1
    # Replica listeners share the logical servers (the cdn caches them
    # per (universe, kind, party)), so a client failing over mid-session
    # lands on the same salt, geometry, and mode state.
    replica_map: Dict[Tuple[str, int], List[Any]] = {}
    for _round in range(replicas):
        for kind in ("code", "data"):
            for party in range(n_parties):
                port = port_base + offset if port_base else 0
                server = cdn._server(universe_name, kind, party)
                replica_map.setdefault((kind, party), []).append(
                    create_tcp_server(server_kind, server, host=host,
                                      port=port))
                offset += 1
    deployment = RunningDeployment(cdn=cdn, universe_name=universe_name,
                                   listeners=listeners, replicas=replica_map)
    if stats_port is not None:
        deployment.stats = StatsTcpServer(deployment.stats_snapshot,
                                          host=host, port=stats_port,
                                          traces=deployment.traces_snapshot)
    return deployment


def parse_hostport(value: str, what: str = "--directory") -> Tuple[str, int]:
    """Parse a ``host:port`` flag value with a one-line typed error."""
    host, sep, port = value.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ReproError(f"{what} expects HOST:PORT, got {value!r}")
    return host, int(port)


def attach_announcer(deployment: RunningDeployment, directory: Any,
                     secret: bytes = DEFAULT_SECRET,
                     interval_seconds: float = 5.0,
                     ttl_seconds: Optional[float] = 15.0) -> Announcer:
    """Start announcing a deployment's records to a directory.

    The announcer re-reads :meth:`RunningDeployment.announce_records` on
    every tick (fresh load, bumped generation) and is stopped — with its
    records withdrawn — by :meth:`RunningDeployment.stop`. The TTL is
    three intervals by default, so a SIGKILLed deployment ages out of
    the directory after a few missed re-announces.
    """
    announcer = Announcer(
        directory,
        lambda: deployment.announce_records(ttl_seconds=ttl_seconds),
        secret=secret, interval_seconds=interval_seconds,
        name=f"announce:{deployment.universe_name}",
    ).start()
    deployment.announcer = announcer
    return announcer


def cmd_serve(args) -> int:
    """Entry point for ``lightweb serve``."""
    if getattr(args, "log_json", False):
        configure_json_logging()
    else:
        configure_console_logging()
    deployment = build_deployment(
        args.spec,
        universe_name=args.universe,
        data_blob_size=args.data_blob_size,
        fetch_budget=args.fetch_budget,
        port_base=args.port_base,
        state_path=args.state,
        modes=parse_modes(getattr(args, "modes", None)),
        stats_port=getattr(args, "stats_port", None),
        replicas=getattr(args, "replicas", 0),
        server_kind=getattr(args, "server_kind", None),
        admission_deadline_seconds=getattr(args, "admission_deadline", None),
        admission_max_queue_depth=getattr(args, "admission_queue_depth", 64),
    )
    directory_flag = getattr(args, "directory", None)
    if directory_flag:
        host, port = parse_hostport(directory_flag)
        secret = getattr(args, "directory_secret", None)
        interval = getattr(args, "announce_interval", 5.0)
        attach_announcer(
            deployment,
            DirectoryClient(host, port,
                            secret=secret.encode() if secret
                            else DEFAULT_SECRET),
            secret=secret.encode() if secret else DEFAULT_SECRET,
            interval_seconds=interval,
            ttl_seconds=interval * 3,
        )
    universe = deployment.cdn.universe(args.universe)
    ports = deployment.ports()
    emit(f"universe {args.universe!r}: {universe.n_pages} data blobs, "
         f"domains {universe.domains()}")
    emit(f"modes         : {', '.join(deployment.cdn.modes)}")
    emit(f"session core  : {getattr(args, 'server_kind', None) or DEFAULT_SERVER_KIND}")
    emit(f"code sessions : ports {ports['code']}")
    emit(f"data sessions : ports {ports['data']}")
    if deployment.replicas:
        replica_ports = deployment.replica_ports()
        emit(f"code replicas : ports {replica_ports['code']}")
        emit(f"data replicas : ports {replica_ports['data']}")
    if deployment.stats is not None:
        emit(f"stats endpoint: port {deployment.stats.address[1]}")
    if deployment.announcer is not None:
        emit(f"directory     : announcing to {directory_flag} "
             f"({len(deployment.announce_records())} records)")
    emit("serving; Ctrl-C to stop.")
    _log.info("deployment serving", extra={
        "universe": args.universe,
        "modes": list(deployment.cdn.modes),
        "ports": ports,
    })
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        deployment.stop()
        _log.info("deployment stopped", extra={"universe": args.universe})
    return 0


__all__ = ["build_deployment", "RunningDeployment", "cmd_serve",
           "parse_modes", "parse_hostport", "attach_announcer"]
