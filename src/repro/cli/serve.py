"""``lightweb serve`` — host a universe behind real TCP ZLTP listeners.

One deployment exposes four listeners per universe (code/data sessions ×
the two non-colluding pir2 parties), on consecutive ports:

    base+0  code party 0        base+2  data party 0
    base+1  code party 1        base+3  data party 1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cli.spec import load_site
from repro.core.lightweb.cdn import Cdn
from repro.core.zltp.modes import MODE_PIR2
from repro.core.zltp.sockets import ZltpTcpServer


@dataclass
class RunningDeployment:
    """Handle on a served universe: the CDN, listeners, and their ports."""

    cdn: Cdn
    universe_name: str
    listeners: Dict[Tuple[str, int], ZltpTcpServer]

    def ports(self) -> Dict[str, List[int]]:
        """``{"code": [p0, p1], "data": [p0, p1]}``."""
        return {
            kind: [self.listeners[(kind, party)].address[1] for party in (0, 1)]
            for kind in ("code", "data")
        }

    def stop(self) -> None:
        """Stop every listener."""
        for listener in self.listeners.values():
            listener.stop()


def build_deployment(spec_paths: List[str], universe_name: str = "main",
                     data_blob_size: int = 4096, code_blob_size: int = 65536,
                     data_domain_bits: int = 12, code_domain_bits: int = 8,
                     fetch_budget: int = 5, host: str = "127.0.0.1",
                     port_base: int = 0,
                     state_path: str = "") -> RunningDeployment:
    """Create a CDN from site specs (or saved state) and expose it over TCP.

    Args:
        spec_paths: site-spec JSON files to publish.
        universe_name: name of the hosted universe.
        port_base: first of four consecutive ports (0 = ephemeral ports).
        state_path: optional universe archive; loaded if it exists (specs
            are then pushed on top), and (re)written after the build, so a
            restarted server resumes without losing earlier pushes.

    Returns:
        A :class:`RunningDeployment`; call ``stop()`` to tear down.
    """
    import os

    from repro.core.lightweb.persistence import load_universe, save_universe

    cdn = Cdn("cli-cdn", modes=[MODE_PIR2])
    if state_path and os.path.exists(state_path):
        universe = load_universe(state_path)
        cdn._universes[universe_name] = universe
        cdn.gets_by_universe[universe_name] = 0
    else:
        universe = cdn.create_universe(
            universe_name,
            data_blob_size=data_blob_size,
            code_blob_size=code_blob_size,
            data_domain_bits=data_domain_bits,
            code_domain_bits=code_domain_bits,
            fetch_budget=fetch_budget,
        )
    for path in spec_paths:
        site = load_site(path)
        compiled = site.compile(universe.max_data_payload,
                                universe.max_code_payload)
        cdn.accept_push(f"cli:{site.domain}", universe_name, compiled)
    if state_path:
        save_universe(universe, state_path)

    listeners: Dict[Tuple[str, int], ZltpTcpServer] = {}
    offset = 0
    for kind in ("code", "data"):
        for party in (0, 1):
            port = port_base + offset if port_base else 0
            server = cdn._server(universe_name, kind, party)
            listeners[(kind, party)] = ZltpTcpServer(server, host=host,
                                                     port=port)
            offset += 1
    return RunningDeployment(cdn=cdn, universe_name=universe_name,
                             listeners=listeners)


def cmd_serve(args) -> int:
    """Entry point for ``lightweb serve``."""
    deployment = build_deployment(
        args.spec,
        universe_name=args.universe,
        data_blob_size=args.data_blob_size,
        fetch_budget=args.fetch_budget,
        port_base=args.port_base,
        state_path=args.state,
    )
    universe = deployment.cdn.universe(args.universe)
    ports = deployment.ports()
    print(f"universe {args.universe!r}: {universe.n_pages} data blobs, "
          f"domains {universe.domains()}")
    print(f"code sessions : ports {ports['code']}")
    print(f"data sessions : ports {ports['data']}")
    print("serving; Ctrl-C to stop.")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        deployment.stop()
    return 0


__all__ = ["build_deployment", "RunningDeployment", "cmd_serve"]
