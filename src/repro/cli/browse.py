"""``lightweb browse`` — a terminal lightweb client over TCP.

Connects the two session kinds (four TCP connections for pir2, two for
the single-endpoint modes), then either visits the paths given on the
command line or drops into a small interactive loop (`path` to visit, a
number to follow a link, `quit`). ``--modes`` restricts what the client
offers in its hello — give one port per kind to browse a single-server
mode (``--modes lwe --code-ports P --data-ports P``).

Every session rides a reconnecting transport: a dropped TCP connection
is re-dialled with backoff and the session resumed in place, and
``--code-replica-ports`` / ``--data-replica-ports`` (the ports ``serve
--replicas`` prints) add failover targets per endpoint.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser, RenderedPage
from repro.core.resilience import RetryPolicy
from repro.core.zltp.client import connect_client
from repro.core.zltp.sockets import connect_tcp_resilient


class TcpCdnProxy:
    """Adapts raw TCP endpoints to the ``cdn.connect`` interface the
    browser expects, plus the universe metadata it needs."""

    class _Universe:
        def __init__(self, fetch_budget):
            self.fetch_budget = fetch_budget

    def __init__(self, host: str, code_ports: List[int],
                 data_ports: List[int], fetch_budget: int = 5,
                 universe_name: str = "main",
                 code_replica_ports: Optional[List[int]] = None,
                 data_replica_ports: Optional[List[int]] = None,
                 retries: int = 4,
                 op_deadline_seconds: Optional[float] = None):
        self.name = f"tcp:{host}"
        self._host = host
        self._ports = {"code": code_ports, "data": data_ports}
        self._replicas = {"code": list(code_replica_ports or []),
                          "data": list(data_replica_ports or [])}
        self._retries = retries
        self._op_deadline_seconds = op_deadline_seconds
        self._universe = self._Universe(fetch_budget)
        self._universe_name = universe_name

    def universe(self, name: str):
        """Universe metadata (the browser only needs the fetch budget)."""
        return self._universe

    def _candidates(self, kind: str, index: int) -> List[tuple]:
        """Dial candidates for one endpoint: its primary, then replicas.

        The replica list is flat in the order ``serve --replicas`` prints
        (round by round, party by party), so endpoint ``index`` of ``k``
        owns every ``index + n*k``-th replica port.
        """
        primaries = self._ports[kind]
        candidates = [(self._host, primaries[index])]
        candidates += [(self._host, port)
                       for port in self._replicas[kind][index::len(primaries)]]
        return candidates

    def connect(self, universe_name: str, kind: str, client_modes=None,
                transport_factory=None, rng=None):
        """Dial the deployment's listeners for one session kind."""
        transports = [
            connect_tcp_resilient(
                self._candidates(kind, index),
                policy=RetryPolicy(max_attempts=self._retries),
                op_deadline_seconds=self._op_deadline_seconds,
            )
            for index in range(len(self._ports[kind]))
        ]
        return connect_client(transports, supported_modes=client_modes,
                              rng=rng)


def render_to_terminal(page: RenderedPage) -> str:
    """Format a rendered page for terminal output."""
    lines = [f"── {page.path} " + "─" * max(0, 50 - len(page.path)), page.text]
    if page.links:
        lines.append("")
        for index, (target, label) in enumerate(page.links):
            lines.append(f"  [{index}] {label} -> {target}")
    for note in page.notes:
        lines.append(f"  ! {note}")
    return "\n".join(lines)


def cmd_browse(args, input_fn=input, print_fn=print) -> int:
    """Entry point for ``lightweb browse``."""
    from repro.cli.serve import parse_modes

    proxy = TcpCdnProxy(args.host, args.code_ports, args.data_ports,
                        fetch_budget=args.fetch_budget,
                        code_replica_ports=getattr(args, "code_replica_ports",
                                                   None),
                        data_replica_ports=getattr(args, "data_replica_ports",
                                                   None),
                        retries=getattr(args, "retries", 4),
                        op_deadline_seconds=getattr(args, "op_deadline", None))
    browser = LightwebBrowser(rng=np.random.default_rng())
    browser.connect(proxy, "main",
                    client_modes=parse_modes(getattr(args, "modes", None)))

    last: Optional[RenderedPage] = None
    for path in args.path:
        last = browser.visit(path)
        print_fn(render_to_terminal(last))

    if not args.interactive:
        browser.close()
        return 0

    print_fn("interactive mode: enter a path, a link number, or 'quit'")
    while True:
        try:
            line = input_fn("lightweb> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in ("quit", "exit", "q"):
            break
        try:
            if line.isdigit() and last is not None:
                last = browser.follow(last, int(line))
            else:
                last = browser.visit(line)
            print_fn(render_to_terminal(last))
        except Exception as exc:  # surface, keep the session alive
            print_fn(f"error: {exc}")
    browser.close()
    return 0


__all__ = ["TcpCdnProxy", "cmd_browse", "render_to_terminal"]
