"""``lightweb browse`` — a terminal lightweb client over TCP.

Connects the two session kinds (four TCP connections for pir2, two for
the single-endpoint modes), then either visits the paths given on the
command line or drops into a small interactive loop (`path` to visit, a
number to follow a link, `quit`). ``--modes`` restricts what the client
offers in its hello.

Endpoints come from discovery: with ``--directory HOST:PORT`` the client
resolves capability queries against a live directory server (the ports,
fetch budget, and party layout all come from the announce records — no
port flags at all), and every session rides a self-healing pool that
*re-resolves* when its candidates die, so a replacement server announced
after the client connected still heals the session. The old
``--code-ports``/``--data-ports`` (and replica-port) flags still work:
they pre-populate a local static directory
(:func:`repro.core.discovery.static_directory`) and flow through exactly
the same resolution path.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.core.discovery import (
    DEFAULT_SECRET,
    CachingResolver,
    CapabilityQuery,
    DirectoryClient,
    resolved_pool,
    static_directory,
)
from repro.core.lightweb.browser import LightwebBrowser, RenderedPage
from repro.core.resilience import RetryPolicy, resilient_pool
from repro.core.zltp.client import connect_client
from repro.core.zltp.sockets import connect_tcp
from repro.errors import DiscoveryError


class DirectoryCdnProxy:
    """Adapts a discovery directory to the ``cdn.connect`` interface the
    browser expects.

    Everything the old port-flag proxy was told by hand is resolved:
    the party layout comes from the announced records, the fetch budget
    from their ``attrs``, and each party's transport is a
    :func:`~repro.core.discovery.resolved_pool` — ranked candidates now,
    re-resolution against the directory when they all die. The proxy
    only ever issues structural queries (universe, kind, party) — never
    anything about *what* is being fetched.
    """

    class _Universe:
        def __init__(self, fetch_budget):
            self.fetch_budget = fetch_budget

    def __init__(self, resolver: Any, universe_name: str = "main",
                 retries: int = 4,
                 op_deadline_seconds: Optional[float] = None,
                 connect: Any = connect_tcp):
        self.name = f"directory:{universe_name}"
        self._resolver = resolver
        self._universe_name = universe_name
        self._retries = retries
        self._op_deadline_seconds = op_deadline_seconds
        self._connect = connect
        self._universe: Optional[DirectoryCdnProxy._Universe] = None

    def universe(self, name: str):
        """Universe metadata, resolved from the announce records."""
        if self._universe is None:
            records = self._resolver.resolve(
                CapabilityQuery(universe=self._universe_name, kind="data"))
            if not records:
                raise DiscoveryError(
                    f"no server announced for universe "
                    f"{self._universe_name!r}")
            self._universe = self._Universe(
                int(records[0].attrs.get("fetch_budget", 5)))
        return self._universe

    def connect(self, universe_name: str, kind: str, client_modes=None,
                transport_factory=None, rng=None):
        """Resolve one session kind's endpoints and dial them.

        The party layout (one transport for the single-server modes, two
        for pir2's non-colluding pair) is whatever the records announce;
        each party gets its own self-healing pool.
        """
        records = self._resolver.resolve(
            CapabilityQuery(universe=self._universe_name, kind=kind))
        if not records:
            raise DiscoveryError(
                f"no {kind} server announced for universe "
                f"{self._universe_name!r}")
        n_parties = max(record.party for record in records) + 1
        transports = []
        for party in range(n_parties):
            pool = resolved_pool(
                self._resolver,
                CapabilityQuery(universe=self._universe_name, kind=kind,
                                party=party),
                connect=self._connect,
            )
            transports.append(resilient_pool(
                pool, policy=RetryPolicy(max_attempts=self._retries),
                op_deadline_seconds=self._op_deadline_seconds,
            ))
        return connect_client(transports, supported_modes=client_modes,
                              rng=rng)


class TcpCdnProxy(DirectoryCdnProxy):
    """The port-flag shim: fixed endpoint lists as a static directory.

    Keeps the old ``cdn.connect`` surface for callers that pass explicit
    ``--code-ports``/``--data-ports`` (and flat replica lists in the
    order ``serve --replicas`` prints), but no longer hand-builds dial
    lists: the flags synthesize never-expiring announce records into an
    in-process directory and the whole resolution path is shared with
    real deployments.

    Raises:
        DiscoveryError: at construction, when a replica list's length is
            not a multiple of its kind's endpoint count — the silent
            replica misassignment the old flat-list slicing allowed.
    """

    def __init__(self, host: str, code_ports: List[int],
                 data_ports: List[int], fetch_budget: int = 5,
                 universe_name: str = "main",
                 code_replica_ports: Optional[List[int]] = None,
                 data_replica_ports: Optional[List[int]] = None,
                 retries: int = 4,
                 op_deadline_seconds: Optional[float] = None,
                 connect: Any = connect_tcp):
        directory = static_directory(
            host,
            {"code": code_ports, "data": data_ports},
            replicas_by_kind={"code": list(code_replica_ports or []),
                              "data": list(data_replica_ports or [])},
            universe=universe_name,
            attrs={"fetch_budget": fetch_budget},
        )
        super().__init__(
            CachingResolver(directory, grace_seconds=None),
            universe_name=universe_name, retries=retries,
            op_deadline_seconds=op_deadline_seconds, connect=connect)
        self.name = f"tcp:{host}"


def render_to_terminal(page: RenderedPage) -> str:
    """Format a rendered page for terminal output."""
    lines = [f"── {page.path} " + "─" * max(0, 50 - len(page.path)), page.text]
    if page.links:
        lines.append("")
        for index, (target, label) in enumerate(page.links):
            lines.append(f"  [{index}] {label} -> {target}")
    for note in page.notes:
        lines.append(f"  ! {note}")
    return "\n".join(lines)


def _build_proxy(args):
    """The browse endpoint source: a live directory, or the port-flag shim."""
    from repro.cli.serve import parse_hostport

    directory_flag = getattr(args, "directory", None)
    if directory_flag:
        host, port = parse_hostport(directory_flag)
        secret = getattr(args, "directory_secret", None)
        client = DirectoryClient(
            host, port,
            secret=secret.encode() if secret else DEFAULT_SECRET)
        return DirectoryCdnProxy(
            CachingResolver(client),
            universe_name=getattr(args, "universe", "main"),
            retries=getattr(args, "retries", 4),
            op_deadline_seconds=getattr(args, "op_deadline", None))
    if not args.code_ports or not args.data_ports:
        raise DiscoveryError(
            "give either --directory HOST:PORT or both --code-ports and "
            "--data-ports")
    return TcpCdnProxy(args.host, args.code_ports, args.data_ports,
                       fetch_budget=args.fetch_budget,
                       universe_name=getattr(args, "universe", "main"),
                       code_replica_ports=getattr(args, "code_replica_ports",
                                                  None),
                       data_replica_ports=getattr(args, "data_replica_ports",
                                                  None),
                       retries=getattr(args, "retries", 4),
                       op_deadline_seconds=getattr(args, "op_deadline", None))


def cmd_browse(args, input_fn=input, print_fn=print) -> int:
    """Entry point for ``lightweb browse``."""
    from repro.cli.serve import parse_modes

    proxy = _build_proxy(args)
    browser = LightwebBrowser(rng=np.random.default_rng())
    browser.connect(proxy, getattr(args, "universe", "main"),
                    client_modes=parse_modes(getattr(args, "modes", None)))

    last: Optional[RenderedPage] = None
    for path in args.path:
        last = browser.visit(path)
        print_fn(render_to_terminal(last))

    if not args.interactive:
        browser.close()
        return 0

    print_fn("interactive mode: enter a path, a link number, or 'quit'")
    while True:
        try:
            line = input_fn("lightweb> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in ("quit", "exit", "q"):
            break
        try:
            if line.isdigit() and last is not None:
                last = browser.follow(last, int(line))
            else:
                last = browser.visit(line)
            print_fn(render_to_terminal(last))
        except Exception as exc:  # surface, keep the session alive
            print_fn(f"error: {exc}")
    browser.close()
    return 0


__all__ = ["DirectoryCdnProxy", "TcpCdnProxy", "cmd_browse",
           "render_to_terminal"]
