"""``lightweb browse`` — a terminal lightweb client over TCP.

Connects the two session kinds (four TCP connections for pir2, two for
the single-endpoint modes), then either visits the paths given on the
command line or drops into a small interactive loop (`path` to visit, a
number to follow a link, `quit`). ``--modes`` restricts what the client
offers in its hello — give one port per kind to browse a single-server
mode (``--modes lwe --code-ports P --data-ports P``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.lightweb.browser import LightwebBrowser, RenderedPage
from repro.core.zltp.client import connect_client
from repro.core.zltp.sockets import connect_tcp


class TcpCdnProxy:
    """Adapts raw TCP endpoints to the ``cdn.connect`` interface the
    browser expects, plus the universe metadata it needs."""

    class _Universe:
        def __init__(self, fetch_budget):
            self.fetch_budget = fetch_budget

    def __init__(self, host: str, code_ports: List[int],
                 data_ports: List[int], fetch_budget: int = 5,
                 universe_name: str = "main"):
        self.name = f"tcp:{host}"
        self._host = host
        self._ports = {"code": code_ports, "data": data_ports}
        self._universe = self._Universe(fetch_budget)
        self._universe_name = universe_name

    def universe(self, name: str):
        """Universe metadata (the browser only needs the fetch budget)."""
        return self._universe

    def connect(self, universe_name: str, kind: str, client_modes=None,
                transport_factory=None, rng=None):
        """Dial the deployment's listeners for one session kind."""
        transports = [connect_tcp(self._host, port)
                      for port in self._ports[kind]]
        return connect_client(transports, supported_modes=client_modes,
                              rng=rng)


def render_to_terminal(page: RenderedPage) -> str:
    """Format a rendered page for terminal output."""
    lines = [f"── {page.path} " + "─" * max(0, 50 - len(page.path)), page.text]
    if page.links:
        lines.append("")
        for index, (target, label) in enumerate(page.links):
            lines.append(f"  [{index}] {label} -> {target}")
    for note in page.notes:
        lines.append(f"  ! {note}")
    return "\n".join(lines)


def cmd_browse(args, input_fn=input, print_fn=print) -> int:
    """Entry point for ``lightweb browse``."""
    from repro.cli.serve import parse_modes

    proxy = TcpCdnProxy(args.host, args.code_ports, args.data_ports,
                        fetch_budget=args.fetch_budget)
    browser = LightwebBrowser(rng=np.random.default_rng())
    browser.connect(proxy, "main",
                    client_modes=parse_modes(getattr(args, "modes", None)))

    last: Optional[RenderedPage] = None
    for path in args.path:
        last = browser.visit(path)
        print_fn(render_to_terminal(last))

    if not args.interactive:
        browser.close()
        return 0

    print_fn("interactive mode: enter a path, a link number, or 'quit'")
    while True:
        try:
            line = input_fn("lightweb> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in ("quit", "exit", "q"):
            break
        try:
            if line.isdigit() and last is not None:
                last = browser.follow(last, int(line))
            else:
                last = browser.visit(line)
            print_fn(render_to_terminal(last))
        except Exception as exc:  # surface, keep the session alive
            print_fn(f"error: {exc}")
    browser.close()
    return 0


__all__ = ["TcpCdnProxy", "cmd_browse", "render_to_terminal"]
