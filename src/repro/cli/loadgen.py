"""``lightweb loadgen`` — drive a running deployment to its knee.

Resolves the deployment's data endpoints (directory or port flags, the
same two paths ``browse`` supports), sweeps the configured offered
rates with the closed-loop harness, and prints one line per level:

    offered 20.0 rps | goodput 18.7 rps | shed 3 | p50 0.041s p99 0.310s

With ``--out`` the sweep is also written as JSON in the
``BENCH_load.json`` shape, ready for
:meth:`repro.costmodel.capacity.SaturationCurve.from_sweep`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.cli.console import emit
from repro.cli.serve import parse_hostport, parse_modes
from repro.core.discovery import (
    DEFAULT_SECRET,
    CachingResolver,
    DirectoryClient,
    static_directory,
)
from repro.errors import DiscoveryError
from repro.loadgen import LoadgenConfig, sweep_load


def _resolver_from_args(args) -> Any:
    """Directory client or static port-flag shim, like ``browse``."""
    if getattr(args, "directory", None):
        host, port = parse_hostport(args.directory)
        secret = getattr(args, "directory_secret", None)
        return CachingResolver(DirectoryClient(
            host, port,
            secret=secret.encode() if secret else DEFAULT_SECRET))
    if not getattr(args, "data_ports", None):
        raise DiscoveryError(
            "give either --directory HOST:PORT or --data-ports")
    directory = static_directory(
        args.host, {"data": list(args.data_ports)},
        universe=getattr(args, "universe", "main"),
        attrs={"fetch_budget": getattr(args, "fetch_budget", None) or 5},
    )
    return CachingResolver(directory, grace_seconds=None)


def _fmt_quantile(value) -> str:
    return f"{value:.3f}s" if value is not None else "-"


def cmd_loadgen(args) -> int:
    """Entry point for ``lightweb loadgen``."""
    resolver = _resolver_from_args(args)
    config = LoadgenConfig(
        universe=getattr(args, "universe", "main"),
        n_users=args.users,
        duration_seconds=args.duration,
        deadline_seconds=args.deadline,
        gets_per_page=getattr(args, "fetch_budget", None),
        modes=parse_modes(getattr(args, "modes", None)),
        seed=getattr(args, "seed", 0),
    )
    levels = sorted(args.offered)
    reports = sweep_load(resolver, levels, config=config)
    for report in reports:
        emit(f"offered {report.offered_rps:g} rps | "
             f"goodput {report.goodput_rps:.1f} rps | "
             f"ok {report.ok} late {report.late} shed {report.shed} "
             f"err {report.errors} | "
             f"p50 {_fmt_quantile(report.p50_seconds)} "
             f"p99 {_fmt_quantile(report.p99_seconds)}")
    if getattr(args, "out", None):
        payload = {
            "experiment": "lightweb loadgen sweep",
            "mode": reports[0].mode,
            "deadline_seconds": config.deadline_seconds,
            "sweep": [report.to_dict() for report in reports],
        }
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        emit(f"wrote {args.out}")
    return 0


__all__ = ["cmd_loadgen"]
