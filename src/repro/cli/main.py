"""The ``lightweb`` command-line entry point."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="lightweb",
        description="Run and use lightweb deployments (HotNets '23 reproduction).",
    )
    parser.add_argument("--version", action="version",
                        version=f"lightweb-repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="host universes over TCP ZLTP")
    serve.add_argument("spec", nargs="+",
                       help="site spec JSON files to publish")
    serve.add_argument("--universe", default="main")
    serve.add_argument("--data-blob-size", type=int, default=4096)
    serve.add_argument("--fetch-budget", type=int, default=5)
    serve.add_argument("--port-base", type=int, default=0,
                       help="first of the consecutive listener ports "
                            "(0 = ephemeral)")
    serve.add_argument("--state", default="",
                       help="universe archive to load/save (restart "
                            "without re-pushing)")
    serve.add_argument("--modes", default=None,
                       help="comma-separated ZLTP modes to serve, e.g. "
                            "'pir2,lwe,enclave' (default: every "
                            "registered backend)")
    serve.add_argument("--stats-port", type=int, default=None,
                       help="also expose a stats/metrics HTTP endpoint on "
                            "this port (0 = ephemeral)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="extra listeners per endpoint over the same "
                            "logical servers — failover targets for "
                            "resilient clients")
    serve.add_argument("--server-kind", default=None,
                       help="session core for every listener: 'eventloop' "
                            "(one reactor thread multiplexing all "
                            "sessions; default) or 'threaded' "
                            "(thread-per-connection fallback)")
    serve.add_argument("--directory", default=None, metavar="HOST:PORT",
                       help="announce this deployment's endpoints to a "
                            "directory server (`lightweb directory`); "
                            "re-announces periodically with fresh load")
    serve.add_argument("--directory-secret", default=None,
                       help="deployment secret MAC-signing the announce "
                            "records (must match the directory's clients)")
    serve.add_argument("--announce-interval", type=float, default=5.0,
                       help="seconds between re-announces; records expire "
                            "after three missed intervals")
    serve.add_argument("--admission-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="attach a load-shedding admission gate to the "
                            "data servers: GETs whose estimated queueing "
                            "delay would blow this deadline are refused "
                            "with a fast overload error (default: no gate)")
    serve.add_argument("--admission-queue-depth", type=int, default=64,
                       help="the admission gate's hard in-flight cap "
                            "(with --admission-deadline)")
    serve.add_argument("--log-json", action="store_true",
                       help="emit structured JSON logs, one object per line")
    serve.set_defaults(func=_cmd_serve)

    browse = sub.add_parser("browse", help="browse a running deployment")
    browse.add_argument("path", nargs="*", help="lightweb paths to visit")
    browse.add_argument("--host", default="127.0.0.1")
    browse.add_argument("--directory", default=None, metavar="HOST:PORT",
                        help="resolve endpoints through a directory server "
                             "instead of port flags; ports, parties, and "
                             "the fetch budget all come from the announce "
                             "records")
    browse.add_argument("--directory-secret", default=None,
                        help="deployment secret for verifying announce "
                             "records (must match the servers')")
    browse.add_argument("--universe", default="main",
                        help="universe to browse")
    browse.add_argument("--code-ports", type=int, nargs="+", default=None,
                        metavar="PORT",
                        help="code-session ports, one per endpoint of the "
                             "intended mode (two for pir2); unnecessary "
                             "with --directory")
    browse.add_argument("--data-ports", type=int, nargs="+", default=None,
                        metavar="PORT",
                        help="data-session ports, one per endpoint of the "
                             "intended mode (two for pir2); unnecessary "
                             "with --directory")
    browse.add_argument("--fetch-budget", type=int, default=5,
                        help="must match the served universe (ignored with "
                             "--directory: the records carry it)")
    browse.add_argument("--modes", default=None,
                        help="comma-separated modes to offer, e.g. 'lwe' "
                             "(default: every registered backend)")
    browse.add_argument("--code-replica-ports", type=int, nargs="*",
                        default=None, metavar="PORT",
                        help="replica code-session ports to fail over to, "
                             "in the order `serve --replicas` prints them")
    browse.add_argument("--data-replica-ports", type=int, nargs="*",
                        default=None, metavar="PORT",
                        help="replica data-session ports to fail over to, "
                             "in the order `serve --replicas` prints them")
    browse.add_argument("--retries", type=int, default=4,
                        help="reconnect attempts per failed operation "
                             "(0 disables backoff retries)")
    browse.add_argument("--op-deadline", type=float, default=None,
                        help="per-operation deadline in seconds covering "
                             "the whole retry loop (default: none)")
    browse.add_argument("-i", "--interactive", action="store_true")
    browse.set_defaults(func=_cmd_browse)

    stats = sub.add_parser(
        "stats",
        help="fetch a running deployment's stats/metrics snapshot",
        description="Query the stats endpoint a deployment exposes with "
                    "`lightweb serve --stats-port` (text exposition by "
                    "default, raw JSON with --json).",
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=None,
                       help="the deployment's stats port (unnecessary "
                            "with --directory)")
    stats.add_argument("--json", action="store_true",
                       help="print the JSON snapshot instead of text")
    stats.add_argument("--directory", default=None, metavar="HOST:PORT",
                       help="scrape every announced server's sidecar "
                            "and print the merged fleet exposition "
                            "instead of one server's")
    stats.add_argument("--directory-secret", default=None,
                       help="deployment secret for verifying announce "
                            "records (must match the servers')")
    stats.add_argument("--timeout", type=float, default=2.0,
                       help="per-server scrape timeout in seconds "
                            "(--directory mode)")
    stats.set_defaults(func=_cmd_stats)

    top = sub.add_parser(
        "top",
        help="merged observability view of an announced fleet",
        description="Resolve every server announced to a directory, "
                    "scrape each stats sidecar concurrently, and render "
                    "a per-server table plus fleet-merged totals. Dead "
                    "sidecars show as DOWN rows; the scrape never fails "
                    "because part of the fleet did.",
    )
    top.add_argument("--directory", required=True, metavar="HOST:PORT",
                     help="the directory server the fleet announces to")
    top.add_argument("--directory-secret", default=None,
                     help="deployment secret for verifying announce "
                          "records (must match the servers')")
    top.add_argument("--timeout", type=float, default=2.0,
                     help="per-server scrape timeout in seconds")
    top.add_argument("--metrics", action="store_true",
                     help="also print the merged Prometheus-style "
                          "exposition after the table")
    top.add_argument("--json", action="store_true",
                     help="print the raw fleet snapshot as JSON")
    top.set_defaults(func=_cmd_top)

    trace = sub.add_parser(
        "trace",
        help="read a deployment's flight recorder",
        description="Fetch /debug/traces.json from the stats sidecar "
                    "and render the retained request trace trees: the "
                    "recent ring plus the always-kept slow and errored "
                    "exemplars.",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, required=True,
                       help="the deployment's stats port")
    trace.add_argument("--timeout", type=float, default=10.0,
                       help="fetch timeout in seconds")
    trace.add_argument("--json", action="store_true",
                       help="print the raw export instead of trees")
    trace.set_defaults(func=_cmd_trace)

    directory = sub.add_parser(
        "directory",
        help="run a server-discovery directory",
        description="Serve the discovery directory deployments announce "
                    "to (`serve --directory`) and clients resolve "
                    "endpoints from (`browse --directory`). Records are "
                    "MAC-signed with the deployment secret and expire by "
                    "TTL when a server stops re-announcing.",
    )
    directory.add_argument("--host", default="127.0.0.1")
    directory.add_argument("--port", type=int, default=0,
                           help="listen port (0 = ephemeral)")
    directory.add_argument("--secret", default=None,
                           help="deployment secret announce records must "
                                "be signed with")
    directory.add_argument("--log-json", action="store_true",
                           help="emit structured JSON logs")
    directory.set_defaults(func=_cmd_directory)

    loadgen = sub.add_parser(
        "loadgen",
        help="closed-loop load harness against a running deployment",
        description="Replay zipf-skewed browsing sessions against a live "
                    "deployment's data sessions at one or more offered "
                    "rates, under per-request deadlines, and report "
                    "offered load, goodput, shed count, and latency "
                    "quantiles per level (the E16 saturation curve).",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--directory", default=None, metavar="HOST:PORT",
                         help="resolve endpoints through a directory "
                              "server; ports, parties, and the fetch "
                              "budget all come from the announce records")
    loadgen.add_argument("--directory-secret", default=None,
                         help="deployment secret for verifying announce "
                              "records (must match the servers')")
    loadgen.add_argument("--data-ports", type=int, nargs="+", default=None,
                         metavar="PORT",
                         help="data-session ports, one per endpoint of "
                              "the intended mode; unnecessary with "
                              "--directory")
    loadgen.add_argument("--universe", default="main")
    loadgen.add_argument("--offered", type=float, nargs="+",
                         default=[5.0, 10.0, 20.0], metavar="RPS",
                         help="offered page-view rates to sweep, in "
                              "requests/second (one report per level)")
    loadgen.add_argument("--users", type=int, default=4,
                         help="concurrent closed-loop users")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="seconds of arrivals per offered level")
    loadgen.add_argument("--deadline", type=float, default=1.0,
                         help="per-request deadline in seconds; requests "
                              "finishing over it do not count as goodput")
    loadgen.add_argument("--fetch-budget", type=int, default=None,
                         help="slots per page view (default: the "
                              "deployment's announced fetch budget)")
    loadgen.add_argument("--modes", default=None,
                         help="comma-separated modes to offer, e.g. "
                              "'pir2' (default: every registered backend)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="workload determinism root")
    loadgen.add_argument("--out", default=None, metavar="PATH",
                         help="also write the sweep as JSON "
                              "(BENCH_load.json shape)")
    loadgen.set_defaults(func=_cmd_loadgen)

    costs = sub.add_parser("costs", help="print the paper's cost analytics")
    costs.add_argument("--measure", action="store_true",
                       help="also benchmark a shard on this machine")
    costs.set_defaults(func=_cmd_costs)

    demo = sub.add_parser("demo", help="self-contained in-process demo")
    demo.set_defaults(func=_cmd_demo)

    lint = sub.add_parser(
        "lint",
        help="run the zero-leakage static analyzer",
        description="Check source trees against the privacy discipline: "
                    "secret-taint rules (no secret-dependent branches, "
                    "comparisons, or message sizes), guarded-by lock "
                    "discipline, owned-by single-thread ownership, and "
                    "mode-server wire shape.",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to analyze (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="emit a machine-readable JSON report")
    lint.add_argument("--baseline", default=None,
                      help="JSON baseline of accepted findings")
    lint.add_argument("--intra-only", action="store_true",
                      help="skip the whole-program engine (per-module "
                           "rules only, the pre-PR-7 behaviour)")
    lint.add_argument("--cache", default="",
                      help="path to an on-disk summary cache for the "
                           "whole-program engine (created if missing)")
    lint.set_defaults(func=_cmd_lint)
    return parser


def _cmd_serve(args) -> int:
    from repro.cli.serve import cmd_serve

    return cmd_serve(args)


def _cmd_browse(args) -> int:
    from repro.cli.browse import cmd_browse

    return cmd_browse(args)


def _cmd_directory(args) -> int:
    from repro.cli.directory import cmd_directory

    return cmd_directory(args)


def _cmd_stats(args) -> int:
    from repro.cli.stats import cmd_stats

    return cmd_stats(args)


def _cmd_top(args) -> int:
    from repro.cli.top import cmd_top

    return cmd_top(args)


def _cmd_trace(args) -> int:
    from repro.cli.trace import cmd_trace

    return cmd_trace(args)


def _cmd_loadgen(args) -> int:
    from repro.cli.loadgen import cmd_loadgen

    return cmd_loadgen(args)


def _cmd_costs(args) -> int:
    from repro.cli.console import emit
    from repro.costmodel.billing import (
        UserProfile,
        fi_bytes_cost,
        fi_page_cost,
        monthly_user_cost,
        zltp_vs_fi_ratio,
    )
    from repro.costmodel.datasets import C4, KIB, WIKIPEDIA
    from repro.costmodel.estimator import (
        PAPER_SHARD,
        estimate_deployment,
        measure_shard,
    )

    shards = [("paper", PAPER_SHARD)]
    if args.measure:
        shards.append(("measured", measure_shard(domain_bits=12,
                                                 blob_bytes=4096,
                                                 n_requests=2)))
    for label, shard in shards:
        emit(f"Table 2 ({label} shard constants):")
        for dataset in (C4, WIKIPEDIA):
            row = estimate_deployment(dataset, shard=shard).row()
            emit(f"  {row['dataset']:<10} {row['vcpu_sec']:>8.1f} vCPU-s  "
                 f"${row['request_cost_usd']:.5f}/req  "
                 f"{row['communication_kib']:.1f} KiB")
    c4 = estimate_deployment(C4)
    emit(f"monthly user cost (50 pages/day x 5 GETs): "
         f"${monthly_user_cost(c4.request_cost_usd, UserProfile()):.2f}")
    emit(f"Fi anchors: NYT homepage ${fi_page_cost():.3f}; "
         f"4 KiB ${fi_bytes_cost(4 * KIB):.6f}; "
         f"ZLTP/Fi = {zltp_vs_fi_ratio(c4.request_cost_usd):.0f}x")
    return 0


def _cmd_lint(args) -> int:
    from repro.cli.lint import cmd_lint

    return cmd_lint(args)


def _cmd_demo(args) -> int:
    import numpy as np

    from repro.cli.console import emit
    from repro.core.lightweb.browser import LightwebBrowser
    from repro.core.lightweb.cdn import Cdn
    from repro.core.lightweb.publisher import Publisher
    from repro.core.zltp.modes import MODE_PIR2

    cdn = Cdn("demo-cdn", modes=[MODE_PIR2])
    cdn.create_universe("demo", data_domain_bits=11, code_domain_bits=7,
                        fetch_budget=3)
    publisher = Publisher("demo")
    site = publisher.site("demo.example")
    site.add_page("/", "It works. [[demo.example/why|why this is private]]")
    site.add_page("/why", {"title": "Why", "body": (
        "Every fetch was a DPF-keyed private GET; the server saw only "
        "pseudorandom keys and did the same scan either way.")})
    publisher.push(cdn, "demo")
    browser = LightwebBrowser(rng=np.random.default_rng())
    browser.connect(cdn, "demo")
    page = browser.visit("demo.example")
    emit(page.text)
    page = browser.follow(page, 0)
    emit(page.text)
    counts = browser.gets_for_last_visit()
    emit(f"\n(the last visit cost {counts['data-get']} data GETs — "
         f"the fixed budget)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
