"""Command-line tooling for running lightweb deployments.

- ``lightweb serve`` — host universes from site specs behind real TCP
  ZLTP listeners.
- ``lightweb browse`` — a terminal lightweb client against a running
  deployment.
- ``lightweb costs`` — the paper's cost planner (Table 2, §4, §5.2).
- ``lightweb demo`` — a self-contained in-process walk-through.

Entry point: :func:`repro.cli.main.main` (also ``python -m repro.cli``).
"""


def main(argv=None) -> int:
    """Dispatch to :func:`repro.cli.main.main` (imported lazily so that
    ``python -m repro.cli.main`` does not double-import the module)."""
    from repro.cli.main import main as real_main

    return real_main(argv)


__all__ = ["main"]
