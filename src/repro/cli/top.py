"""``lightweb top`` — one merged observability view of the whole fleet.

Resolves every announced server from a directory (``lightweb
directory``), scrapes each endpoint's stats sidecar concurrently, and
renders a per-server table plus the fleet-merged metrics snapshot.
Dead sidecars render as ``DOWN`` rows; the scrape itself never fails
because part of the fleet did.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.cli.console import emit
from repro.core.discovery import DEFAULT_SECRET, DirectoryClient
from repro.errors import DiscoveryError, TransportError
from repro.obs.fleet import (
    FleetSnapshot,
    render_fleet,
    scrape_fleet,
    targets_from_records,
)


def directory_fleet_snapshot(directory: str,
                             secret: Optional[str] = None,
                             timeout: Optional[float] = 2.0
                             ) -> FleetSnapshot:
    """Resolve the announced fleet and scrape every stats sidecar.

    Args:
        directory: the directory server, as ``HOST:PORT``.
        secret: deployment secret verifying the announce records
            (default: the dev secret).
        timeout: per-server scrape timeout in seconds.

    Raises:
        ValueError: ``directory`` is not ``HOST:PORT``.
        TransportError: the directory itself is unreachable.
        DiscoveryError: a record fails signature verification.
    """
    from repro.cli.serve import parse_hostport

    host, port = parse_hostport(directory, what="--directory")
    client = DirectoryClient(
        host, port,
        secret=secret.encode() if secret else DEFAULT_SECRET)
    records = client.records()
    return scrape_fleet(targets_from_records(records), timeout=timeout)


def cmd_top(args) -> int:
    """Entry point for ``lightweb top``."""
    try:
        fleet = directory_fleet_snapshot(
            args.directory, secret=args.directory_secret,
            timeout=args.timeout)
    except (TransportError, DiscoveryError, ValueError) as exc:
        emit(f"top error: {exc}")
        return 1
    if args.json:
        emit(json.dumps(fleet.as_dict(), indent=2))
        return 0
    emit(render_fleet(fleet, metrics_text=args.metrics))
    return 0


__all__ = ["directory_fleet_snapshot", "cmd_top"]
