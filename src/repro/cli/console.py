"""The one sanctioned CLI output channel.

Everything a ``lightweb`` subcommand shows the user goes through
:func:`emit`; diagnostics and server events go through :mod:`repro.obs.
logs` loggers instead. Keeping user-facing output behind a single seam
(rather than bare ``print`` calls scattered through ``src/``) is what
lets the hygiene test assert "no bare prints" mechanically, and keeps
command output redirectable in tests without monkey-patching builtins.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO


def emit(text: str = "", stream: Optional[TextIO] = None) -> None:
    """Write one line of user-facing CLI output (stdout by default)."""
    out = stream if stream is not None else sys.stdout
    out.write(text + "\n")


__all__ = ["emit"]
