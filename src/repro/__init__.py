"""repro — a full Python reproduction of *Lightweb: Private web browsing
without all the baggage* (Dauterman & Corrigan-Gibbs, HotNets '23).

The package is organised as the paper is:

- :mod:`repro.core.zltp` — the zero-leakage transfer protocol (paper §2).
- :mod:`repro.core.lightweb` — the lightweb architecture (paper §3-§4).
- :mod:`repro.crypto` — DPFs, PRGs, LWE, hashing, AEAD (the building blocks).
- :mod:`repro.pir` — two-server and single-server private information
  retrieval, batching and sharding (paper §5).
- :mod:`repro.oram` — the simulated hardware-enclave + Path-ORAM mode.
- :mod:`repro.netsim` — network simulation and traffic-analysis adversaries.
- :mod:`repro.costmodel` — the paper's cost analytics (Table 2, §4, §5.2).
- :mod:`repro.workloads` — synthetic corpora and browsing workloads.
- :mod:`repro.analytics` — private aggregate statistics for billing (§4).
"""

from repro._version import __version__

__all__ = ["__version__"]
