"""Static analysis enforcing the zero-leakage discipline (``lightweb lint``).

Three rule families over the crypto/PIR/ORAM/ZLTP layers:

- secret-taint (``secret-branch``, ``secret-compare``, ``secret-len``) —
  :mod:`repro.analysis.taint`;
- lock discipline for ``# guarded-by:`` state (``guard-write``) —
  :mod:`repro.analysis.lockcheck`;
- backend-server answer shape (``wire-shape``, coverage derived from the
  :mod:`repro.core.backend` registry) plus registration enforcement
  (``backend-registry``) — :mod:`repro.analysis.rules`.

Run as ``python -m repro.analysis <paths>`` or ``lightweb lint``; exit
codes are 0 (clean), 1 (findings), 2 (internal error).
"""

from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    Finding,
)
from repro.analysis.rules import (
    AnalysisResult,
    analyze_paths,
    analyze_source,
    registry_server_names,
)
from repro.analysis.taint import ModuleSources

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL",
    "Finding",
    "AnalysisResult",
    "ModuleSources",
    "analyze_paths",
    "analyze_source",
    "registry_server_names",
]
