"""``python -m repro.analysis`` — the zero-leakage linter CLI."""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import List, Optional

from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    render_json,
    render_text,
)
from repro.analysis.rules import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Zero-leakage static analyzer: secret taint, lock "
                    "discipline, wire shape.",
    )
    parser.add_argument("paths", nargs="+",
                        help="Python files or directories to analyze")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    parser.add_argument("--baseline", default=None,
                        help="JSON baseline of accepted findings")
    return parser


def _write_line(text: str) -> None:
    # Local writer: this module must stay importable without repro.cli,
    # so it does not borrow the CLI's emit() seam.
    sys.stdout.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analyzer; returns 0 clean / 1 findings / 2 internal error."""
    args = build_parser().parse_args(argv)
    try:
        result = analyze_paths(args.paths, baseline_path=args.baseline)
        if args.json:
            _write_line(render_json(result.findings, result.suppressed,
                                    result.baselined, len(result.files)))
        else:
            _write_line(render_text(result.findings, len(result.suppressed),
                                    len(result.baselined),
                                    len(result.files)))
    except Exception:  # noqa: BLE001 - the exit-code contract wants 2 here
        traceback.print_exc()
        return EXIT_INTERNAL
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
