"""``python -m repro.analysis`` — the zero-leakage linter CLI."""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    render_json,
    render_text,
)
from repro.analysis.rules import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    """Argparse surface for the standalone analyzer entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Zero-leakage static analyzer: secret taint, lock "
                    "discipline, wire shape, plus whole-program "
                    "interprocedural rules (taint flows, lock-order "
                    "cycles, thread escapes, caller-side constant-time).",
    )
    parser.add_argument("paths", nargs="+",
                        help="Python files or directories to analyze")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    parser.add_argument("--baseline", default=None,
                        help="JSON baseline of accepted findings")
    parser.add_argument("--intra-only", action="store_true",
                        help="skip the whole-program engine (per-module "
                             "rules only)")
    parser.add_argument("--cache", default="",
                        help="on-disk summary cache for the whole-program "
                             "engine (created if missing)")
    return parser


def _write_line(text: str) -> None:
    # Local writer: this module must stay importable without repro.cli,
    # so it does not borrow the CLI's emit() seam.
    sys.stdout.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analyzer; returns 0 clean / 1 findings / 2 internal error."""
    args = build_parser().parse_args(argv)
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        _write_line(f"lint error: no such path: {', '.join(missing)}")
        return EXIT_INTERNAL
    try:
        result = analyze_paths(
            args.paths, baseline_path=args.baseline,
            whole_program=not args.intra_only,
            cache_path=args.cache,
        )
        if args.json:
            _write_line(render_json(result.findings, result.suppressed,
                                    result.baselined, len(result.files)))
        else:
            _write_line(render_text(result.findings, len(result.suppressed),
                                    len(result.baselined),
                                    len(result.files)))
    except Exception as exc:  # noqa: BLE001 - the exit-code contract wants 2
        _write_line(f"lint internal error: {exc}")
        return EXIT_INTERNAL
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
