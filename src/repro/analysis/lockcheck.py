"""Lock-discipline checking for ``# guarded-by:`` annotated state.

PR 1 introduced real threads (the scan engine's fan-out pool, the TCP
server's connection handlers); their shared state is protected only by
convention. This checker makes the convention mechanical:

- An attribute initialised on a line carrying ``# guarded-by: <lock>``
  (``self._threads = []  # guarded-by: _lock``) may only be *written* —
  assigned, augmented, or mutated through a mutating method call like
  ``.append()``/``.discard()`` — inside a ``with`` block holding a lock
  of that name. Lock matching is by final attribute name, so
  ``with self._lock:``, ``with self._server._stats_lock:``, and a bare
  ``with _shared_lock:`` all count for their respective names.
- Module-level globals annotated the same way are held to the same rule.
- ``__init__`` bodies are exempt (no concurrent aliases exist yet), as
  are the declaration lines themselves.

The event-loop session core (PR 6) adds a second ownership discipline:
reactor state has no lock at all — it is single-threaded *by
construction*, touched only from the reactor thread. For that state the
``with``-block rule is the wrong invariant, so a second annotation makes
the actual one mechanical:

- An attribute initialised on a line carrying ``# owned-by: <prefix>``
  (``self._conns = {}  # owned-by: _react``) may only be written inside
  methods whose name starts with that prefix (plus ``__init__``). Code
  that wants to touch reactor state from another thread must go through
  the wake-up pipe and a ``_react_*`` method — exactly what the checker
  forces.

Reads are deliberately not flagged: the codebase tolerates racy reads of
monotonic counters, but every read-modify-write must be serialized.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.report import Finding

#: Method calls that mutate their receiver in place.
MUTATORS = {
    "append", "add", "discard", "remove", "pop", "extend", "clear",
    "update", "insert", "setdefault", "popitem", "appendleft",
}

_ATTR_DECL_RE = re.compile(
    r"self\.(\w+)\s*(?::[^=]*)?=.*#\s*guarded-by:\s*(\w+)"
)
_GLOBAL_DECL_RE = re.compile(
    r"^(\w+)\s*(?::[^=]*)?=.*#\s*guarded-by:\s*(\w+)"
)
_ATTR_OWNED_RE = re.compile(
    r"self\.(\w+)\s*(?::[^=]*)?=.*#\s*owned-by:\s*(\w+)"
)


def _final_name(expr: ast.expr) -> Optional[str]:
    """The last dotted component of a name/attribute chain."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


class LockCheck:
    """Checks one module's guarded-by discipline."""

    def __init__(self, tree: ast.Module, source: str, path: str):
        self.tree = tree
        self.path = path
        self.attr_guards: Dict[str, str] = {}
        self.global_guards: Dict[str, str] = {}
        self.attr_owners: Dict[str, str] = {}
        self.decl_lines: Set[int] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            attr = _ATTR_DECL_RE.search(text)
            if attr is not None:
                self.attr_guards[attr.group(1)] = attr.group(2)
                self.decl_lines.add(lineno)
                continue
            owned = _ATTR_OWNED_RE.search(text)
            if owned is not None:
                self.attr_owners[owned.group(1)] = owned.group(2)
                self.decl_lines.add(lineno)
                continue
            glob = _GLOBAL_DECL_RE.match(text)
            if glob is not None:
                self.global_guards[glob.group(1)] = glob.group(2)
                self.decl_lines.add(lineno)
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        if not self.attr_guards and not self.global_guards \
                and not self.attr_owners:
            return []
        for qualname, node in self._functions():
            if node.name == "__init__":
                continue
            self._walk(node.body, frozenset(), qualname, node.lineno)
        return self.findings

    def _functions(self):
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.name, node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield f"{node.name}.{item.name}", item

    # -- traversal -----------------------------------------------------

    def _walk(self, stmts: Sequence[ast.stmt], held: frozenset,
              symbol: str, def_line: int) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.With):
                inner = set(held)
                for item in stmt.items:
                    name = _final_name(item.context_expr)
                    if name is not None:
                        inner.add(name)
                self._walk(stmt.body, frozenset(inner), symbol, def_line)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._check_expr(stmt.test, held, symbol, def_line)
                self._walk(stmt.body, held, symbol, def_line)
                self._walk(stmt.orelse, held, symbol, def_line)
            elif isinstance(stmt, ast.For):
                self._check_expr(stmt.iter, held, symbol, def_line)
                self._walk(stmt.body, held, symbol, def_line)
                self._walk(stmt.orelse, held, symbol, def_line)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, held, symbol, def_line)
                for handler in stmt.handlers:
                    self._walk(handler.body, held, symbol, def_line)
                self._walk(stmt.orelse, held, symbol, def_line)
                self._walk(stmt.finalbody, held, symbol, def_line)
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    self._check_target(target, stmt, held, symbol, def_line)
                if getattr(stmt, "value", None) is not None:
                    self._check_expr(stmt.value, held, symbol, def_line)
            elif isinstance(stmt, ast.Expr):
                self._check_expr(stmt.value, held, symbol, def_line)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self._check_expr(stmt.value, held, symbol, def_line)
            # Nested defs start with an empty lock context of their own;
            # conservatively skip rather than assume inherited locks.

    def _check_target(self, target: ast.expr, stmt: ast.stmt, held: frozenset,
                      symbol: str, def_line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, stmt, held, symbol, def_line)
            return
        if isinstance(target, (ast.Subscript, ast.Starred)):
            # An item store mutates the container exactly like .append().
            self._check_target(target.value, stmt, held, symbol, def_line)
            return
        if isinstance(target, ast.Attribute):
            guard = self.attr_guards.get(target.attr)
            name = f"self.{target.attr}"
            self._require_owner(self.attr_owners.get(target.attr), name,
                                stmt, symbol, def_line)
        elif isinstance(target, ast.Name):
            guard = self.global_guards.get(target.id)
            name = target.id
        else:
            return
        self._require(guard, name, stmt, held, symbol, def_line)

    def _check_expr(self, expr: ast.expr, held: frozenset,
                    symbol: str, def_line: int) -> None:
        """Flag mutating method calls on guarded state anywhere in ``expr``."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in MUTATORS:
                continue
            base = _final_name(func.value)
            if base is None:
                continue
            guard = self.attr_guards.get(base) or self.global_guards.get(base)
            self._require(guard, base, node, held, symbol, def_line)
            self._require_owner(self.attr_owners.get(base), base, node,
                                symbol, def_line)

    def _require(self, guard: Optional[str], name: str, node: ast.AST,
                 held: frozenset, symbol: str, def_line: int) -> None:
        lineno = getattr(node, "lineno", 0)
        if guard is None or lineno in self.decl_lines or guard in held:
            return
        self.findings.append(Finding(
            rule="guard-write", path=self.path, line=lineno,
            col=getattr(node, "col_offset", 0), symbol=symbol,
            message=f"write to {name} (guarded-by: {guard}) outside "
                    f"'with {guard}' block",
            def_line=def_line,
        ))

    def _require_owner(self, owner: Optional[str], name: str, node: ast.AST,
                       symbol: str, def_line: int) -> None:
        """Owned state may only be written by the owning method family."""
        lineno = getattr(node, "lineno", 0)
        if owner is None or lineno in self.decl_lines:
            return
        method = symbol.rsplit(".", 1)[-1]
        if method == "__init__" or method.startswith(owner):
            return
        self.findings.append(Finding(
            rule="owner-write", path=self.path, line=lineno,
            col=getattr(node, "col_offset", 0), symbol=symbol,
            message=f"write to {name} (owned-by: {owner}) from "
                    f"non-owning method {method!r}",
            def_line=def_line,
        ))


__all__ = ["LockCheck", "MUTATORS"]
