"""Rule configuration and the analyzer entry point.

``DEFAULT_SOURCES`` is the repo's secret-source inventory — the list
DESIGN.md documents. Sources are declared per module (matched by path
glob) so that e.g. ``slot`` is a secret inside the ZLTP *client* (the
querier, whose slot choice must not leak) but public inside the server
(which legitimately branches on the slots it was openly asked to
store at publish time).

The wire-shape rule also lives here: every ``answer``/``answer_batch``
on a registered backend server class (registry membership via
:func:`repro.core.backend.registered_server_class_names`, with the
legacy ``*ModeServer`` name pattern kept as a safety net) must return
through an approved fixed-slot constructor (``pack_u64``, ``aead.seal``,
delegation to the PIR core or to ``answer`` itself) — never raw
variable-length bytes it assembled ad hoc, which is how a
secret-dependent response size would sneak onto the wire. The companion
``backend-registry`` rule closes the rename loophole from the other
side: a class in the ``repro`` tree *shaped* like a mode server
(defining both ``answer`` and ``hello_params``) that is not registered
is itself a finding, so an ad-hoc server can never silently drop out of
wire-shape coverage.

The taint walk also drives the ``telemetry-leak`` rule (sinks in
:mod:`repro.analysis.taint`): observability calls — ``span(...)``,
``annotate``/``inc``/``set``/``observe``/``labels``, logger methods —
must never receive a secret-tainted value, so the telemetry layer added
for the paper's performance accounting cannot itself become a side
channel.

:func:`analyze_paths` ties the rule families together with pragma
and baseline suppression and returns a :class:`AnalysisResult`.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Sequence

from repro.analysis.lockcheck import LockCheck
from repro.analysis.report import (
    Finding,
    Pragma,
    apply_baseline,
    apply_pragmas,
    load_baseline,
    parse_pragmas,
)
from repro.analysis.taint import ModuleSources, ModuleTaint

#: Per-module secret-source declarations (path glob → sources).
DEFAULT_SOURCES: Dict[str, ModuleSources] = {
    # DPF dealing: the point alpha and the payload beta are the client's
    # query secrets; fresh seeds are secret until split into keys.
    "*/crypto/dpf.py": ModuleSources(
        params={"gen_dpf": ["alpha", "value"]},
        source_calls={"random_seed"},
    ),
    # AEAD: keys and plaintexts never drive control flow.
    "*/crypto/aead.py": ModuleSources(
        params={"seal": ["key", "plaintext"], "open_sealed": ["key"],
                "_subkeys": ["key"], "_tag": ["mac_key"]},
        source_calls={"generate_key"},
    ),
    "*/crypto/keys.py": ModuleSources(
        params={"_derive": ["key"], "__init__": ["master_secret"]},
        secret_attrs={"_master"},
    ),
    "*/crypto/chacha.py": ModuleSources(
        params={"chacha20_block": ["keys"], "chacha20_stream": ["key"],
                "xor_stream": ["key", "data"]},
    ),
    # Merkle verification runs client-side over fetched secret content.
    "*/crypto/merkle.py": ModuleSources(
        params={"leaf_hash": ["data"], "verify_proof": ["data"]},
    ),
    # Cuckoo: client-side probe derivation must be key-oblivious.
    "*/crypto/cuckoo.py": ModuleSources(
        params={"CuckooTable.insert": ["key"],
                "CuckooTable.candidates": ["key"]},
    ),
    "*/crypto/lwe.py": ModuleSources(
        params={"LwePirClient.query": ["column"]},
    ),
    "*/crypto/hashing.py": ModuleSources(
        params={"KeyedHash.slot": ["key"]},
    ),
    # PIR clients: the queried index is the whole secret.
    "*/pir/twoserver.py": ModuleSources(
        params={"TwoServerPirClient.query": ["index"],
                "TwoServerPirClient.fetch": ["index"]},
    ),
    "*/pir/keyword.py": ModuleSources(
        params={"key_digest": ["key"], "decode_record": ["key"],
                "KeywordPirClient.candidate_slots": ["key"],
                "KeywordPirClient.get": ["key"]},
    ),
    # ORAM: the logical address is the secret the trace must not reflect.
    "*/oram/path_oram.py": ModuleSources(
        params={"PathOram.access": ["address"], "PathOram.read": ["address"],
                "PathOram.write": ["address"], "PathOram.update": ["address"],
                "DictPositionMap.get_and_set": ["address"]},
    ),
    "*/oram/position_map.py": ModuleSources(
        params={"get_and_set": ["address"]},
    ),
    "*/oram/enclave.py": ModuleSources(
        params={"oblivious_read": ["address"], "oblivious_write": ["address"],
                "EnclaveZltpStore.get": ["key"]},
    ),
    # ZLTP client endpoint: requested slots/keys are secrets.
    "*/core/zltp/client.py": ModuleSources(
        params={"ZltpClient.get_slot": ["slot"],
                "ZltpClient.get_slots": ["slots"],
                "ZltpClient.candidate_slots": ["key"],
                "ZltpClient.get": ["key"]},
    ),
    # Mode clients build the query payloads from the secret slot.
    "*/core/zltp/modes.py": ModuleSources(
        params={"queries_for_slot": ["slot"]},
    ),
}

#: Legacy name pattern for mode-server classes: kept as a safety net so
#: an unimported (hence unregistered) server class is still checked.
_MODE_SERVER_RE = re.compile(r".*ModeServer$")
_ANSWER_METHODS = {"answer", "answer_batch"}

#: Methods that make a class "shaped" like a backend server: defining
#: both is the wire-facing surface the registry tracks.
_SERVER_SHAPE_METHODS = {"answer", "hello_params"}

#: Calls a mode-server answer path may return through: the fixed-slot
#: serializers and delegation to the PIR core / the sibling method.
APPROVED_ANSWER_CALLS = {"pack_u64", "seal", "answer", "answer_batch"}


def registry_server_names() -> set:
    """Class names of every registered backend server (live registry).

    Imported lazily so the analyzer stays usable on trees that do not
    ship the backend registry at all.
    """
    try:
        from repro.core.backend import registered_server_class_names
    except ImportError:  # pragma: no cover - analyzer used standalone
        return set()
    return set(registered_server_class_names())


class WireShape:
    """Check that backend-server answer paths use fixed-slot helpers.

    Coverage is registry membership first: any top-level class whose name
    matches a registered backend's server class is checked, wherever it
    lives and whatever it is called. The old ``*ModeServer`` name pattern
    is retained as a safety net for classes the current process never
    imported. Classes in the ``repro`` tree that are *shaped* like a mode
    server but registered nowhere get a ``backend-registry`` finding
    instead — an ad-hoc server must not exist outside the registry's
    (and therefore this rule's) sight.
    """

    def __init__(self, tree: ast.Module, path: str):
        self.tree = tree
        self.path = path
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        registered = registry_server_names()
        for node in self.tree.body:
            if not isinstance(node, ast.ClassDef) or self._is_protocol(node):
                continue
            if node.name in registered or _MODE_SERVER_RE.match(node.name):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef) and \
                            item.name in _ANSWER_METHODS:
                        self._check_method(node.name, item)
            elif self._server_shaped(node) and self._in_repro_tree():
                self.findings.append(Finding(
                    rule="backend-registry", path=self.path,
                    line=node.lineno, col=node.col_offset,
                    symbol=node.name,
                    message="mode-server-shaped class (answer + "
                            "hello_params) is not registered with "
                            "repro.core.backend — register it via "
                            "declare_backend so wire-shape coverage "
                            "cannot be silently dropped",
                    def_line=node.lineno,
                ))
        return self.findings

    @staticmethod
    def _is_protocol(node: ast.ClassDef) -> bool:
        """Whether the class is a typing Protocol (interface, not a server)."""
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else \
                base.attr if isinstance(base, ast.Attribute) else None
            if name == "Protocol":
                return True
        return False

    @staticmethod
    def _server_shaped(node: ast.ClassDef) -> bool:
        """Whether the class defines the wire-facing server surface."""
        methods = {item.name for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        return _SERVER_SHAPE_METHODS <= methods

    def _in_repro_tree(self) -> bool:
        """Whether this module is part of the shipped ``repro`` package."""
        normalized = self.path.replace(os.sep, "/")
        return "/repro/" in normalized or normalized.startswith("repro/")

    def _check_method(self, cls: str, func: ast.FunctionDef) -> None:
        approved_names = set()
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and \
                    self._approved(stmt.value, approved_names):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        approved_names.add(target.id)
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if not self._approved(stmt.value, approved_names):
                    self.findings.append(Finding(
                        rule="wire-shape", path=self.path,
                        line=stmt.lineno, col=stmt.col_offset,
                        symbol=f"{cls}.{func.name}",
                        message="answer path must return through a "
                                "fixed-slot helper (pack_u64/seal/PIR "
                                "answer), not ad-hoc bytes",
                        def_line=func.lineno,
                    ))

    def _approved(self, expr: ast.expr, approved_names: set) -> bool:
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else None
            return name in APPROVED_ANSWER_CALLS
        if isinstance(expr, ast.ListComp):
            return self._approved(expr.elt, approved_names)
        if isinstance(expr, (ast.List, ast.Tuple)):
            return all(self._approved(e, approved_names) for e in expr.elts)
        if isinstance(expr, ast.Name):
            return expr.id in approved_names
        return False


def sources_for(path: str,
                overrides: Optional[Dict[str, ModuleSources]] = None,
                ) -> ModuleSources:
    """Resolve the source declarations for a module path."""
    table = DEFAULT_SOURCES if overrides is None else overrides
    normalized = path.replace(os.sep, "/")
    for pattern, sources in table.items():
        if fnmatch(normalized, pattern):
            return sources
    return ModuleSources()


def analyze_source(source: str, path: str,
                   sources: Optional[ModuleSources] = None,
                   ) -> List[Finding]:
    """Run all three rule families over one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="parse-error", path=path,
                        line=exc.lineno or 0, col=exc.offset or 0,
                        symbol="<module>", message=str(exc.msg))]
    if sources is None:
        sources = sources_for(path)
    findings: List[Finding] = []
    findings.extend(ModuleTaint(tree, source, path, sources).run())
    findings.extend(LockCheck(tree, source, path).run())
    findings.extend(WireShape(tree, path).run())
    return findings


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    files: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)  # unsuppressed
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return sorted(set(out))


def analyze_paths(paths: Sequence[str],
                  baseline_path: Optional[str] = None,
                  overrides: Optional[Dict[str, ModuleSources]] = None,
                  whole_program: bool = True,
                  cache_path: str = "",
                  ) -> AnalysisResult:
    """Analyze files/directories, applying pragmas and the baseline.

    By default the whole-program engine runs on top of the per-module
    rules: cross-module taint flows, lock-order cycles, thread escapes,
    and caller-side constant-time findings are merged in (deduplicated
    positionally against the intra findings, which keep their plainer
    messages). ``whole_program=False`` restores the PR-2 behaviour;
    ``cache_path`` names an on-disk summary cache (see
    :mod:`repro.analysis.wholeprogram.cache`).
    """
    result = AnalysisResult()
    raw: List[Finding] = []
    pragmas_by_path: Dict[str, List[Pragma]] = {}
    file_sources: List[tuple] = []
    for filename in collect_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        result.files.append(filename)
        file_sources.append((filename, source))
        pragmas, bad_pragmas = parse_pragmas(source, filename)
        pragmas_by_path[filename] = pragmas
        raw.extend(bad_pragmas)
        module_sources = None if overrides is None else \
            sources_for(filename, overrides)
        raw.extend(analyze_source(source, filename, sources=module_sources))
    if whole_program and file_sources:
        from repro.analysis.wholeprogram.engine import analyze_project
        seen = {(f.rule, f.path, f.line, f.col) for f in raw}
        for finding in analyze_project(
                file_sources,
                lambda path: sources_for(path, overrides),
                cache_path=cache_path):
            if (finding.rule, finding.path, finding.line,
                    finding.col) not in seen:
                raw.append(finding)
    kept, result.suppressed = apply_pragmas(raw, pragmas_by_path)
    entries, bad_baseline = load_baseline(baseline_path)
    kept.extend(bad_baseline)
    result.findings, result.baselined = apply_baseline(kept, entries)
    return result


__all__ = [
    "DEFAULT_SOURCES",
    "APPROVED_ANSWER_CALLS",
    "registry_server_names",
    "WireShape",
    "AnalysisResult",
    "sources_for",
    "analyze_source",
    "analyze_paths",
    "collect_files",
]
