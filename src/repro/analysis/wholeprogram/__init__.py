"""Whole-program analysis: call graph, summaries, interprocedural rules.

PR 2's analyzer stops at module boundaries: a secret that flows
``crypto/dpf.py → pir/engine.py → obs/trace.py`` is invisible to the
per-module taint walk, a lock-order inversion between two modules never
shows up in either one alone, and reactor state handed to a thread in a
closure defeats the ``owned-by:`` check entirely. This package closes
those gaps with a project-wide pipeline:

1. :mod:`~repro.analysis.wholeprogram.callgraph` parses every module
   once, resolves imports (absolute, aliased, relative), binds class
   methods through cross-module inheritance, and resolves call sites to
   fully-qualified function ids — a project :class:`Project` plus a
   symbol table the later phases share.
2. :mod:`~repro.analysis.wholeprogram.summaries` runs a *parametric*
   taint walk per function (taint expressed as a function of the
   caller's arguments, not a fixed bit), collecting per-function
   summaries: taints-return, taints-params, conditional observation
   points (branch / compare / serialization / telemetry), lock
   acquisitions with held-set context, and thread/process escape sites.
   Summaries iterate to a fixpoint so chains of helpers converge.
3. :mod:`~repro.analysis.wholeprogram.interproc` propagates the declared
   secret-source inventory across resolved call edges to a fixpoint and
   evaluates four rule families on top: cross-module secret taint
   (``secret-branch``/``secret-compare``/``secret-len``/
   ``telemetry-leak`` with witness call chains), lock-order deadlock
   cycles (``lock-order``), owned/guarded state escaping to other
   threads or processes (``thread-escape``), and interprocedural
   constant-time checking (``ct-call`` at every caller of a
   non-constant-time helper).
4. :mod:`~repro.analysis.wholeprogram.cache` keys each module's
   extracted summary by content hash so repeated runs (the tier-1 gate,
   watch loops) skip extraction for unchanged files; the global
   propagation always re-runs, so cached and cold findings are
   identical by construction.

``lightweb lint`` runs this engine by default (``--intra-only`` falls
back to the PR-2 per-module analysis); :func:`analyze_project` is the
library entry point.
"""

from repro.analysis.wholeprogram.callgraph import Project, build_project
from repro.analysis.wholeprogram.engine import analyze_project

__all__ = ["Project", "build_project", "analyze_project"]
