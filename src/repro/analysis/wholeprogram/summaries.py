"""Per-function summary extraction for the whole-program engine.

The intra-module walk (:mod:`repro.analysis.taint`) computes a *fixed*
taint per expression given the module's declared sources. Crossing
module boundaries needs something stronger: a summary that describes a
function's behaviour as a function of its **callers'** arguments. The
lattice element here is :class:`PTaint`:

- ``secret`` / ``roots`` — definitely secret, with labels naming the
  root sources (for witness chains);
- ``params`` — secret *iff* one of these own parameters is secret;
- ``length`` / ``length_roots`` / ``length_params`` — the weak
  length-of-secret taint, same split;
- ``is_bytes`` — byte-string hint for the compare-timing rule.

Each function's walk produces a :class:`FunctionSummary`:

- ``returns`` — the parametric taint of the return value
  (taints-return);
- ``taints_params`` — parameters the function stores secrets into
  (taints-params);
- ``obs`` — conditional observation points: a branch / bytes-compare /
  serialization sink / telemetry sink that leaks **if** a given
  parameter turns out to carry a secret (or unconditionally, when a
  definite root reaches it);
- ``calls`` — resolved call edges with per-parameter argument taints
  and the set of locks held at the call (locks-acquired context);
- ``lock_edges`` / ``acquires`` — the local lock-order graph;
- ``escapes`` — closure captures / thread-target arguments that hand
  ``owned-by:``/``guarded-by:`` state to another thread or process
  (escapes-to-thread/process).

Summaries compose: call results substitute the callee's ``returns``
summary, so extraction iterates to a fixpoint (monotone joins over
finite sets — convergence is bounded; the driver caps passes).

The crypto boundary is made explicit in :data:`DECLASSIFIERS`: functions
whose return value is public *by cryptographic argument* even though
their inputs are secret (DPF key generation, AEAD sealing, stream-cipher
output). Without this inventory every wire message the client sends
would count as secret and the interprocedural engine would drown the
codebase in false positives — with it, the taint stops exactly where
the paper's §2 argument says it stops.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.taint import (
    BYTES_PRODUCERS,
    SANITIZERS,
    TELEMETRY_METHOD_SINKS,
    TELEMETRY_NAME_SINKS,
    ModuleSources,
)
from repro.analysis.wholeprogram.callgraph import Project

#: Functions whose *return value* is public regardless of secret inputs:
#: the cryptographic declassification boundary (each entry is a bare name
#: or a fully-qualified function id). DESIGN.md documents the argument
#: for each entry; adding one is a security-review event.
DECLASSIFIERS = {
    # DPF keys are individually pseudorandom — the §2 two-server
    # argument. Distinctive names are listed bare as well as qualified so
    # the boundary survives module moves and unresolved receivers.
    "gen_dpf",
    "gen_dpf_subkeys",
    "repro.crypto.dpf:gen_dpf",
    "repro.crypto.dpf_distributed:gen_dpf_subkeys",
    # AEAD ciphertexts/tags are public; the key never is. ("seal" stays
    # qualified: the bare name is too generic to declassify globally.)
    "repro.crypto.aead:seal",
    # Stream-cipher output is uniform under a fresh nonce.
    "chacha20_stream",
    "chacha20_block",
    "xor_stream",
    "repro.crypto.chacha:chacha20_stream",
    "repro.crypto.chacha:chacha20_block",
    "repro.crypto.chacha:xor_stream",
    # LWE ciphertext queries: RLWE-hard to distinguish from uniform.
    "repro.crypto.lwe:LwePirClient.query",
    # Mode clients emit wire payloads built from DPF keys / LWE queries.
    "queries_for_slot",
    "repro.core.zltp.modes:queries_for_slot",
    "repro.pir.twoserver:TwoServerPirClient.query",
    # Path ORAM position maps return uniformly random leaf labels whose
    # distribution is independent of the looked-up address — revealing
    # the fetched path is the ORAM security argument. Bare name: the
    # position map is usually reached through an untyped protocol field.
    "get_and_set",
    "repro.oram.position_map:get_and_set",
    "repro.oram.path_oram:DictPositionMap.get_and_set",
}

#: Thread/process constructors whose ``target=`` escapes this thread.
_SPAWN_CONSTRUCTORS = {"Thread", "Process", "Timer"}
#: Executor-style methods whose first argument escapes this thread.
_SPAWN_METHODS = {"submit", "apply_async", "run_in_executor",
                  "start_new_thread", "defer_to_thread"}

_LOCKISH_RE = re.compile(r"lock", re.IGNORECASE)
_SECRET_LINE_RE = re.compile(r"#\s*taint:\s*secret\b")
_ATTR_DECL_RE = re.compile(
    r"self\.(\w+)\s*(?::[^=]*)?=.*#\s*guarded-by:\s*(\w+)"
)
_ATTR_OWNED_RE = re.compile(
    r"self\.(\w+)\s*(?::[^=]*)?=.*#\s*owned-by:\s*(\w+)"
)
_RLOCK_RE = re.compile(r"self\.(\w*lock\w*)\s*(?::[^=]*)?=.*RLock\(")

#: In-place mutator methods (mirror of lockcheck.MUTATORS).
_MUTATORS = {
    "append", "add", "discard", "remove", "pop", "extend", "clear",
    "update", "insert", "setdefault", "popitem", "appendleft",
}

EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class PTaint:
    """Parametric taint: definite roots plus parameter conditionals."""

    secret: bool = False
    roots: FrozenSet[str] = EMPTY
    params: FrozenSet[str] = EMPTY
    length: bool = False
    length_roots: FrozenSet[str] = EMPTY
    length_params: FrozenSet[str] = EMPTY
    is_bytes: bool = False

    def __or__(self, other: "PTaint") -> "PTaint":
        return PTaint(
            self.secret or other.secret,
            self.roots | other.roots,
            self.params | other.params,
            self.length or other.length,
            self.length_roots | other.length_roots,
            self.length_params | other.length_params,
            self.is_bytes or other.is_bytes,
        )

    @property
    def any_value(self) -> bool:
        return self.secret or bool(self.params)

    @property
    def any_length(self) -> bool:
        return self.length or bool(self.length_params)

    def to_dict(self) -> dict:
        return {
            "secret": self.secret, "roots": sorted(self.roots),
            "params": sorted(self.params), "length": self.length,
            "length_roots": sorted(self.length_roots),
            "length_params": sorted(self.length_params),
            "is_bytes": self.is_bytes,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PTaint":
        return cls(
            bool(raw.get("secret")), frozenset(raw.get("roots", ())),
            frozenset(raw.get("params", ())), bool(raw.get("length")),
            frozenset(raw.get("length_roots", ())),
            frozenset(raw.get("length_params", ())),
            bool(raw.get("is_bytes")),
        )


CLEAN = PTaint()


@dataclass
class Obs:
    """One conditional observation point inside a function."""

    kind: str            # branch | compare | len-sink | telemetry
    line: int
    col: int
    requires: FrozenSet[str]      # fires if any of these params is secret
    requires_len: FrozenSet[str]  # fires if any of these params is a
    #                               secret-derived *length*
    roots: FrozenSet[str]         # fires unconditionally, from these roots
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "line": self.line, "col": self.col,
            "requires": sorted(self.requires),
            "requires_len": sorted(self.requires_len),
            "roots": sorted(self.roots), "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Obs":
        return cls(raw["kind"], raw["line"], raw["col"],
                   frozenset(raw.get("requires", ())),
                   frozenset(raw.get("requires_len", ())),
                   frozenset(raw.get("roots", ())), raw.get("detail", ""))


@dataclass
class CallEdge:
    """One resolved call site: who is called, with what, holding what."""

    callee: str
    line: int
    col: int
    args: Dict[str, PTaint]       # callee param name -> caller-side taint
    held: Tuple[str, ...] = ()    # canonical lock ids held at the call

    def to_dict(self) -> dict:
        return {
            "callee": self.callee, "line": self.line, "col": self.col,
            "args": {k: v.to_dict() for k, v in self.args.items()},
            "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CallEdge":
        return cls(raw["callee"], raw["line"], raw["col"],
                   {k: PTaint.from_dict(v)
                    for k, v in raw.get("args", {}).items()},
                   tuple(raw.get("held", ())))


@dataclass
class EscapeSite:
    """Annotated state handed to another thread/process."""

    line: int
    col: int
    attr: str
    annotation: str      # "owned-by" | "guarded-by"
    owner: str           # the declared owner prefix / lock name
    mechanism: str       # closure | bound-method | thread-arg

    def to_dict(self) -> dict:
        return {"line": self.line, "col": self.col, "attr": self.attr,
                "annotation": self.annotation, "owner": self.owner,
                "mechanism": self.mechanism}

    @classmethod
    def from_dict(cls, raw: dict) -> "EscapeSite":
        return cls(raw["line"], raw["col"], raw["attr"], raw["annotation"],
                   raw["owner"], raw["mechanism"])


@dataclass
class FunctionSummary:
    """Everything the interprocedural phase needs to know about one def."""

    fid: str
    path: str
    qualname: str
    def_line: int
    params: List[str]
    returns: PTaint = CLEAN
    taints_params: Dict[str, PTaint] = field(default_factory=dict)
    obs: List[Obs] = field(default_factory=list)
    calls: List[CallEdge] = field(default_factory=list)
    lock_edges: List[Tuple[str, str, int]] = field(default_factory=list)
    acquires: FrozenSet[str] = EMPTY
    escapes: List[EscapeSite] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "fid": self.fid, "path": self.path, "qualname": self.qualname,
            "def_line": self.def_line, "params": list(self.params),
            "returns": self.returns.to_dict(),
            "taints_params": {k: v.to_dict()
                              for k, v in self.taints_params.items()},
            "obs": [o.to_dict() for o in self.obs],
            "calls": [c.to_dict() for c in self.calls],
            "lock_edges": [list(edge) for edge in self.lock_edges],
            "acquires": sorted(self.acquires),
            "escapes": [e.to_dict() for e in self.escapes],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FunctionSummary":
        return cls(
            fid=raw["fid"], path=raw["path"], qualname=raw["qualname"],
            def_line=raw["def_line"], params=list(raw.get("params", ())),
            returns=PTaint.from_dict(raw.get("returns", {})),
            taints_params={k: PTaint.from_dict(v)
                           for k, v in raw.get("taints_params", {}).items()},
            obs=[Obs.from_dict(o) for o in raw.get("obs", ())],
            calls=[CallEdge.from_dict(c) for c in raw.get("calls", ())],
            lock_edges=[tuple(e) for e in raw.get("lock_edges", ())],
            acquires=frozenset(raw.get("acquires", ())),
            escapes=[EscapeSite.from_dict(e) for e in raw.get("escapes", ())],
        )


@dataclass
class ModuleAnnotations:
    """Per-module ``guarded-by:`` / ``owned-by:`` declarations."""

    guards: Dict[str, str] = field(default_factory=dict)
    owners: Dict[str, str] = field(default_factory=dict)
    reentrant_locks: FrozenSet[str] = EMPTY
    secret_lines: FrozenSet[int] = frozenset()

    @classmethod
    def parse(cls, source: str) -> "ModuleAnnotations":
        guards: Dict[str, str] = {}
        owners: Dict[str, str] = {}
        reentrant = set()
        secret_lines = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            guard = _ATTR_DECL_RE.search(text)
            if guard is not None:
                guards[guard.group(1)] = guard.group(2)
            owned = _ATTR_OWNED_RE.search(text)
            if owned is not None:
                owners[owned.group(1)] = owned.group(2)
            rlock = _RLOCK_RE.search(text)
            if rlock is not None:
                reentrant.add(rlock.group(1))
            if _SECRET_LINE_RE.search(text):
                secret_lines.add(lineno)
        return cls(guards, owners, frozenset(reentrant),
                   frozenset(secret_lines))


def _is_raise_only(stmts: Sequence[ast.stmt]) -> bool:
    return bool(stmts) and all(isinstance(s, ast.Raise) for s in stmts)


def _has_bytes_literal(expr: ast.expr) -> bool:
    """Whether an expression visibly evaluates to bytes (literal-rooted)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, (bytes, bytearray)):
            return True
    return False


def _final_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


class SummaryBuilder:
    """Extracts :class:`FunctionSummary` objects for one project.

    Call :meth:`extract_module` per module (repeatedly — the caller
    drives the fixpoint) with the current cross-module summary pool in
    ``self.summaries``.
    """

    def __init__(self, project: Project,
                 sources_for_path: Callable[[str], ModuleSources]):
        self.project = project
        self.sources_for_path = sources_for_path
        self.summaries: Dict[str, FunctionSummary] = {}
        #: cid -> attr -> definite PTaint (cross-method secret attrs).
        self.attr_taints: Dict[str, Dict[str, PTaint]] = {}
        #: module name -> parsed annotations.
        self.annotations: Dict[str, ModuleAnnotations] = {}
        #: fid -> {callee fid: returns-digest} (cache invalidation).
        self.deps: Dict[str, Dict[str, str]] = {}
        self._module_consts: Dict[str, Dict[str, PTaint]] = {}

    def consts_for(self, module: str) -> Dict[str, PTaint]:
        """Module-level names bound to bytes-like constants.

        The compare-timing rule needs the bytes-ness of the *other*
        operand; ``EXPECTED = b"..."`` at module scope is the common
        shape for a reference digest.
        """
        if module not in self._module_consts:
            out: Dict[str, PTaint] = {}
            info = self.project.modules.get(module)
            if info is not None:
                for stmt in info.tree.body:
                    if isinstance(stmt, ast.Assign) and \
                            len(stmt.targets) == 1 and \
                            isinstance(stmt.targets[0], ast.Name) and \
                            _has_bytes_literal(stmt.value):
                        out[stmt.targets[0].id] = PTaint(is_bytes=True)
            self._module_consts[module] = out
        return self._module_consts[module]

    def annotations_for(self, module: str) -> ModuleAnnotations:
        if module not in self.annotations:
            info = self.project.modules.get(module)
            self.annotations[module] = ModuleAnnotations.parse(
                info.source if info is not None else "")
        return self.annotations[module]

    def extract_module(self, module: str) -> bool:
        """Extract/refresh summaries for one module; True if any changed."""
        info = self.project.modules.get(module)
        if info is None:
            return False
        annotations = self.annotations_for(module)
        sources = self.sources_for_path(info.path)
        changed = False
        for fid, finfo in self.project.functions.items():
            if finfo.module != module:
                continue
            walker = _Walk(self, info, finfo, sources, annotations)
            summary = walker.run()
            previous = self.summaries.get(fid)
            if previous is None or previous.to_dict() != summary.to_dict():
                changed = True
            self.summaries[fid] = summary
            self.deps[fid] = walker.dep_digests
        return changed

    def returns_digest(self, fid: str) -> str:
        summary = self.summaries.get(fid)
        if summary is None:
            return "-"
        return repr(sorted(summary.returns.to_dict().items()))


class _Walk:
    """One parametric walk over one function body."""

    def __init__(self, builder: SummaryBuilder, module, finfo,
                 sources: ModuleSources, annotations: ModuleAnnotations):
        self.builder = builder
        self.project = builder.project
        self.module = module
        self.finfo = finfo
        self.sources = sources
        self.annotations = annotations
        self.env: Dict[str, PTaint] = {}
        self.type_env: Dict[str, str] = {}
        self.held: Tuple[str, ...] = ()
        self.summary = FunctionSummary(
            fid=finfo.fid, path=module.path, qualname=finfo.qualname,
            def_line=finfo.node.lineno, params=list(finfo.params),
        )
        self._lock_edges = set()
        self._acquires = set()
        self._obs_seen = set()
        self.dep_digests: Dict[str, str] = {}
        self.self_cid = (f"{finfo.module}:{finfo.class_name}"
                         if finfo.class_name else None)
        # Seed parameters: every param is conditionally tainted by itself;
        # declared source params are definite roots.
        declared = sources.params_for(finfo.qualname, finfo.name)
        for param in finfo.params:
            if param in ("self", "cls"):
                continue
            taint = PTaint(params=frozenset({param}))
            if param in declared:
                taint = taint | PTaint(
                    secret=True,
                    roots=frozenset({f"{finfo.fid} param {param} "
                                     f"[declared secret source]"}))
            self.env[param] = taint
        for const_name, const_taint in \
                builder.consts_for(finfo.module).items():
            self.env.setdefault(const_name, const_taint)
        for attr in sources.secret_attrs:
            self.env[f"self.{attr}"] = PTaint(
                secret=True,
                roots=frozenset({f"{finfo.fid} self.{attr} "
                                 f"[declared secret attr]"}))
        # Cross-method attr taints discovered in earlier passes.
        if self.self_cid is not None:
            for attr, taint in builder.attr_taints.get(
                    self.self_cid, {}).items():
                key = f"self.{attr}"
                self.env[key] = self.env.get(key, CLEAN) | taint
        # Instance-attribute types recorded from __init__ walks.
        if self.self_cid is not None:
            for attr, cid in _class_attr_types(
                    self.project, self.self_cid).items():
                self.type_env[f"self.{attr}"] = cid
        # Parameter annotations type the call-resolution environment.
        for arg in (finfo.node.args.posonlyargs + finfo.node.args.args
                    + finfo.node.args.kwonlyargs):
            cid = _annotation_cid(self.project, finfo.module, arg.annotation)
            if cid is not None:
                self.type_env[arg.arg] = cid

    # ------------------------------------------------------------------

    def run(self) -> FunctionSummary:
        # Two sweeps: the first enriches the environment (assignments
        # before/after uses), the second records the final observation
        # points and call edges against that enriched state.
        for _ in range(2):
            self.held = ()
            self.summary.obs = []
            self.summary.calls = []
            self.summary.escapes = []
            self._obs_seen.clear()
            for stmt in self.finfo.node.body:
                self.exec_stmt(stmt)
        self.summary.lock_edges = sorted(self._lock_edges)
        self.summary.acquires = frozenset(self._acquires)
        return self.summary

    def note_obs(self, kind: str, node: ast.AST, requires: FrozenSet[str],
                 requires_len: FrozenSet[str], roots: FrozenSet[str],
                 detail: str = "") -> None:
        if not (requires or requires_len or roots):
            return
        key = (kind, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key in self._obs_seen:
            return
        self._obs_seen.add(key)
        self.summary.obs.append(Obs(
            kind=kind, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            requires=requires - {"self", "cls"},
            requires_len=requires_len - {"self", "cls"},
            roots=roots, detail=detail,
        ))

    # -- statements ----------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval_expr(stmt.value) | self.line_taint(stmt)
            for target in stmt.targets:
                self.assign(target, taint, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self.eval_expr(stmt.value) | self.line_taint(stmt)
                self.assign(stmt.target, taint, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval_expr(stmt.value)
            key = self._target_key(stmt.target)
            if key is not None:
                self.env[key] = self.env.get(key, CLEAN) | taint
                self._note_param_store(key, taint)
        elif isinstance(stmt, ast.If):
            test = self.eval_expr(stmt.test)
            guard = not stmt.orelse and _is_raise_only(stmt.body)
            if not guard:
                self.note_obs("branch", stmt, test.params, EMPTY, test.roots,
                              "if condition")
            before = dict(self.env)
            self.exec_block(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self.exec_block(stmt.orelse)
            self.env = self._join(after_body, self.env)
        elif isinstance(stmt, ast.While):
            test = self.eval_expr(stmt.test)
            self.note_obs("branch", stmt, test.params, EMPTY, test.roots,
                          "while condition")
            self._exec_loop(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.assign(stmt.target, self.eval_expr(stmt.iter), None)
            self._exec_loop(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.summary.returns = (self.summary.returns
                                        | self.eval_expr(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.With):
            self._exec_with(stmt)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval_expr(stmt.exc)
        # Nested defs/classes: bodies analysed only when they escape to a
        # thread (see _check_spawn) — same scope rule as the intra walk.

    def _exec_with(self, stmt: ast.With) -> None:
        outer = self.held
        acquired_here: List[str] = []
        for item in stmt.items:
            taint = self.eval_expr(item.context_expr)
            if item.optional_vars is not None:
                self.assign(item.optional_vars, taint, None)
            lock = self._lock_id(item.context_expr)
            if lock is None:
                continue
            reentrant = lock.rsplit(".", 1)[-1] in \
                self.annotations.reentrant_locks
            for held_lock in self.held + tuple(acquired_here):
                if held_lock == lock and reentrant:
                    continue
                self._lock_edges.add((held_lock, lock, stmt.lineno))
            acquired_here.append(lock)
            self._acquires.add(lock)
        self.held = outer + tuple(acquired_here)
        self.exec_block(stmt.body)
        self.held = outer

    def _lock_id(self, expr: ast.expr) -> Optional[str]:
        """Canonical lock identity for a ``with`` context expression."""
        name = _final_name(expr)
        if name is None or not _LOCKISH_RE.search(name):
            return None
        if isinstance(expr, ast.Name):
            return f"{self.finfo.module}:{name}"
        base = expr.value if isinstance(expr, ast.Attribute) else None
        if isinstance(base, ast.Name):
            if base.id == "self" and self.self_cid is not None:
                return f"{self.self_cid}.{name}"
            cid = self.type_env.get(base.id)
            if cid is not None:
                return f"{cid}.{name}"
            target = self.project.resolve_symbol(self.finfo.module, base.id)
            if target in self.project.modules:
                return f"{target}:{name}"
        elif isinstance(base, ast.Attribute) and \
                isinstance(base.value, ast.Name) and base.value.id == "self":
            cid = self.type_env.get(f"self.{base.attr}")
            if cid is not None:
                return f"{cid}.{name}"
        # Unknown holder: scope the lock to this module + attribute name,
        # so unrelated same-named locks in other modules never merge.
        return f"{self.finfo.module}:?.{name}"

    def _exec_loop(self, body: Sequence[ast.stmt]) -> None:
        before = dict(self.env)
        self.exec_block(body)
        self.exec_block(body)
        self.env = self._join(before, self.env)

    @staticmethod
    def _join(a: Dict[str, PTaint], b: Dict[str, PTaint]) -> Dict[str, PTaint]:
        return {key: a.get(key, CLEAN) | b.get(key, CLEAN)
                for key in set(a) | set(b)}

    def line_taint(self, stmt: ast.stmt) -> PTaint:
        if stmt.lineno in self.annotations.secret_lines:
            return PTaint(secret=True, is_bytes=True, roots=frozenset(
                {f"{self.finfo.fid} line {stmt.lineno} [# taint: secret]"}))
        return CLEAN

    def _target_key(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            return f"self.{target.attr}"
        return None

    def _note_param_store(self, key: str, taint: PTaint) -> None:
        """Record secrets stored into parameters (taints-params)."""
        base = key.split(".", 1)[0]
        if base in self.finfo.params and base not in ("self", "cls") \
                and "." in key and (taint.secret or taint.params):
            merged = self.summary.taints_params.get(base, CLEAN) | taint
            self.summary.taints_params[base] = merged

    def assign(self, target: ast.expr, taint: PTaint,
               value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if isinstance(value, ast.Call):
                resolved = self.project.resolve_call(
                    self.finfo.module, value, self.self_cid, self.type_env)
                if resolved is not None and resolved[1] is not None:
                    self.type_env[target.id] = resolved[1]
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taint, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self.assign(sub_target, self.eval_expr(sub_value),
                                sub_value)
            else:
                for sub_target in target.elts:
                    self.assign(sub_target, taint, None)
        elif isinstance(target, ast.Attribute):
            key = self._target_key(target)
            if key is not None:
                self.env[key] = taint
                self._note_param_store(key, taint)
                # Definite secrets stored on self propagate to the whole
                # class on the next fixpoint pass.
                if key.startswith("self.") and taint.secret and \
                        self.self_cid is not None:
                    attrs = self.builder.attr_taints.setdefault(
                        self.self_cid, {})
                    narrowed = PTaint(secret=True, roots=taint.roots,
                                      is_bytes=taint.is_bytes)
                    attrs[key[5:]] = attrs.get(key[5:], CLEAN) | narrowed
            elif isinstance(target.value, ast.Name) and \
                    target.value.id in self.finfo.params:
                self._note_param_store(f"{target.value.id}.{target.attr}",
                                       taint)

    # -- expressions ---------------------------------------------------

    def eval_expr(self, node: Optional[ast.expr]) -> PTaint:
        if node is None:
            return CLEAN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Constant):
            return PTaint(is_bytes=isinstance(node.value, (bytes, bytearray)))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self.env.get(f"self.{node.attr}", CLEAN)
            return self.eval_expr(node.value)
        if isinstance(node, ast.Subscript):
            return self.eval_expr(node.value) | self.eval_expr(node.slice)
        if isinstance(node, ast.Compare):
            return self.eval_compare(node)
        if isinstance(node, ast.BoolOp):
            return self.union(node.values)
        if isinstance(node, ast.BinOp):
            return self.eval_expr(node.left) | self.eval_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.IfExp):
            test = self.eval_expr(node.test)
            self.note_obs("branch", node, test.params, EMPTY, test.roots,
                          "conditional expression")
            return (self.eval_expr(node.body) | self.eval_expr(node.orelse)
                    | PTaint(secret=test.secret, roots=test.roots,
                             params=test.params))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self.union(node.elts)
        if isinstance(node, ast.Dict):
            return self.union([v for v in node.values if v is not None])
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                self.assign(gen.target, self.eval_expr(gen.iter), None)
                for cond in gen.ifs:
                    self.eval_expr(cond)
            if isinstance(node, ast.DictComp):
                return self.eval_expr(node.key) | self.eval_expr(node.value)
            return self.eval_expr(node.elt)
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval_expr(node.value)
            self.assign(node.target, taint, node.value)
            return taint
        if isinstance(node, ast.JoinedStr):
            return self.union(node.values)
        if isinstance(node, ast.FormattedValue):
            return self.eval_expr(node.value)
        if isinstance(node, ast.Slice):
            return (self.eval_expr(node.lower) | self.eval_expr(node.upper)
                    | self.eval_expr(node.step))
        return CLEAN

    def union(self, nodes: Sequence[ast.expr]) -> PTaint:
        taint = CLEAN
        for node in nodes:
            taint = taint | self.eval_expr(node)
        return taint

    def eval_compare(self, node: ast.Compare) -> PTaint:
        operands = [node.left] + list(node.comparators)
        if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            for operand in operands:
                self.eval_expr(operand)
            return CLEAN
        taints = [self.eval_expr(operand) for operand in operands]
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq and any(t.is_bytes for t in taints):
            requires = frozenset().union(*(t.params for t in taints))
            roots = frozenset().union(*(t.roots for t in taints))
            self.note_obs("compare", node, requires, EMPTY, roots,
                          "==/!= on bytes")
        return PTaint(
            secret=any(t.secret for t in taints),
            roots=frozenset().union(*(t.roots for t in taints)),
            params=frozenset().union(*(t.params for t in taints)),
            length=any(t.length for t in taints),
            length_roots=frozenset().union(*(t.length_roots for t in taints)),
            length_params=frozenset().union(
                *(t.length_params for t in taints)),
        )

    def eval_call(self, node: ast.Call) -> PTaint:
        func = node.func
        name = None
        base_taint = CLEAN
        struct_base = False
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            base_taint = self.eval_expr(func.value)
            struct_base = isinstance(func.value, ast.Name) and \
                func.value.id == "struct"
        arg_nodes = list(node.args) + [kw.value for kw in node.keywords]

        self._check_spawn(node, name)

        if name in SANITIZERS:
            for arg in arg_nodes:
                self.eval_expr(arg)
            return CLEAN

        if name == "len" and len(node.args) == 1:
            inner = self.eval_expr(node.args[0])
            return PTaint(
                length=inner.secret or inner.length,
                length_roots=inner.roots | inner.length_roots,
                length_params=inner.params | inner.length_params,
            )

        arg_taint = self.union(arg_nodes) | base_taint

        # Serialization sinks (wire-message sizes).
        is_sink = (name == "encode_frame"
                   or (struct_base and name in ("pack", "pack_into"))
                   or (isinstance(func, ast.Attribute) and name == "to_bytes"))
        if is_sink:
            for arg in arg_nodes:
                taint = self.eval_expr(arg)
                # Record even when the taint is only param-conditional
                # (plain parameter flowing into the sink): the obs fires
                # later if a caller binds that param to len(secret).
                if taint.any_length or taint.params:
                    self.note_obs("len-sink", node, taint.length_params,
                                  taint.params, taint.length_roots,
                                  f"serialization sink {name}()")
                    break

        # Telemetry sinks (span attributes, metric labels, log fields).
        is_telemetry = (
            (isinstance(func, ast.Name) and name in TELEMETRY_NAME_SINKS)
            or (isinstance(func, ast.Attribute)
                and name in TELEMETRY_METHOD_SINKS)
        )
        if is_telemetry:
            for arg in arg_nodes:
                taint = self.eval_expr(arg)
                if taint.any_value or taint.any_length:
                    self.note_obs(
                        "telemetry", node,
                        taint.params | taint.length_params, taint.params,
                        taint.roots | taint.length_roots,
                        f"telemetry sink {name}()")
                    break

        # Resolve the callee and record the call edge.
        resolved = self.project.resolve_call(
            self.finfo.module, node, self.self_cid, self.type_env)
        fid = resolved[0] if resolved is not None else None
        if fid is not None:
            bound = not (isinstance(func, ast.Name)
                         and self.project.resolve_symbol(
                             self.finfo.module, func.id) == fid
                         and self.project.functions[fid].class_name is None) \
                and self.project.functions[fid].class_name is not None
            arg_map = self.project.bind_args(fid, node, bound=bound)
            edge_args = {param: self.eval_expr(expr)
                         for param, expr in arg_map.items()}
            self.summary.calls.append(CallEdge(
                callee=fid, line=node.lineno, col=node.col_offset,
                args=edge_args, held=self.held,
            ))
            self.dep_digests[fid] = self.builder.returns_digest(fid)
            callee = self.builder.summaries.get(fid)
            finfo = self.project.functions[fid]
            if fid in DECLASSIFIERS or finfo.name in DECLASSIFIERS or \
                    f"{finfo.module}:{finfo.qualname}" in DECLASSIFIERS:
                return PTaint(is_bytes=name in BYTES_PRODUCERS)
            result = CLEAN
            if callee is not None:
                result = self._subst(callee.returns, edge_args)
                # taints-params: the callee stored secrets into an arg.
                for param, stored in callee.taints_params.items():
                    expr = arg_map.get(param)
                    key = self._target_key(expr) if expr is not None else None
                    if key is not None:
                        substituted = self._subst(stored, edge_args)
                        self.env[key] = self.env.get(key, CLEAN) | substituted
            else:
                result = arg_taint
            if self._is_source_call(fid, finfo):
                result = result | PTaint(secret=True, roots=frozenset(
                    {f"{fid} [declared source call]"}))
            if name in BYTES_PRODUCERS:
                result = result | PTaint(is_bytes=True)
            return result

        # Unresolved call: conservative arg-taint propagation (matching
        # the intra-module engine's behaviour).
        if name in DECLASSIFIERS:
            return PTaint(is_bytes=name in BYTES_PRODUCERS)
        result = arg_taint
        if name in self.sources.source_calls:
            result = result | PTaint(secret=True, roots=frozenset(
                {f"{self.finfo.module}:{name}() [declared source call]"}))
        if name in BYTES_PRODUCERS:
            result = result | PTaint(is_bytes=True)
        return result

    def _is_source_call(self, fid: str, finfo) -> bool:
        """Whether the callee is a declared source in *its own* module."""
        target = self.project.modules.get(finfo.module)
        if target is None:
            return False
        callee_sources = self.builder.sources_for_path(target.path)
        return finfo.name in callee_sources.source_calls

    @staticmethod
    def _subst(summary_taint: PTaint, args: Dict[str, PTaint]) -> PTaint:
        """Substitute call-site argument taints into a callee summary."""
        result = PTaint(secret=summary_taint.secret,
                        roots=summary_taint.roots,
                        length=summary_taint.length,
                        length_roots=summary_taint.length_roots,
                        is_bytes=summary_taint.is_bytes)
        for param in summary_taint.params:
            arg = args.get(param)
            if arg is None:
                continue
            result = result | PTaint(
                secret=arg.secret, roots=arg.roots, params=arg.params,
                length=arg.length, length_roots=arg.length_roots,
                length_params=arg.length_params)
        for param in summary_taint.length_params:
            arg = args.get(param)
            if arg is None:
                continue
            result = result | PTaint(
                length=arg.secret or arg.length,
                length_roots=arg.roots | arg.length_roots,
                length_params=arg.params | arg.length_params)
        return result

    # -- escape analysis -----------------------------------------------

    def _check_spawn(self, node: ast.Call, name: Optional[str]) -> None:
        """Detect annotated state escaping through a thread/process spawn."""
        if not self.annotations.guards and not self.annotations.owners:
            return
        escaping: List[ast.expr] = []
        thread_args: List[ast.expr] = []
        if name in _SPAWN_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    escaping.append(keyword.value)
                elif keyword.arg in ("args", "kwargs"):
                    thread_args.append(keyword.value)
        elif isinstance(node.func, ast.Attribute) and name in _SPAWN_METHODS:
            if node.args:
                escaping.append(node.args[0])
                thread_args.extend(node.args[1:])
            thread_args.extend(kw.value for kw in node.keywords)
        else:
            return
        for target in escaping:
            self._check_escaping_callable(target, node)
        for extra in thread_args:
            self._check_thread_arg(extra, node)

    def _check_escaping_callable(self, target: ast.expr,
                                 site: ast.Call) -> None:
        if isinstance(target, ast.Lambda):
            self._scan_closure_body([ast.Expr(value=target.body)], site)
            return
        if isinstance(target, ast.Name):
            nested = self._find_nested_def(target.id)
            if nested is not None:
                self._scan_closure_body(nested.body, site)
            return
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self" and self.self_cid is not None:
            fid = self.project.lookup_method(self.self_cid, target.attr)
            if fid is None:
                return
            method = self.project.functions[fid]
            for attr, owner in self.annotations.owners.items():
                if method.name.startswith(owner) or method.name == "__init__":
                    continue  # handing off to the owning family is the point
                if _method_touches_attr(method.node, attr):
                    self.summary.escapes.append(EscapeSite(
                        line=site.lineno, col=site.col_offset, attr=attr,
                        annotation="owned-by", owner=owner,
                        mechanism=f"bound-method {target.attr}"))

    def _find_nested_def(self, name: str):
        for stmt in ast.walk(self.finfo.node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt.name == name and stmt is not self.finfo.node:
                return stmt
        return None

    def _scan_closure_body(self, body: Sequence[ast.stmt],
                           site: ast.Call) -> None:
        """A closure crossing a thread boundary: owned state may not be
        touched at all; guarded state may not be mutated lock-free."""
        for attr, owner in self.annotations.owners.items():
            if _body_references_attr(body, attr):
                self.summary.escapes.append(EscapeSite(
                    line=site.lineno, col=site.col_offset, attr=attr,
                    annotation="owned-by", owner=owner,
                    mechanism="closure"))
        for attr, guard in self.annotations.guards.items():
            if _body_mutates_attr_unlocked(body, attr, guard):
                self.summary.escapes.append(EscapeSite(
                    line=site.lineno, col=site.col_offset, attr=attr,
                    annotation="guarded-by", owner=guard,
                    mechanism="closure"))

    def _check_thread_arg(self, expr: ast.expr, site: ast.Call) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and \
                    node.attr in self.annotations.owners:
                self.summary.escapes.append(EscapeSite(
                    line=site.lineno, col=site.col_offset, attr=node.attr,
                    annotation="owned-by",
                    owner=self.annotations.owners[node.attr],
                    mechanism="thread-arg"))


def _method_touches_attr(node, attr: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == attr and \
                isinstance(child.value, ast.Name) and child.value.id == "self":
            return True
    return False


def _body_references_attr(body: Sequence[ast.stmt], attr: str) -> bool:
    for stmt in body:
        if _method_touches_attr(stmt, attr):
            return True
    return False


def _body_mutates_attr_unlocked(body: Sequence[ast.stmt], attr: str,
                                guard: str) -> bool:
    """Whether the closure writes the guarded attr outside ``with guard:``."""

    def mutates(stmts: Sequence[ast.stmt], held: bool) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.With):
                inner = held or any(
                    _final_name(item.context_expr) == guard
                    for item in stmt.items)
                if mutates(stmt.body, inner):
                    return True
                continue
            if held:
                continue
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if isinstance(target, ast.Attribute) and \
                                target.attr == attr:
                            return True
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATORS and \
                        _final_name(node.func.value) == attr:
                    return True
        return False

    return mutates(body, False)


def _annotation_cid(project: Project, module: str,
                    annotation: Optional[ast.expr]) -> Optional[str]:
    """Resolve a parameter annotation to a class id, if it names one.

    Handles plain names, dotted names, string annotations, and
    ``Optional[X]`` — enough to type lock holders and method receivers.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        text = annotation.value.strip().strip("\"'")
        if text.isidentifier() or all(
                part.isidentifier() for part in text.split(".")):
            target = project.resolve_dotted(module, text)
            return target if target in project.classes else None
        return None
    if isinstance(annotation, ast.Subscript):
        slice_node = annotation.slice
        if isinstance(slice_node, ast.Tuple):
            for element in slice_node.elts:
                cid = _annotation_cid(project, module, element)
                if cid is not None:
                    return cid
            return None
        return _annotation_cid(project, module, slice_node)
    from repro.analysis.wholeprogram.callgraph import _dotted
    dotted = _dotted(annotation)
    if dotted is None:
        return None
    target = project.resolve_dotted(module, dotted)
    return target if target in project.classes else None


def _class_attr_types(project: Project, cid: str) -> Dict[str, str]:
    """Instance-attribute types inferred from ``__init__`` (annotation or
    constructor assignment) — enough to canonicalise lock holders."""
    out: Dict[str, str] = {}
    init_fid = project.lookup_method(cid, "__init__")
    if init_fid is None:
        return out
    init = project.functions[init_fid]
    module = init.module
    # Parameter annotations: ``def __init__(self, server: ZltpServer)``.
    annotated: Dict[str, str] = {}
    for arg in init.node.args.args:
        cid_of_arg = _annotation_cid(project, module, arg.annotation)
        if cid_of_arg is not None:
            annotated[arg.arg] = cid_of_arg
    for stmt in ast.walk(init.node):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if isinstance(stmt.value, ast.Name) and \
                    stmt.value.id in annotated:
                out[target.attr] = annotated[stmt.value.id]
            elif isinstance(stmt.value, ast.Call):
                resolved = project.resolve_call(module, stmt.value)
                if resolved is not None and resolved[1] is not None:
                    out[target.attr] = resolved[1]
    return out


__all__ = [
    "PTaint",
    "CLEAN",
    "Obs",
    "CallEdge",
    "EscapeSite",
    "FunctionSummary",
    "ModuleAnnotations",
    "SummaryBuilder",
    "DECLASSIFIERS",
]
