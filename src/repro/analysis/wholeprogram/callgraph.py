"""Project model: modules, symbols, imports, classes, call resolution.

Everything downstream (summaries, interprocedural rules) works on
fully-qualified *function ids* of the form ``<module>:<Qual.name>``
(``repro.crypto.dpf:gen_dpf``, ``repro.pir.procpool:ProcScanPool._retry``).
This module builds that namespace from plain ``ast`` parses:

- **Module naming** walks parent directories while ``__init__.py``
  files exist, so ``src/repro/pir/engine.py`` becomes
  ``repro.pir.engine`` and a loose fixture file becomes its bare stem.
- **Import resolution** handles ``import a.b.c [as x]``,
  ``from a.b import sym [as y]`` (following package re-exports
  transitively), and relative ``from .sib import sym`` forms.
- **Class-method binding** is inheritance-aware across modules: a
  ``self.helper()`` call in a subclass resolves through the base-class
  list (depth-first, in declaration order — a linearisation that is
  exact for this codebase's single-inheritance shapes).
- **Decorators** do not hide functions: a decorated ``def`` keeps its
  identity, and ``staticmethod``/``classmethod`` adjust how call-site
  arguments bind to parameters.

Resolution is deliberately *partial*: a call that cannot be resolved
(dynamic dispatch, builtins, third-party code) yields ``None`` and the
analyses fall back to their conservative local behaviour, exactly like
the intra-module engine.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Follow package re-export chains at most this deep.
_MAX_REEXPORT_DEPTH = 6


def module_name_for(path: str) -> str:
    """Dotted module name for a file, derived from ``__init__.py`` chains."""
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.insert(0, pkg)
    return ".".join(parts) if parts else stem


@dataclass
class FunctionInfo:
    """One function or method definition."""

    fid: str                      # "<module>:<Qual.name>"
    module: str
    qualname: str                 # "name" or "Class.name"
    node: ast.AST                 # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]     # enclosing class, if a method
    params: List[str]             # declared parameter names, in order
    is_static: bool = False
    is_classmethod: bool = False
    decorators: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def bound_params(self) -> List[str]:
        """Parameter names as seen by a *bound* call (no self/cls)."""
        if self.class_name is not None and not self.is_static and self.params:
            return self.params[1:]
        return self.params


@dataclass
class ClassInfo:
    """One class definition plus its resolved method table."""

    cid: str                      # "<module>:<ClassName>"
    module: str
    name: str
    node: ast.ClassDef
    base_names: List[str]         # raw base expressions, dotted text
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fid


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: str
    source: str
    tree: ast.Module
    is_package: bool
    #: local name -> ("module", dotted) | ("symbol", "module:sym")
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)   # name -> fid
    classes: Dict[str, str] = field(default_factory=dict)     # name -> cid


def _decorator_names(node) -> List[str]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


def _param_names(node) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _dotted(expr: ast.expr) -> Optional[str]:
    """Render a Name/Attribute chain as dotted text, else None."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


class Project:
    """All modules of one analysis run, with shared resolution tables."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction --------------------------------------------------

    def add_module(self, path: str, source: str, tree: ast.Module) -> ModuleInfo:
        name = module_name_for(path)
        info = ModuleInfo(
            name=name, path=path, source=source, tree=tree,
            is_package=os.path.basename(path) == "__init__.py",
        )
        self.modules[name] = info
        self.modules_by_path[path] = info
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, None)
            elif isinstance(node, ast.ClassDef):
                cid = f"{name}:{node.name}"
                bases = [b for b in (_dotted(base) for base in node.bases)
                         if b is not None]
                self.classes[cid] = ClassInfo(
                    cid=cid, module=name, name=node.name, node=node,
                    base_names=bases,
                )
                info.classes[node.name] = cid
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(info, item, node.name)
        return info

    def _add_function(self, module: ModuleInfo, node,
                      class_name: Optional[str]) -> None:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        fid = f"{module.name}:{qualname}"
        decorators = _decorator_names(node)
        self.functions[fid] = FunctionInfo(
            fid=fid, module=module.name, qualname=qualname, node=node,
            class_name=class_name, params=_param_names(node),
            is_static="staticmethod" in decorators,
            is_classmethod="classmethod" in decorators,
            decorators=decorators,
        )
        if class_name is None:
            module.functions[node.name] = fid
        else:
            cid = f"{module.name}:{class_name}"
            self.classes[cid].methods[node.name] = fid

    def link(self) -> None:
        """Resolve every module's import table (call after all adds)."""
        for info in self.modules.values():
            self._link_module(info)

    def _link_module(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    info.imports[bound] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.imports[bound] = ("symbol", f"{base}:{alias.name}")

    @staticmethod
    def _import_base(info: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: strip (level - 1) trailing components from the
        # *package* name (the module's own name for a package __init__).
        parts = info.name.split(".")
        if not info.is_package:
            parts = parts[:-1]
        strip = node.level - 1
        if strip:
            parts = parts[:-strip] if strip < len(parts) else []
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None

    # -- symbol resolution ---------------------------------------------

    def resolve_symbol(self, module: str, name: str,
                       depth: int = 0) -> Optional[str]:
        """Resolve a bare name in a module to ``fid``/``cid``/module name.

        Follows ``from pkg import sym`` chains through package
        re-exports. Returns a function id, class id, or module name —
        distinguished by the caller via the lookup tables.
        """
        info = self.modules.get(module)
        if info is None or depth > _MAX_REEXPORT_DEPTH:
            return None
        if name in info.functions:
            return info.functions[name]
        if name in info.classes:
            return info.classes[name]
        bound = info.imports.get(name)
        if bound is None:
            return None
        kind, target = bound
        if kind == "module":
            return target if target in self.modules else None
        target_module, _, symbol = target.partition(":")
        # ``from a.b import c`` where c is itself the module a.b.c.
        submodule = f"{target_module}.{symbol}"
        if target_module in self.modules:
            resolved = self.resolve_symbol(target_module, symbol, depth + 1)
            if resolved is not None:
                return resolved
        if submodule in self.modules:
            return submodule
        return None

    def resolve_dotted(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted chain (``pkg.mod.func``) rooted in a module."""
        head, _, rest = dotted.partition(".")
        target = self.resolve_symbol(module, head)
        if target is None:
            return None
        while rest:
            part, _, rest = rest.partition(".")
            if target in self.modules:
                target = self.resolve_symbol(target, part)
                if target is None:
                    return None
            elif target in self.classes:
                target = self.classes[target].methods.get(part)
                if target is None:
                    return None
            else:
                return None
        return target

    # -- method binding ------------------------------------------------

    def mro(self, cid: str) -> List[str]:
        """Approximate MRO: the class, then bases depth-first in order."""
        out: List[str] = []
        stack = [cid]
        seen = set()
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            out.append(current)
            cls = self.classes[current]
            resolved_bases = []
            for base in cls.base_names:
                base_ref = self.resolve_dotted(cls.module, base)
                if base_ref in self.classes:
                    resolved_bases.append(base_ref)
            stack = resolved_bases + stack
        return out

    def lookup_method(self, cid: str, name: str) -> Optional[str]:
        for klass in self.mro(cid):
            fid = self.classes[klass].methods.get(name)
            if fid is not None:
                return fid
        return None

    def class_of_method(self, fid: str) -> Optional[str]:
        info = self.functions.get(fid)
        if info is None or info.class_name is None:
            return None
        return f"{info.module}:{info.class_name}"

    # -- call resolution -----------------------------------------------

    def resolve_call(self, module: str, call: ast.Call,
                     self_class: Optional[str] = None,
                     type_env: Optional[Dict[str, str]] = None,
                     ) -> Optional[Tuple[str, Optional[str]]]:
        """Resolve one call site.

        Returns ``(fid, instance_cid)`` where ``instance_cid`` is the
        class whose instance the call returns (for constructor calls),
        or ``None`` when the target is unknown.
        """
        func = call.func
        type_env = type_env or {}
        if isinstance(func, ast.Name):
            target = self.resolve_symbol(module, func.id)
            return self._as_callable(target)
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        # self.method(...) — bind through the MRO.
        if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                and self_class is not None:
            fid = self.lookup_method(self_class, func.attr)
            return (fid, None) if fid is not None else None
        # instance.method(...) for a variable of known class.
        if isinstance(base, ast.Name) and base.id in type_env:
            fid = self.lookup_method(type_env[base.id], func.attr)
            return (fid, None) if fid is not None else None
        # Module.attr / Class.attr / pkg.mod.func chains.
        dotted = _dotted(func)
        if dotted is not None:
            target = self.resolve_dotted(module, dotted)
            resolved = self._as_callable(target)
            if resolved is not None:
                return resolved
        # ClassName(...).method(...) — constructor base.
        if isinstance(base, ast.Call):
            inner = self.resolve_call(module, base, self_class, type_env)
            if inner is not None and inner[1] is not None:
                fid = self.lookup_method(inner[1], func.attr)
                return (fid, None) if fid is not None else None
        return None

    def _as_callable(self, target: Optional[str],
                     ) -> Optional[Tuple[str, Optional[str]]]:
        if target is None:
            return None
        if target in self.functions:
            return (target, None)
        if target in self.classes:
            init = self.lookup_method(target, "__init__")
            return (init, target) if init is not None else (None, target)
        return None

    def bind_args(self, fid: Optional[str], call: ast.Call,
                  bound: bool = True) -> Dict[str, ast.expr]:
        """Map call-site argument expressions onto callee parameter names.

        ``bound`` strips the implicit self/cls slot (method calls and
        constructor calls). ``*args``/``**kwargs`` at the call site stop
        positional binding at that point; keyword args always bind.
        """
        out: Dict[str, ast.expr] = {}
        if fid is None or fid not in self.functions:
            return out
        info = self.functions[fid]
        params = info.bound_params() if bound else info.params
        index = 0
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                out[params[index]] = arg
                index += 1
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in info.params:
                out[keyword.arg] = keyword.value
        return out


def build_project(files: Sequence[Tuple[str, str]]) -> Project:
    """Build and link a :class:`Project` from ``(path, source)`` pairs.

    Files that fail to parse are skipped here — the per-module analysis
    already reports them as ``parse-error`` findings.
    """
    project = Project()
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        project.add_module(path, source, tree)
    project.link()
    return project


__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "module_name_for",
]
