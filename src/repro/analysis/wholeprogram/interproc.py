"""Global fixpoint propagation and the four interprocedural rule families.

Input: the per-function :class:`~repro.analysis.wholeprogram.summaries.
FunctionSummary` pool. Output: :class:`~repro.analysis.report.Finding`
objects, each carrying a ``family`` tag and — for flows that cross
functions — a ``chain`` of human-readable witness steps.

Families:

``taint-flow``
    Secret parameters are propagated over resolved call edges to a
    fixpoint (``SecretParam``/``LenParam`` facts with provenance), then
    every conditional observation point whose trigger condition is met
    fires as the matching intra rule name (``secret-branch``,
    ``secret-compare``, ``secret-len``, ``telemetry-leak``) at the
    observation site, with the witness call chain attached.

``const-time``
    Bytes-equality observation points are additionally *lifted* through
    the call graph: every caller (direct or transitive) that feeds a
    secret into a non-constant-time compare is flagged at its own call
    site (rule ``ct-call``) — the paper's constant-time discipline is a
    caller-side contract, not just a helper-side one.

``lock-order``
    Local ``with``-nesting edges plus call-context edges (locks held at
    a call × locks transitively acquired by the callee) form a global
    lock-order graph; every elementary cycle — including re-acquisition
    self-cycles on non-reentrant locks — is reported once (rule
    ``lock-order``) with the full witness path.

``escape``
    ``owned-by:`` / ``guarded-by:`` state handed to another thread or
    process (closure capture, thread-target argument, executor/pool
    submission) fires rule ``thread-escape`` at the spawn site.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.report import Finding
from repro.analysis.wholeprogram.callgraph import Project
from repro.analysis.wholeprogram.summaries import (
    FunctionSummary,
    ModuleAnnotations,
    SummaryBuilder,
)

_OBS_RULES = {
    "branch": "secret-branch",
    "compare": "secret-compare",
    "len-sink": "secret-len",
    "telemetry": "telemetry-leak",
}

#: Bound on propagation rounds — generous; real call graphs converge in
#: a handful of rounds, this only guards against resolver bugs.
_MAX_ROUNDS = 32


Chain = Tuple[str, ...]


def _short(path: str) -> str:
    return path.rsplit("/", 2)[-1] if "/" in path else path


def _call_step(caller: FunctionSummary, line: int, callee_fid: str,
               param: str) -> str:
    return (f"{_short(caller.path)}:{line} {caller.qualname}() passes "
            f"secret to {callee_fid}({param}=...)")


class InterprocAnalysis:
    """One global evaluation over a fixed summary pool."""

    def __init__(self, project: Project,
                 summaries: Dict[str, FunctionSummary],
                 annotations: Dict[str, ModuleAnnotations]):
        self.project = project
        self.summaries = summaries
        self.annotations = annotations
        #: (fid, param) -> witness chain for "this param is secret".
        self.secret_params: Dict[Tuple[str, str], Chain] = {}
        #: (fid, param) -> witness chain for "this param is a secret length".
        self.len_params: Dict[Tuple[str, str], Chain] = {}

    # -- phase 1: secret-parameter propagation -------------------------

    def propagate(self) -> None:
        for _ in range(_MAX_ROUNDS):
            if not self._propagate_once():
                break

    def _propagate_once(self) -> bool:
        changed = False
        for caller in self.summaries.values():
            for edge in caller.calls:
                if edge.callee not in self.summaries:
                    continue
                for param, taint in edge.args.items():
                    key = (edge.callee, param)
                    step = _call_step(caller, edge.line, edge.callee, param)
                    if key not in self.secret_params:
                        chain = self._value_chain(caller, taint)
                        if chain is not None:
                            self.secret_params[key] = chain + (step,)
                            changed = True
                    if key not in self.len_params:
                        chain = self._length_chain(caller, taint)
                        if chain is not None:
                            self.len_params[key] = chain + (step,)
                            changed = True
        return changed

    def _value_chain(self, caller: FunctionSummary, taint) -> Optional[Chain]:
        """Witness that this argument carries a secret *value*, or None."""
        if taint.secret:
            return (sorted(taint.roots)[0],) if taint.roots else ("secret",)
        for param in sorted(taint.params):
            chain = self.secret_params.get((caller.fid, param))
            if chain is not None:
                return chain
        return None

    def _length_chain(self, caller: FunctionSummary, taint) -> Optional[Chain]:
        """Witness that this argument is a secret-derived *length*."""
        if taint.length:
            return ((sorted(taint.length_roots)[0],)
                    if taint.length_roots else ("len(secret)",))
        for param in sorted(taint.length_params):
            chain = self.secret_params.get((caller.fid, param))
            if chain is not None:
                return chain + (f"len({param}) in {caller.fid}",)
        for param in sorted(taint.params):
            chain = self.len_params.get((caller.fid, param))
            if chain is not None:
                return chain
        return None

    # -- phase 2: observation points ------------------------------------

    def taint_findings(self) -> List[Finding]:
        out: List[Finding] = []
        for summary in self.summaries.values():
            for obs in summary.obs:
                finding = self._fire_obs(summary, obs)
                if finding is not None:
                    out.append(finding)
        return out

    def _fire_obs(self, summary: FunctionSummary, obs) -> Optional[Finding]:
        chain: Optional[Chain] = None
        if obs.roots:
            chain = (sorted(obs.roots)[0],)
        if chain is None:
            for param in sorted(obs.requires):
                hit = self.secret_params.get((summary.fid, param))
                if hit is not None:
                    chain = hit
                    break
        if chain is None:
            for param in sorted(obs.requires_len):
                hit = self.len_params.get((summary.fid, param))
                if hit is not None:
                    chain = hit
                    break
        if chain is None:
            return None
        rule = _OBS_RULES[obs.kind]
        site = (f"{_short(summary.path)}:{obs.line} {summary.qualname}(): "
                f"{obs.detail or obs.kind}")
        return Finding(
            rule=rule, path=summary.path, line=obs.line, col=obs.col,
            symbol=summary.qualname,
            message=(f"secret reaches {obs.detail or obs.kind} "
                     f"via {len(chain)}-step flow"),
            def_line=summary.def_line, family="taint-flow",
            chain=chain + (site,),
        )

    # -- phase 3: interprocedural constant-time (ct-call) ---------------

    def const_time_findings(self) -> List[Finding]:
        """Flag every caller that feeds a secret into a bytes-compare.

        Compare observation points are lifted caller-ward: if ``helper``
        compares param ``x`` non-constant-time and ``mid`` passes its own
        param ``y`` as ``x``, then ``mid`` acquires a lifted compare site
        at the call line requiring ``y`` — so ``outer`` feeding a secret
        into ``mid`` is flagged too, at ``outer``'s own call site.
        """
        # fid -> list of (line, col, requires, target description, tail).
        lifted: Dict[str, List[Tuple[int, int, FrozenSet[str], str, Chain]]]
        lifted = {}
        for summary in self.summaries.values():
            entries = []
            for obs in summary.obs:
                if obs.kind == "compare" and obs.requires:
                    desc = (f"non-constant-time compare in "
                            f"{summary.fid} at {_short(summary.path)}:"
                            f"{obs.line}")
                    entries.append((obs.line, obs.col, obs.requires, desc, ()))
            if entries:
                lifted[summary.fid] = entries

        findings: List[Finding] = []
        emitted: Set[Tuple[str, int, int, str]] = set()

        for _ in range(_MAX_ROUNDS):
            changed = False
            for caller in self.summaries.values():
                for edge in caller.calls:
                    for (_line, _col, requires, desc, tail) in \
                            list(lifted.get(edge.callee, ())):
                        own_req: Set[str] = set()
                        definite: Optional[Chain] = None
                        for param in sorted(requires):
                            taint = edge.args.get(param)
                            if taint is None:
                                continue
                            if definite is None:
                                definite = self._value_chain(caller, taint)
                            own_req |= taint.params
                        step = (f"{_short(caller.path)}:{edge.line} "
                                f"{caller.qualname}() calls {edge.callee}()")
                        if definite is not None:
                            key = (caller.fid, edge.line, edge.col, desc)
                            if key not in emitted:
                                emitted.add(key)
                                findings.append(Finding(
                                    rule="ct-call", path=caller.path,
                                    line=edge.line, col=edge.col,
                                    symbol=caller.qualname,
                                    message=(f"secret argument reaches "
                                             f"{desc}; use compare_digest "
                                             f"in the helper or declassify"),
                                    def_line=caller.def_line,
                                    family="const-time",
                                    chain=definite + (step,) + tail + (desc,),
                                ))
                        frozen = frozenset(own_req)
                        if frozen:
                            entry = (edge.line, edge.col, frozen, desc,
                                     (step,) + tail)
                            bucket = lifted.setdefault(caller.fid, [])
                            if not any(e[0] == edge.line and e[1] == edge.col
                                       and e[3] == desc for e in bucket):
                                bucket.append(entry)
                                changed = True
            if not changed:
                break
        return findings

    # -- phase 4: lock-order cycles --------------------------------------

    def lock_findings(self) -> List[Finding]:
        reentrant = self._reentrant_lock_ids()
        # lock -> lock edges, each with one witness (path, line, desc).
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

        for summary in self.summaries.values():
            for held, acquired, line in summary.lock_edges:
                if held == acquired and acquired in reentrant:
                    continue
                edges.setdefault((held, acquired), (
                    summary.path, line,
                    f"{_short(summary.path)}:{line} {summary.qualname}() "
                    f"acquires {acquired} while holding {held}"))

        trans_acq = self._transitive_acquires()
        for summary in self.summaries.values():
            for edge in summary.calls:
                if not edge.held or edge.callee not in self.summaries:
                    continue
                for lock, via in trans_acq.get(edge.callee, {}).items():
                    for held in edge.held:
                        if held == lock and lock in reentrant:
                            continue
                        edges.setdefault((held, lock), (
                            summary.path, edge.line,
                            f"{_short(summary.path)}:{edge.line} "
                            f"{summary.qualname}() holds {held} and calls "
                            f"{edge.callee}(), which acquires {lock} ({via})"
                        ))

        return self._cycles_to_findings(edges)

    def _reentrant_lock_ids(self) -> Set[str]:
        out: Set[str] = set()
        all_locks: Set[str] = set()
        for summary in self.summaries.values():
            all_locks.update(summary.acquires)
            for held, acquired, _line in summary.lock_edges:
                all_locks.update((held, acquired))
        for lock in all_locks:
            module = lock.split(":", 1)[0]
            names = self.annotations.get(module)
            if names is not None and \
                    lock.rsplit(".", 1)[-1] in names.reentrant_locks:
                out.add(lock)
        return out

    def _transitive_acquires(self) -> Dict[str, Dict[str, str]]:
        """fid -> {lock id: short 'via' description} (fixpoint)."""
        acq: Dict[str, Dict[str, str]] = {}
        for summary in self.summaries.values():
            acq[summary.fid] = {
                lock: f"directly in {summary.fid}"
                for lock in summary.acquires
            }
        for _ in range(_MAX_ROUNDS):
            changed = False
            for summary in self.summaries.values():
                mine = acq[summary.fid]
                for edge in summary.calls:
                    for lock, via in acq.get(edge.callee, {}).items():
                        if lock not in mine:
                            mine[lock] = f"via {edge.callee}"
                            changed = True
            if not changed:
                break
        return acq

    def _cycles_to_findings(self,
                            edges: Dict[Tuple[str, str],
                                        Tuple[str, int, str]],
                            ) -> List[Finding]:
        adjacency: Dict[str, List[str]] = {}
        for (src, dst) in edges:
            adjacency.setdefault(src, []).append(dst)
        for neighbours in adjacency.values():
            neighbours.sort()

        findings: List[Finding] = []
        reported: Set[FrozenSet[str]] = set()

        def find_cycle(start: str) -> Optional[List[str]]:
            """Shortest path start -> ... -> start (BFS over the graph)."""
            queue: List[List[str]] = [[start]]
            seen = {start}
            while queue:
                path = queue.pop(0)
                for nxt in adjacency.get(path[-1], ()):
                    if nxt == start:
                        return path + [start]
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(path + [nxt])
            return None

        for start in sorted(adjacency):
            cycle = find_cycle(start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            witness: List[str] = []
            for src, dst in zip(cycle, cycle[1:]):
                witness.append(edges[(src, dst)][2])
            anchor_path, anchor_line, _ = edges[(cycle[0], cycle[1])]
            order = " -> ".join(cycle)
            if len(cycle) == 2 and cycle[0] == cycle[1]:
                message = (f"re-acquisition of non-reentrant lock "
                           f"{cycle[0]} (self-deadlock)")
            else:
                message = f"lock-order cycle: {order}"
            findings.append(Finding(
                rule="lock-order", path=anchor_path, line=anchor_line,
                col=0, symbol="<lock-graph>", message=message,
                family="lock-order", chain=tuple(witness),
            ))
        return findings

    # -- phase 5: thread/process escapes ---------------------------------

    def escape_findings(self) -> List[Finding]:
        out: List[Finding] = []
        seen: Set[Tuple[str, int, int, str]] = set()
        for summary in self.summaries.values():
            for escape in summary.escapes:
                key = (summary.path, escape.line, escape.col, escape.attr)
                if key in seen:
                    continue
                seen.add(key)
                if escape.annotation == "owned-by":
                    message = (f"self.{escape.attr} is owned-by "
                               f"{escape.owner}* but escapes to another "
                               f"thread via {escape.mechanism}")
                else:
                    message = (f"self.{escape.attr} is guarded-by "
                               f"{escape.owner} but a {escape.mechanism} "
                               f"crossing a thread boundary mutates it "
                               f"without the lock")
                out.append(Finding(
                    rule="thread-escape", path=summary.path,
                    line=escape.line, col=escape.col,
                    symbol=summary.qualname, message=message,
                    def_line=summary.def_line, family="escape",
                    chain=(f"{_short(summary.path)}:{escape.line} "
                           f"{summary.qualname}() spawn site "
                           f"[{escape.mechanism}]",),
                ))
        return out


def run_interproc(builder: SummaryBuilder) -> List[Finding]:
    """All interprocedural findings for one extracted summary pool."""
    analysis = InterprocAnalysis(builder.project, builder.summaries,
                                 builder.annotations)
    analysis.propagate()
    findings: List[Finding] = []
    findings.extend(analysis.taint_findings())
    findings.extend(analysis.const_time_findings())
    findings.extend(analysis.lock_findings())
    findings.extend(analysis.escape_findings())
    # Stable order + positional dedup (keep the first, richest chain).
    unique: Dict[Tuple[str, str, int, int], Finding] = {}
    for finding in findings:
        unique.setdefault(
            (finding.rule, finding.path, finding.line, finding.col), finding)
    return sorted(unique.values(),
                  key=lambda f: (f.path, f.line, f.col, f.rule))


__all__ = ["InterprocAnalysis", "run_interproc"]
