"""On-disk summary cache for the whole-program engine.

One JSON file holds, per analyzed module path:

- the sha256 of the module's source at extraction time,
- every extracted :class:`FunctionSummary` (serialized),
- the dependency digests: for each function, the returns-summary digest
  of every callee it composed with during extraction.

Validity is two-layered. A module's entry is *content-valid* when its
file hash matches. It is *dependency-valid* when every callee digest it
recorded still matches the callee's current returns summary — so
editing ``crypto/dpf.py`` in a way that changes what ``gen_dpf`` returns
invalidates the cached summaries of every caller module too, while a
comment-only edit (same extracted summaries) invalidates nothing
downstream. The engine re-extracts exactly the invalid set.

The global propagation phase (:mod:`.interproc`) always re-runs over the
full summary pool, so a cached run's findings are identical to a cold
run's by construction — the cache can only skip *extraction*, never
*evaluation*.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

#: Bump when summary extraction changes shape or semantics: any cache
#: written by a different analyzer version is ignored wholesale.
ANALYZER_VERSION = "wp-1"


def source_digest(source: str) -> str:
    """Content key for one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def load_cache(path: Optional[str]) -> Dict:
    """Load a summary cache; unreadable/stale caches are just empty."""
    if not path or not os.path.isfile(path):
        return {"version": ANALYZER_VERSION, "modules": {}}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError):
        return {"version": ANALYZER_VERSION, "modules": {}}
    if raw.get("version") != ANALYZER_VERSION or \
            not isinstance(raw.get("modules"), dict):
        return {"version": ANALYZER_VERSION, "modules": {}}
    return raw


def save_cache(path: str, modules: Dict[str, Dict]) -> None:
    """Persist the post-extraction summary pool (best effort)."""
    payload = {"version": ANALYZER_VERSION, "modules": modules}
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


__all__ = ["ANALYZER_VERSION", "source_digest", "load_cache", "save_cache"]
