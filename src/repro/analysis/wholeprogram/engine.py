"""Orchestration: parse → (cached) extraction fixpoint → global rules.

:func:`analyze_project` is the whole-program entry point used by
``repro.analysis.rules.analyze_paths``. It parses every file (cheap,
and the call-resolution tables need the full project either way), loads
content-valid summaries from the cache, extracts the rest to a fixpoint,
demotes cached entries whose callee digests drifted (see
:mod:`.cache`), and runs the interprocedural rule families over the
final pool. Findings come back in a deterministic order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.report import Finding
from repro.analysis.taint import ModuleSources
from repro.analysis.wholeprogram import cache as summary_cache
from repro.analysis.wholeprogram.callgraph import build_project
from repro.analysis.wholeprogram.interproc import run_interproc
from repro.analysis.wholeprogram.summaries import (
    FunctionSummary,
    SummaryBuilder,
)

#: Extraction fixpoint bound. Summaries compose through return taints,
#: so convergence depth tracks the longest helper chain — single digits
#: in practice; the bound only guards pathological inputs.
_MAX_PASSES = 10


def analyze_project(files: Sequence[Tuple[str, str]],
                    sources_for_path: Callable[[str], ModuleSources],
                    cache_path: str = "",
                    ) -> List[Finding]:
    """Run the whole-program analysis over ``(path, source)`` pairs."""
    project = build_project(files)
    builder = SummaryBuilder(project, sources_for_path)
    # Annotations feed lock reentrancy and escape checks during the
    # *global* phase too — parse them for every module up front so a
    # fully-cached run sees exactly what a cold run sees.
    for module in project.modules:
        builder.annotations_for(module)

    digests = {path: summary_cache.source_digest(source)
               for path, source in files}
    cached = summary_cache.load_cache(cache_path) if cache_path else None

    fixed = set()
    if cached is not None:
        for module, info in project.modules.items():
            entry = cached["modules"].get(info.path)
            if not entry or entry.get("sha") != digests.get(info.path):
                continue
            for fid, raw in entry.get("functions", {}).items():
                if fid in project.functions:
                    builder.summaries[fid] = FunctionSummary.from_dict(raw)
            for fid, deps in entry.get("deps", {}).items():
                builder.deps[fid] = dict(deps)
            fixed.add(module)

    live = sorted(m for m in project.modules if m not in fixed)
    _extract_fixpoint(builder, live)

    # Dependency invalidation: a cached module whose callee summaries
    # drifted must be re-extracted against the fresh pool.
    while True:
        demoted = [m for m in sorted(fixed) if _deps_stale(builder, m)]
        if not demoted:
            break
        fixed.difference_update(demoted)
        _extract_fixpoint(builder, demoted)

    if cache_path:
        modules: Dict[str, Dict] = {}
        for module, info in project.modules.items():
            fids = [fid for fid, f in project.functions.items()
                    if f.module == module and fid in builder.summaries]
            modules[info.path] = {
                "sha": digests[info.path],
                "functions": {fid: builder.summaries[fid].to_dict()
                              for fid in fids},
                "deps": {fid: builder.deps.get(fid, {}) for fid in fids},
            }
        summary_cache.save_cache(cache_path, modules)

    return run_interproc(builder)


def _extract_fixpoint(builder: SummaryBuilder,
                      modules: Sequence[str]) -> None:
    for _ in range(_MAX_PASSES):
        changed = False
        for module in modules:
            changed |= builder.extract_module(module)
        if not changed:
            break


def _deps_stale(builder: SummaryBuilder, module: str) -> bool:
    for fid, finfo in builder.project.functions.items():
        if finfo.module != module:
            continue
        for callee, digest in builder.deps.get(fid, {}).items():
            if builder.returns_digest(callee) != digest:
                return True
    return False


__all__ = ["analyze_project"]
