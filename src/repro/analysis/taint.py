"""Secret-taint tracking over Python ASTs (stdlib ``ast`` only).

The zero-leakage discipline (PAPER.md §2/§3) demands that nothing the
server or network observes — branches taken, message sizes, comparison
timing — depends on a client secret. This module implements the dataflow
half of that check: *declared* secret sources (function parameters,
attributes, and producer calls, configured per module in
:mod:`repro.analysis.rules`) are propagated through assignments, tuple
unpacking, operators, and intra-module calls, and three rules fire where
a secret reaches an observable channel:

- ``secret-branch`` — an ``if``/``while``/conditional-expression test
  depends on a secret *value* (early returns are caught because the
  branch itself is flagged).
- ``secret-compare`` — ``==``/``!=`` with a secret operand where either
  side is byte-string-like; these must use ``hmac.compare_digest``.
- ``secret-len`` — a secret-derived *length* reaches a serialization
  sink (``struct.pack``/``pack_into``, ``encode_frame``, ``.to_bytes``),
  i.e. a wire message whose size depends on a secret.
- ``telemetry-leak`` — a secret-tainted value (or secret-derived
  length) reaches an observability sink: a ``span(...)`` call, a span
  ``annotate``, a metric ``inc``/``set``/``observe``/``labels``, or a
  logger call (``info``/``warning``/...). Telemetry is an observable
  channel exactly like a wire message — a metric labelled by a
  secret-derived value turns series cardinality into a query log.

Deliberate carve-outs keep the signal high:

- ``x is None`` / ``is not None`` tests are untainted (presence checks
  on public structure, the idiom for "key absent" resolution).
- An ``if`` whose body is only ``raise`` (and ``assert``) is an
  abort-on-invalid guard: it never produces a secret-dependent *success*
  path of different shape, so it is not flagged.
- ``len(secret)`` yields only the weak LENGTH taint: branching on a
  length is not flagged (lengths of fixed-size blobs are public), but a
  LENGTH value flowing into a serialization sink still is.
- Storing into a container (``d[k] = v``, ``xs.append(v)``) does not
  taint the container; element loads from a tainted container do taint.
- ``for`` loops and comprehension filters are not flagged: iteration
  counts over fixed-size structures are public in this codebase.

Inter-procedural precision is per-module: every function is summarized
(the taint of its return value given its declared sources) to a fixpoint
over two passes, and call sites combine the summary with the taint of
the actual arguments. Unknown (cross-module) calls conservatively
propagate argument taint to their result.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.report import Finding

#: Calls whose result is byte-string-like; a tainted one is "secret bytes"
#: for the ``secret-compare`` rule.
BYTES_PRODUCERS = {
    "digest", "hexdigest", "tobytes", "to_bytes", "bytes",
    "leaf_hash", "node_hash", "key_digest",
}

#: Calls that erase taint: constant-time comparison and type checks.
SANITIZERS = {"compare_digest", "isinstance"}

#: Observability sinks for the ``telemetry-leak`` rule. Bare names are
#: matched for direct calls (``span(...)``); method names for attribute
#: calls (``sp.annotate(...)``, ``counter.inc(...)``, ``log.info(...)``).
#: ``log`` itself is deliberately absent: ``math.log``/``np.log`` are
#: attribute calls named ``log`` and are arithmetic, not telemetry.
TELEMETRY_NAME_SINKS = {"span"}
TELEMETRY_METHOD_SINKS = {
    "annotate", "inc", "set", "observe", "labels",
    "debug", "info", "warning", "error", "exception", "critical",
}

_SECRET_LINE_RE = re.compile(r"#\s*taint:\s*secret\b")


@dataclass(frozen=True)
class Taint:
    """Taint lattice element: VALUE (full secret) / LENGTH (weak) + bytes hint."""

    value: bool = False
    length: bool = False
    is_bytes: bool = False

    def __or__(self, other: "Taint") -> "Taint":
        return Taint(self.value or other.value,
                     self.length or other.length,
                     self.is_bytes or other.is_bytes)


UNTAINTED = Taint()


@dataclass
class ModuleSources:
    """Declared secret sources for one module.

    Attributes:
        params: function qualname (``Class.method``) or bare name →
            parameter names that carry secrets.
        source_calls: names of calls whose *result* is secret (e.g. a
            seed or key generator defined or used in this module).
        secret_attrs: ``self.<attr>`` names that hold secrets.
    """

    params: Dict[str, List[str]] = field(default_factory=dict)
    source_calls: Set[str] = field(default_factory=set)
    secret_attrs: Set[str] = field(default_factory=set)

    def params_for(self, qualname: str, name: str) -> List[str]:
        if qualname in self.params:
            return self.params[qualname]
        return self.params.get(name, [])


def _is_raise_only(stmts: Sequence[ast.stmt]) -> bool:
    return bool(stmts) and all(isinstance(s, ast.Raise) for s in stmts)


class _FunctionTaint:
    """Intra-procedural taint walk over one function body."""

    def __init__(self, module: "ModuleTaint", qualname: str,
                 node: ast.FunctionDef, collect: bool):
        self.module = module
        self.qualname = qualname
        self.node = node
        self.collect = collect
        self.env: Dict[str, Taint] = {}
        self.return_taint = UNTAINTED
        sources = module.sources
        for param in sources.params_for(qualname, node.name):
            self.env[param] = Taint(value=True)
        for attr in sources.secret_attrs:
            self.env[f"self.{attr}"] = Taint(value=True)

    def run(self) -> Taint:
        # Two sweeps so taint carried around loop back-edges is seen.
        for _ in range(2):
            for stmt in self.node.body:
                self.exec_stmt(stmt)
        return self.return_taint

    # -- findings ------------------------------------------------------

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.collect:
            self.module.emit(rule, node, self.qualname,
                             self.node.lineno, message)

    # -- statements ----------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval_expr(stmt.value) | self.line_taint(stmt)
            for target in stmt.targets:
                self.assign(target, taint, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self.eval_expr(stmt.value) | self.line_taint(stmt)
                self.assign(stmt.target, taint, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                self.env[name] = self.env.get(name, UNTAINTED) | taint
            elif (isinstance(stmt.target, ast.Attribute)
                  and isinstance(stmt.target.value, ast.Name)
                  and stmt.target.value.id == "self"):
                name = f"self.{stmt.target.attr}"
                self.env[name] = self.env.get(name, UNTAINTED) | taint
            # Subscript target: container store, deliberately not tracked.
        elif isinstance(stmt, ast.If):
            test = self.eval_expr(stmt.test)
            guard = not stmt.orelse and _is_raise_only(stmt.body)
            if test.value and not guard:
                self.emit("secret-branch", stmt,
                          "if condition depends on a secret value")
            # Path-insensitive join: run each arm from the pre-branch
            # state, then merge, so neither arm's assignments erase the
            # other's taint.
            before = dict(self.env)
            self.exec_block(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self.exec_block(stmt.orelse)
            self.env = self._join(after_body, self.env)
        elif isinstance(stmt, ast.While):
            test = self.eval_expr(stmt.test)
            if test.value:
                self.emit("secret-branch", stmt,
                          "while condition depends on a secret value")
            self._exec_loop(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.assign(stmt.target, self.eval_expr(stmt.iter), None)
            self._exec_loop(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taint = self.return_taint | self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taint = self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taint, None)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval_expr(stmt.exc)
        # Nested defs/classes, assert guards, imports, pass/break/...:
        # out of scope for the intra-procedural walk.

    def _exec_loop(self, body: Sequence[ast.stmt]) -> None:
        """Run a loop body twice (loop-carried taint) and join with the
        zero-iteration state."""
        before = dict(self.env)
        self.exec_block(body)
        self.exec_block(body)
        self.env = self._join(before, self.env)

    @staticmethod
    def _join(a: Dict[str, Taint], b: Dict[str, Taint]) -> Dict[str, Taint]:
        return {key: a.get(key, UNTAINTED) | b.get(key, UNTAINTED)
                for key in set(a) | set(b)}

    def line_taint(self, stmt: ast.stmt) -> Taint:
        """Inline ``# taint: secret`` annotation support."""
        if stmt.lineno in self.module.secret_lines:
            return Taint(value=True, is_bytes=True)
        return UNTAINTED

    def assign(self, target: ast.expr, taint: Taint,
               value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taint, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self.assign(sub_target, self.eval_expr(sub_value), sub_value)
            else:
                for sub_target in target.elts:
                    self.assign(sub_target, taint, None)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self.env[f"self.{target.attr}"] = taint
        # Subscript target: container store carve-out.

    # -- expressions ---------------------------------------------------

    def eval_expr(self, node: Optional[ast.expr]) -> Taint:
        if node is None:
            return UNTAINTED
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNTAINTED)
        if isinstance(node, ast.Constant):
            return Taint(is_bytes=isinstance(node.value, (bytes, bytearray)))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                key = f"self.{node.attr}"
                if key in self.env:
                    return self.env[key]
                return UNTAINTED
            return self.eval_expr(node.value)
        if isinstance(node, ast.Subscript):
            return self.eval_expr(node.value) | self.eval_expr(node.slice)
        if isinstance(node, ast.Compare):
            return self.eval_compare(node)
        if isinstance(node, ast.BoolOp):
            return self.union(node.values)
        if isinstance(node, ast.BinOp):
            return self.eval_expr(node.left) | self.eval_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.IfExp):
            test = self.eval_expr(node.test)
            if test.value:
                self.emit("secret-branch", node,
                          "conditional expression depends on a secret value")
            return (self.eval_expr(node.body) | self.eval_expr(node.orelse)
                    | Taint(value=test.value, length=test.length))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self.union(node.elts)
        if isinstance(node, ast.Dict):
            return self.union([v for v in node.values if v is not None])
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                self.assign(gen.target, self.eval_expr(gen.iter), None)
                for cond in gen.ifs:
                    self.eval_expr(cond)
            if isinstance(node, ast.DictComp):
                return self.eval_expr(node.key) | self.eval_expr(node.value)
            return self.eval_expr(node.elt)
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval_expr(node.value)
            self.assign(node.target, taint, node.value)
            return taint
        if isinstance(node, ast.JoinedStr):
            return self.union(node.values)
        if isinstance(node, ast.FormattedValue):
            return self.eval_expr(node.value)
        if isinstance(node, ast.Slice):
            return (self.eval_expr(node.lower) | self.eval_expr(node.upper)
                    | self.eval_expr(node.step))
        if isinstance(node, ast.Lambda):
            return UNTAINTED
        return UNTAINTED

    def union(self, nodes: Sequence[ast.expr]) -> Taint:
        taint = UNTAINTED
        for node in nodes:
            taint = taint | self.eval_expr(node)
        return taint

    def eval_compare(self, node: ast.Compare) -> Taint:
        operands = [node.left] + list(node.comparators)
        # Identity tests against None are presence checks on public
        # structure ("record absent"), never data-dependent timing.
        if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            for operand in operands:
                self.eval_expr(operand)
            return UNTAINTED
        taints = [self.eval_expr(operand) for operand in operands]
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq and any(t.value for t in taints) and \
                any(t.is_bytes for t in taints):
            self.emit("secret-compare", node,
                      "==/!= on secret bytes leaks through comparison "
                      "timing; use hmac.compare_digest")
        return Taint(value=any(t.value for t in taints),
                     length=any(t.length for t in taints))

    def eval_call(self, node: ast.Call) -> Taint:
        func = node.func
        name = None
        base_taint = UNTAINTED
        struct_base = False
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            base_taint = self.eval_expr(func.value)
            struct_base = isinstance(func.value, ast.Name) and \
                func.value.id == "struct"
        arg_nodes = list(node.args) + [kw.value for kw in node.keywords]

        if name in SANITIZERS:
            for arg in arg_nodes:
                self.eval_expr(arg)
            return UNTAINTED

        if name == "len" and len(node.args) == 1:
            inner = self.eval_expr(node.args[0])
            return Taint(length=inner.value or inner.length)

        arg_taint = self.union(arg_nodes) | base_taint

        # Serialization sinks: a secret-derived length must not shape a
        # wire message.
        is_sink = (name == "encode_frame"
                   or (struct_base and name in ("pack", "pack_into"))
                   or (isinstance(func, ast.Attribute) and name == "to_bytes"))
        if is_sink:
            for arg in arg_nodes:
                if self.eval_expr(arg).length:
                    self.emit(
                        "secret-len", node,
                        f"secret-derived length reaches serialization "
                        f"sink {name}()",
                    )
                    break

        # Observability sinks: span attributes, metric labels/values, and
        # log fields are observable channels; nothing secret-tainted (by
        # value or derived length) may be recorded in them.
        is_telemetry = (
            (isinstance(func, ast.Name) and name in TELEMETRY_NAME_SINKS)
            or (isinstance(func, ast.Attribute)
                and name in TELEMETRY_METHOD_SINKS)
        )
        if is_telemetry:
            for arg in arg_nodes:
                taint = self.eval_expr(arg)
                if taint.value or taint.length:
                    self.emit(
                        "telemetry-leak", node,
                        f"secret-tainted value recorded in telemetry "
                        f"sink {name}(); metric labels, span attributes "
                        f"and log fields must be independent of client "
                        f"secrets",
                    )
                    break

        result = arg_taint
        if name in self.module.sources.source_calls:
            result = result | Taint(value=True)
        summary = self.module.summary_for(func)
        if summary is not None:
            result = result | summary
        if name in BYTES_PRODUCERS:
            result = result | Taint(is_bytes=True)
        return result


class ModuleTaint:
    """Taint analysis of one module: summaries to fixpoint, then findings."""

    def __init__(self, tree: ast.Module, source: str, path: str,
                 sources: ModuleSources):
        self.tree = tree
        self.path = path
        self.sources = sources
        self.summaries: Dict[str, Taint] = {}
        self.findings: List[Finding] = []
        self._seen: Set[Tuple] = set()
        self.secret_lines: Set[int] = {
            lineno for lineno, text in enumerate(source.splitlines(), start=1)
            if _SECRET_LINE_RE.search(text)
        }

    def functions(self) -> List[Tuple[str, ast.FunctionDef]]:
        out: List[Tuple[str, ast.FunctionDef]] = []
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((node.name, node))
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        out.append((f"{node.name}.{item.name}", item))
        return out

    def summary_for(self, func: ast.expr) -> Optional[Taint]:
        if isinstance(func, ast.Name):
            return self.summaries.get(func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and func.value.id == "self":
            return self.summaries.get(func.attr)
        return None

    def emit(self, rule: str, node: ast.AST, symbol: str, def_line: int,
             message: str) -> None:
        key = (rule, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule=rule, path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            symbol=symbol, message=message, def_line=def_line,
        ))

    def run(self) -> List[Finding]:
        funcs = self.functions()
        # Two summary passes reach a fixpoint for the acyclic call
        # structure these modules have; findings only on the final pass.
        for _ in range(2):
            for qualname, node in funcs:
                taint = _FunctionTaint(self, qualname, node, collect=False).run()
                self.summaries[qualname] = taint
                self.summaries[node.name] = taint
        for qualname, node in funcs:
            _FunctionTaint(self, qualname, node, collect=True).run()
        return self.findings


__all__ = [
    "Taint",
    "UNTAINTED",
    "ModuleSources",
    "ModuleTaint",
    "BYTES_PRODUCERS",
    "SANITIZERS",
    "TELEMETRY_NAME_SINKS",
    "TELEMETRY_METHOD_SINKS",
]
