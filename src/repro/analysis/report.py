"""Findings, suppression pragmas, baselines, and report rendering.

The analyzer's output contract lives here so every rule family (taint,
lock discipline, wire shape) reports through one channel:

- :class:`Finding` — one rule violation, anchored to file/line/symbol.
- ``# lint: allow(<rule>) — <reason>`` pragmas — in-source suppressions.
  A reason is **mandatory**; a pragma without one is itself reported
  (rule ``bad-pragma``) and suppresses nothing.
- A JSON baseline file — repo-level suppressions for findings that are
  accepted long-term. Every entry must carry a ``justification``.
- Text and JSON renderers plus the process exit codes
  (0 clean / 1 findings / 2 internal error).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2

#: ``# lint: allow(rule-a, rule-b) — why this is fine``
_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*([\w\-, ]+?)\s*\)\s*(?:[—–:-]+\s*(\S.*))?$"
)


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str  # enclosing function/class qualname, or "<module>"
    message: str
    def_line: int = 0  # line of the enclosing ``def`` (0 = none)
    family: str = "intra"  # rule family: intra | taint-flow | lock-order
    #                        | escape | const-time
    chain: Tuple[str, ...] = ()  # witness call chain (interprocedural)

    def key(self) -> Tuple[str, str, int, int, str]:
        return (self.rule, self.path, self.line, self.col, self.message)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "family": self.family,
        }
        if self.chain:
            out["chain"] = list(self.chain)
        return out

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: [{self.rule}] "
                f"{self.symbol}: {self.message}")


@dataclass
class Pragma:
    """A parsed ``# lint: allow(...)`` comment."""

    line: int
    rules: List[str]
    reason: str
    used: bool = field(default=False)


def parse_pragmas(source: str, path: str) -> Tuple[List[Pragma], List[Finding]]:
    """Extract suppression pragmas; reasonless ones become findings."""
    pragmas: List[Pragma] = []
    bad: List[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
        reason = (match.group(2) or "").strip()
        if not reason:
            bad.append(Finding(
                rule="bad-pragma", path=path, line=lineno, col=0,
                symbol="<module>",
                message="allow pragma must state a reason after an em-dash",
            ))
            continue
        pragmas.append(Pragma(line=lineno, rules=rules, reason=reason))
    return pragmas, bad


def apply_pragmas(findings: List[Finding],
                  pragmas_by_path: Dict[str, List[Pragma]],
                  ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (unsuppressed, suppressed).

    A pragma suppresses a finding when the finding's rule is listed and
    the pragma sits on the flagged line, the line above it, or the line
    of the enclosing ``def`` (function-scoped suppression).
    """
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        hit = None
        for pragma in pragmas_by_path.get(finding.path, []):
            if finding.rule not in pragma.rules:
                continue
            if pragma.line in (finding.line, finding.line - 1, finding.def_line):
                hit = pragma
                break
        if hit is not None:
            hit.used = True
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


@dataclass
class BaselineEntry:
    """A repo-level accepted finding: rule + path suffix + symbol."""

    rule: str
    path: str
    symbol: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        return (finding.rule == self.rule
                and finding.symbol == self.symbol
                and finding.path.endswith(self.path))


def load_baseline(path: Optional[str]) -> Tuple[List[BaselineEntry], List[Finding]]:
    """Load a baseline file; malformed entries become findings."""
    if not path:
        return [], []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as exc:
        return [], [Finding(
            rule="bad-baseline", path=path, line=0, col=0, symbol="<file>",
            message=f"unreadable baseline: {exc}",
        )]
    entries: List[BaselineEntry] = []
    bad: List[Finding] = []
    for i, item in enumerate(raw.get("entries", [])):
        justification = str(item.get("justification", "")).strip()
        if not justification:
            bad.append(Finding(
                rule="bad-baseline", path=path, line=0, col=0,
                symbol=f"entries[{i}]",
                message="baseline entry lacks a justification",
            ))
            continue
        entries.append(BaselineEntry(
            rule=str(item.get("rule", "")),
            path=str(item.get("path", "")),
            symbol=str(item.get("symbol", "")),
            justification=justification,
        ))
    return entries, bad


def apply_baseline(findings: List[Finding], entries: List[BaselineEntry],
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (unsuppressed, baselined)."""
    kept: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if any(entry.matches(finding) for entry in entries):
            baselined.append(finding)
        else:
            kept.append(finding)
    return kept, baselined


def render_text(findings: List[Finding], suppressed: int, baselined: int,
                files: int) -> str:
    """Human-readable report."""
    lines = [finding.render() for finding in
             sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))]
    lines.append(
        f"{len(findings)} finding(s) in {files} file(s) "
        f"({suppressed} pragma-suppressed, {baselined} baselined)"
    )
    return "\n".join(lines)


#: Version of the ``--json`` report layout. Schema 2 adds the top-level
#: ``schema`` marker, a ``family`` key on every finding, and a ``chain``
#: key (witness call path) on interprocedural findings. All schema-1
#: keys are preserved unchanged — consumers written against schema 1
#: keep working.
JSON_SCHEMA_VERSION = 2


def render_json(findings: List[Finding], suppressed: List[Finding],
                baselined: List[Finding], files: int) -> str:
    """Machine-readable report for trend tracking."""
    return json.dumps({
        "schema": JSON_SCHEMA_VERSION,
        "files": files,
        "counts": {
            "unsuppressed": len(findings),
            "suppressed": len(suppressed),
            "baselined": len(baselined),
        },
        "findings": [f.to_dict() for f in
                     sorted(findings, key=lambda f: (f.path, f.line, f.col))],
        "suppressed": [f.to_dict() for f in suppressed],
        "baselined": [f.to_dict() for f in baselined],
    }, indent=2, sort_keys=True)


__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL",
    "JSON_SCHEMA_VERSION",
    "Finding",
    "Pragma",
    "BaselineEntry",
    "parse_pragmas",
    "apply_pragmas",
    "load_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
]
