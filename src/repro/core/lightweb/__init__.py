"""The lightweb architecture (paper §3-§4): universes, publishers, browsers.

A lightweb deployment is "centered around a content universe, a collection
of millions or billions of lightweb pages hosted on a single content
distribution network ... managed within a single administrative domain"
(§3.1). This package implements every piece of that architecture:

- :mod:`repro.core.lightweb.paths` — the lightweb path grammar.
- :mod:`repro.core.lightweb.blobs` — fixed-size code/data blob formats.
- :mod:`repro.core.lightweb.lightscript` — the restricted page-logic
  language standing in for the paper's JavaScript code blobs.
- :mod:`repro.core.lightweb.publisher` — site authoring and compilation to
  one code blob + many data blobs.
- :mod:`repro.core.lightweb.universe` — a content universe with fixed blob
  geometry and path-prefix ownership.
- :mod:`repro.core.lightweb.cdn` — CDNs hosting universes behind logical
  ZLTP servers, tiering (§3.5) and peering.
- :mod:`repro.core.lightweb.browser` — the lightweb client: code-blob
  caching, the fixed data-fetch budget, local storage, rendering.
- :mod:`repro.core.lightweb.access` — §3.3 access control and §3.4
  paywalls.
- :mod:`repro.core.lightweb.ads` — §3.4 local ad targeting.
"""

from repro.core.lightweb.paths import LightwebPath, parse_path, validate_domain
from repro.core.lightweb.blobs import pack_blob, unpack_blob, chunk_content
from repro.core.lightweb.lightscript import LightscriptProgram, Route
from repro.core.lightweb.storage import LocalStorage
from repro.core.lightweb.publisher import Publisher, Site
from repro.core.lightweb.universe import ContentUniverse, UniverseTier
from repro.core.lightweb.cdn import Cdn
from repro.core.lightweb.browser import LightwebBrowser, RenderedPage
from repro.core.lightweb.access import AccountKeyring, ProtectedPublisher
from repro.core.lightweb.ads import AdInventory, select_ad
from repro.core.lightweb.peering import DomainRegistry
from repro.core.lightweb.scheduler import CoverTrafficSchedule, run_scheduled_day
from repro.core.lightweb.persistence import load_universe, save_universe
from repro.core.lightweb.search import build_search_pages, search_route

__all__ = [
    "LightwebPath",
    "parse_path",
    "validate_domain",
    "pack_blob",
    "unpack_blob",
    "chunk_content",
    "LightscriptProgram",
    "Route",
    "LocalStorage",
    "Publisher",
    "Site",
    "ContentUniverse",
    "UniverseTier",
    "Cdn",
    "LightwebBrowser",
    "RenderedPage",
    "AccountKeyring",
    "ProtectedPublisher",
    "AdInventory",
    "select_ad",
    "DomainRegistry",
    "CoverTrafficSchedule",
    "run_scheduled_day",
    "load_universe",
    "save_universe",
    "build_search_pages",
    "search_route",
]
