"""Lightscript: the restricted page-logic language inside code blobs.

The paper puts "a blob of JavaScript code and style information" in each
domain's code blob (§3.1); the code receives the requested path, makes "a
small, fixed number of private-GET requests" (§3.2), and renders the page
from the fetched JSON. Running real JavaScript is neither available here nor
necessary — the *interface* between code blob and browser is what matters,
and it has exactly three verbs: match a path, plan a fixed number of data
fetches, render text. Lightscript is a declarative JSON program with exactly
those verbs (see DESIGN.md for the substitution argument):

- **routes** — ordered regex patterns over the path remainder ("We envision
  publishers using regular expressions to parse paths", §3.2).
- **fetches** — per-route data-path templates, expanded with regex captures
  (``{1}``), local-storage values (``{local.zip|10025}``) and query
  parameters (``{query.q}``). Never more than the universe's fetch budget;
  the browser pads with dummy fetches so the on-the-wire count is constant.
- **render** — a text template over the same substitutions plus fetched
  JSON fields (``{data0.title}``); ``[[path|label]]`` spans become links.
- **prompts** — local-storage keys the page needs the user to provide once
  (the postal-code flow of §3.3).

Programs are data, so a malicious publisher's code blob can at worst render
odd text — it cannot touch other domains' storage or exceed its fetch
budget, because the *browser* enforces both.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import BudgetExceededError, LightscriptError

LIGHTSCRIPT_VERSION = 1
MAX_ROUTES = 256
MAX_TEMPLATE_LENGTH = 8192

_PLACEHOLDER_RE = re.compile(r"\{([^{}]+)\}")


@dataclass(frozen=True)
class Route:
    """One route: a pattern, its data fetches, and its render template.

    Attributes:
        pattern: regex matched against the path remainder (e.g. ``"^/$"``).
        fetches: data-path templates to fetch when the route matches.
        render: text template producing the page.
        prompts: local-storage keys that must exist (the browser asks the
            user for missing ones before planning fetches).
    """

    pattern: str
    fetches: Sequence[str] = ()
    render: str = ""
    prompts: Sequence[str] = ()

    def compiled(self) -> re.Pattern:
        """The compiled pattern (validated at program load)."""
        return re.compile(self.pattern)


class LightscriptProgram:
    """A domain's page logic, as carried in its code blob."""

    def __init__(self, domain: str, routes: List[Route],
                 style: Optional[Dict[str, Any]] = None,
                 version: int = LIGHTSCRIPT_VERSION):
        """Validate and compile a program.

        Raises:
            LightscriptError: on bad patterns, oversized templates, or too
                many routes.
        """
        if version != LIGHTSCRIPT_VERSION:
            raise LightscriptError(f"unsupported lightscript version {version}")
        if not routes:
            raise LightscriptError("program needs at least one route")
        if len(routes) > MAX_ROUTES:
            raise LightscriptError(f"more than {MAX_ROUTES} routes")
        self.domain = domain
        self.routes = list(routes)
        self.style = dict(style) if style else {}
        self.version = version
        self._compiled = []
        for route in self.routes:
            if len(route.render) > MAX_TEMPLATE_LENGTH:
                raise LightscriptError("render template too long")
            try:
                self._compiled.append(route.compiled())
            except re.error as exc:
                raise LightscriptError(
                    f"bad route pattern {route.pattern!r}: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # Serialisation (this IS the code blob payload)
    # ------------------------------------------------------------------

    def to_json(self) -> bytes:
        """Serialise to the code-blob payload."""
        obj = {
            "version": self.version,
            "domain": self.domain,
            "style": self.style,
            "routes": [
                {
                    "pattern": route.pattern,
                    "fetches": list(route.fetches),
                    "render": route.render,
                    "prompts": list(route.prompts),
                }
                for route in self.routes
            ],
        }
        return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, payload: bytes) -> "LightscriptProgram":
        """Parse and validate a code-blob payload.

        Raises:
            LightscriptError: on malformed or hostile input.
        """
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise LightscriptError(f"malformed program JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise LightscriptError("program must be a JSON object")
        try:
            routes = [
                Route(
                    pattern=str(entry["pattern"]),
                    fetches=tuple(str(f) for f in entry.get("fetches", [])),
                    render=str(entry.get("render", "")),
                    prompts=tuple(str(p) for p in entry.get("prompts", [])),
                )
                for entry in obj["routes"]
            ]
            return cls(
                domain=str(obj["domain"]),
                routes=routes,
                style=obj.get("style") or {},
                version=int(obj.get("version", LIGHTSCRIPT_VERSION)),
            )
        except (KeyError, TypeError) as exc:
            raise LightscriptError(f"program structure invalid: {exc}") from exc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def match(self, rest: str):
        """Find the first route matching a path remainder.

        Returns:
            ``(route, match_object)`` or ``(None, None)``.
        """
        for route, pattern in zip(self.routes, self._compiled):
            found = pattern.search(rest)
            if found:
                return route, found
        return None, None

    def _substitute(self, template: str, match, storage: Dict[str, Any],
                    query: Dict[str, str],
                    data: Optional[List[Optional[Dict[str, Any]]]] = None) -> str:
        def resolve(placeholder: str) -> str:
            name, _, default = placeholder.partition("|")
            name = name.strip()
            if name.isdigit():
                try:
                    value = match.group(int(name)) if match else None
                except IndexError:
                    value = None
                return value if value is not None else default
            if name.startswith("local."):
                value = storage.get(name[len("local."):])
                return _stringify(value) if value is not None else default
            if name.startswith("query."):
                return query.get(name[len("query."):], default)
            if name.startswith("data"):
                head, _, field_path = name.partition(".")
                try:
                    index = int(head[len("data"):])
                except ValueError:
                    return default
                if data is None or not 0 <= index < len(data) or data[index] is None:
                    return default
                value = _navigate(data[index], field_path)
                return _stringify(value) if value is not None else default
            return default

        return _PLACEHOLDER_RE.sub(lambda m: resolve(m.group(1)), template)

    def plan_fetches(self, route: Route, match, storage: Dict[str, Any],
                     query: Dict[str, str], budget: int) -> List[str]:
        """Expand a route's fetch templates into concrete data paths.

        Raises:
            BudgetExceededError: if the route asks for more fetches than the
                universe's fixed per-page budget — the §3.2 invariant the
                browser must enforce.
        """
        if len(route.fetches) > budget:
            raise BudgetExceededError(
                f"route {route.pattern!r} plans {len(route.fetches)} fetches; "
                f"universe budget is {budget}"
            )
        return [
            self._substitute(template, match, storage, query)
            for template in route.fetches
        ]

    def render(self, route: Route, match, storage: Dict[str, Any],
               query: Dict[str, str],
               data: List[Optional[Dict[str, Any]]]) -> str:
        """Produce the page text from the fetched data blobs."""
        return self._substitute(route.render, match, storage, query, data)


def _navigate(obj: Any, field_path: str) -> Any:
    """Walk dotted field access into parsed JSON (dicts and list indices)."""
    if not field_path:
        return obj
    current = obj
    for part in field_path.split("."):
        if isinstance(current, dict):
            current = current.get(part)
        elif isinstance(current, list) and part.isdigit():
            index = int(part)
            current = current[index] if index < len(current) else None
        else:
            return None
        if current is None:
            return None
    return current


def _stringify(value: Any) -> str:
    """Render a JSON value into page text."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, list):
        return "\n".join(_stringify(item) for item in value)
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True)
    return ""


__all__ = ["LightscriptProgram", "Route", "LIGHTSCRIPT_VERSION"]
