"""Cover-traffic scheduling: flattening the §3.2 timing channel.

ZLTP leaves visit *timing* visible; :mod:`repro.netsim.timing` shows an
observer classifying users from it. The standard countermeasure — and the
natural extension the paper's "even this leakage is modest" invites — is a
fixed fetch schedule: the client emits exactly one page view per grid slot
inside a fixed daily window, serving queued real visits when there are any
and indistinguishable dummy page views otherwise. On the wire every day of
every user now looks identical; the price is added page-load latency
(waiting for the next slot) and dummy request volume (billed like real
ones, §4), both of which :class:`ScheduledDay` quantifies and benchmark A4
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class ScheduledDay:
    """The outcome of pushing one day's real visits through the schedule.

    Attributes:
        fetch_times: when fetches happen on the wire — the full fixed grid,
            independent of the user's behaviour.
        assignments: ``(real_time, fetch_time)`` per real visit, in order.
        n_dummies: grid slots filled with dummy page views.
        dropped: real visits that could not be served (arrived after the
            last slot, or exceeded the day's slot capacity).
    """

    fetch_times: Tuple[float, ...]
    assignments: Tuple[Tuple[float, float], ...]
    n_dummies: int
    dropped: Tuple[float, ...] = ()

    @property
    def latencies(self) -> List[float]:
        """Queueing delay per served real visit."""
        return [fetch - real for real, fetch in self.assignments]

    @property
    def mean_latency(self) -> float:
        """Mean queueing delay (0 if no real visits were served)."""
        lats = self.latencies
        return sum(lats) / len(lats) if lats else 0.0

    @property
    def overhead(self) -> float:
        """Dummy fraction of the day's traffic."""
        total = len(self.fetch_times)
        return self.n_dummies / total if total else 0.0


class CoverTrafficSchedule:
    """A fixed daily fetch grid with FIFO service of real visits."""

    def __init__(self, period_seconds: float,
                 window_hours: Tuple[float, float] = (7.0, 23.0)):
        """Create a schedule.

        Args:
            period_seconds: gap between consecutive fetch slots.
            window_hours: daily (start, end) of the active grid. Everybody
                using the same parameters produces identical wire timing.
        """
        if period_seconds <= 0:
            raise ReproError("period must be positive")
        start, end = window_hours
        if not 0 <= start < end <= 24:
            raise ReproError("window must satisfy 0 <= start < end <= 24")
        self.period_seconds = float(period_seconds)
        self.window_hours = (float(start), float(end))

    def grid(self) -> List[float]:
        """The day's fetch times (seconds since midnight)."""
        start, end = self.window_hours
        times = []
        t = start * 3600
        while t < end * 3600:
            times.append(t)
            t += self.period_seconds
        return times

    def apply(self, real_times: Sequence[float]) -> ScheduledDay:
        """Serve one day of real visits on the fixed grid.

        Real visits queue FIFO; each grid slot serves the oldest queued
        visit that has already arrived, else a dummy. Visits still queued
        after the last slot are reported as dropped (a real client would
        roll them into tomorrow's grid).
        """
        grid = self.grid()
        pending = sorted(float(t) for t in real_times)
        assignments: List[Tuple[float, float]] = []
        next_real = 0
        dummies = 0
        for slot in grid:
            if next_real < len(pending) and pending[next_real] <= slot:
                assignments.append((pending[next_real], slot))
                next_real += 1
            else:
                dummies += 1
        return ScheduledDay(
            fetch_times=tuple(grid),
            assignments=tuple(assignments),
            n_dummies=dummies,
            dropped=tuple(pending[next_real:]),
        )

    def daily_fetches(self) -> int:
        """Page views per day on the wire (drives the §4 bill)."""
        return len(self.grid())

    def dummy_cost_multiplier(self, real_pages_per_day: float) -> float:
        """How much larger the §4 bill gets under this schedule."""
        if real_pages_per_day <= 0:
            raise ReproError("real_pages_per_day must be positive")
        return self.daily_fetches() / real_pages_per_day


def run_scheduled_day(browser, clock, schedule: CoverTrafficSchedule,
                      real_visits: Sequence[Tuple[float, str]]) -> ScheduledDay:
    """Drive a real browser through one scheduled day on a simulated clock.

    Args:
        browser: a connected :class:`~repro.core.lightweb.browser.LightwebBrowser`.
        clock: the :class:`~repro.netsim.simnet.SimClock` its transports use.
        schedule: the cover-traffic grid.
        real_visits: ``(arrival_time_seconds, path)`` pairs.

    Returns:
        The :class:`ScheduledDay` accounting; on the wire the browser made
        exactly one page view per grid slot.
    """
    pending = sorted(real_visits)
    plan = schedule.apply([time for time, _path in real_visits])
    next_real = 0
    for slot in plan.fetch_times:
        clock.sleep_until(slot)
        if (next_real < len(pending)
                and pending[next_real][0] <= slot
                and next_real < len(plan.assignments)):
            browser.visit(pending[next_real][1])
            next_real += 1
        else:
            browser.dummy_page_view()
    return plan


__all__ = ["CoverTrafficSchedule", "ScheduledDay", "run_scheduled_day"]
