"""Per-domain client-side local storage (§3.2, §3.3).

"Many of the client-side JavaScript features that today's web provides are
available in lightweb: client-side interaction, local storage, and so on.
(As today, the lightweb browser enforces domain separation on local storage
and other client-side state.)"

The weather.com example of §3.3 — cache the user's postal code locally,
fetch a per-postal-code blob on later visits — runs on exactly this class.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.lightweb.paths import validate_domain
from repro.errors import CapacityError

DEFAULT_QUOTA_BYTES = 64 * 1024


class LocalStorage:
    """Domain-separated key-value storage inside the browser."""

    def __init__(self, quota_bytes: int = DEFAULT_QUOTA_BYTES):
        """Create storage with a per-domain byte quota."""
        if quota_bytes < 1:
            raise CapacityError("quota must be positive")
        self.quota_bytes = quota_bytes
        self._domains: Dict[str, Dict[str, Any]] = {}

    def _bucket(self, domain: str) -> Dict[str, Any]:
        domain = validate_domain(domain)
        return self._domains.setdefault(domain, {})

    def _usage(self, bucket: Dict[str, Any]) -> int:
        return sum(
            len(key.encode("utf-8")) + len(json.dumps(value).encode("utf-8"))
            for key, value in bucket.items()
        )

    def get(self, domain: str, key: str, default: Any = None) -> Any:
        """Read a value from a domain's bucket."""
        return self._bucket(domain).get(key, default)

    def set(self, domain: str, key: str, value: Any) -> None:
        """Write a JSON-serialisable value into a domain's bucket.

        Raises:
            CapacityError: if the write would exceed the domain quota.
        """
        json.dumps(value)  # force serialisability now, not at read time
        bucket = self._bucket(domain)
        old = bucket.get(key)
        bucket[key] = value
        if self._usage(bucket) > self.quota_bytes:
            if old is None:
                del bucket[key]
            else:
                bucket[key] = old
            raise CapacityError(
                f"domain {domain} exceeded its {self.quota_bytes}-byte quota"
            )

    def delete(self, domain: str, key: str) -> None:
        """Remove a key (no error if absent)."""
        self._bucket(domain).pop(key, None)

    def keys(self, domain: str):
        """Keys stored for a domain."""
        return sorted(self._bucket(domain))

    def clear_domain(self, domain: str) -> None:
        """Wipe one domain's bucket (e.g. 'forget this site')."""
        self._domains.pop(validate_domain(domain), None)

    def usage_bytes(self, domain: str) -> int:
        """Approximate bytes used by a domain."""
        return self._usage(self._bucket(domain))


__all__ = ["LocalStorage", "DEFAULT_QUOTA_BYTES"]
