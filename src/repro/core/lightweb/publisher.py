"""Publishers: author sites, compile them to blobs, push to CDNs (§3.1).

"Lightweb publishers (cnn.com, wikipedia.org, etc.) produce content as: a
single root 'code' blob that contains a blob of JavaScript code and style
information and a large number of 'data' blobs that contain relatively small
JSON data objects."

A :class:`Site` collects pages and (optionally) a custom lightscript
program; :meth:`Site.compile` performs the publisher-side build: seal
protected pages, chunk over-long bodies into `next`-linked continuations,
and emit exactly one code payload plus a map of data payloads.
:class:`Publisher` pushes compiled sites into CDN universes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import math

from repro.core.lightweb.access import ProtectedPublisher
from repro.core.lightweb.blobs import chunk_content, encode_json_payload
from repro.core.lightweb.lightscript import LightscriptProgram, Route
from repro.core.lightweb.paths import validate_domain
from repro.crypto.merkle import MerkleTree, encode_proof
from repro.errors import CapacityError, PathError

#: Keys of the integrity wrapper around each data payload.
INTEGRITY_CONTENT = "c"
INTEGRITY_PROOF = "p"
INTEGRITY_INDEX = "i"
#: The code-blob style key carrying the site's Merkle root.
INTEGRITY_ROOT_KEY = "integrity_root"

#: The default program: serve each page from the data blob at its own path.
DEFAULT_RENDER = "# {data0.title}\n\n{data0.body}"


class CompiledSite:
    """The output of a publisher build: one code payload + data payloads."""

    def __init__(self, domain: str, code_payload: bytes,
                 data_payloads: Dict[str, bytes]):
        self.domain = domain
        self.code_payload = code_payload
        self.data_payloads = dict(data_payloads)

    @property
    def n_data_blobs(self) -> int:
        """How many data blobs the site occupies in a universe."""
        return len(self.data_payloads)

    def total_data_bytes(self) -> int:
        """Sum of data payload sizes (pre-padding)."""
        return sum(len(p) for p in self.data_payloads.values())


class Site:
    """One lightweb site under a single domain."""

    def __init__(self, domain: str):
        self.domain = validate_domain(domain)
        self._pages: Dict[str, Dict[str, Any]] = {}
        self._protected_paths: set = set()
        self._program: Optional[LightscriptProgram] = None
        self._protection: Optional[ProtectedPublisher] = None
        self._integrity = False
        self._search_max_results: Optional[int] = None

    # ------------------------------------------------------------------
    # Authoring
    # ------------------------------------------------------------------

    def add_page(self, rest: str, content) -> None:
        """Add a page at a path remainder (``"/"``-prefixed).

        Args:
            rest: path below the domain, e.g. ``"/2023/06/25/uganda"``.
            content: a JSON dict, or a plain string (wrapped as the body).
        """
        rest = self._check_rest(rest)
        if isinstance(content, str):
            content = {"title": rest.strip("/") or self.domain, "body": content}
        if not isinstance(content, dict):
            raise PathError("page content must be a dict or a string")
        self._pages[rest] = dict(content)

    def enable_access_control(self, master_secret: bytes,
                              max_users: int = 1024) -> ProtectedPublisher:
        """Turn on §3.3 access control; returns the key manager."""
        if self._protection is None:
            self._protection = ProtectedPublisher(
                self.domain, master_secret, max_users=max_users
            )
        return self._protection

    def add_protected_page(self, rest: str, content) -> None:
        """Add a page that will be sealed at compile time (§3.3/§3.4).

        Raises:
            PathError: if access control was not enabled first.
        """
        if self._protection is None:
            raise PathError(
                f"enable_access_control() before adding protected pages to "
                f"{self.domain}"
            )
        self.add_page(rest, content)
        self._protected_paths.add(self._check_rest(rest))

    def set_program(self, program: LightscriptProgram) -> None:
        """Install a custom lightscript program (dynamic content, §3.3)."""
        if program.domain != self.domain:
            raise PathError(
                f"program is for {program.domain}, site is {self.domain}"
            )
        self._program = program

    def enable_search(self, max_results: int = 8) -> None:
        """Compile a private search index into the site (see
        :mod:`repro.core.lightweb.search`).

        Adds per-term index blobs under ``/_search/`` and, when the site
        uses the default program, a ``/search?q=<term>`` route. Sites with
        a custom program add :func:`~repro.core.lightweb.search.search_route`
        themselves.
        """
        self._search_max_results = max_results

    @property
    def search_enabled(self) -> bool:
        """Whether compile() will build the search index."""
        return getattr(self, "_search_max_results", None) is not None

    def enable_integrity(self) -> None:
        """Turn on Merkle content integrity (extension to §2.1's non-goal).

        At compile time the site's data payloads are committed to a Merkle
        tree; the root rides in the code blob and every data payload carries
        its authentication path, so a malicious CDN serving modified content
        is detected by the browser with zero extra fetches.
        """
        self._integrity = True

    @property
    def integrity_enabled(self) -> bool:
        """Whether compile() will add Merkle integrity wrappers."""
        return self._integrity

    @property
    def protection(self) -> Optional[ProtectedPublisher]:
        """The access-control manager, if enabled."""
        return self._protection

    def pages(self) -> List[str]:
        """The authored page path remainders."""
        return sorted(self._pages)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def default_program(self) -> LightscriptProgram:
        """The generic one-fetch-per-page program.

        Matches any path and fetches the data blob stored at the page's own
        full path; renders title and body.
        """
        routes = []
        if self.search_enabled:
            from repro.core.lightweb.search import search_route

            routes.append(search_route(self.domain))
        routes.append(
            Route(
                pattern=r"^(/.*)$",
                fetches=(self.domain + "{1}",),
                render=DEFAULT_RENDER,
            )
        )
        return LightscriptProgram(domain=self.domain, routes=routes)

    def compile(self, max_data_payload: int,
                max_code_payload: Optional[int] = None) -> CompiledSite:
        """Build the site into blob payloads.

        Args:
            max_data_payload: the universe's usable data payload bytes per
                blob (blob size minus record framing).
            max_code_payload: optional cap on the code payload.

        Returns:
            A :class:`CompiledSite` ready to push.

        Raises:
            CapacityError: if the program exceeds the code size, or a page
                cannot be chunked to fit.
        """
        program = self._program if self._program is not None else self.default_program()

        if not self._integrity:
            contents = self._build_contents(max_data_payload)
            data_payloads = {
                path: encode_json_payload(content)
                for path, content in contents.items()
            }
        else:
            # Two-pass build: the wrapper (proof + index) consumes payload
            # budget, and the proof length depends on the final leaf count,
            # which chunking itself affects. Chunk, size the wrapper, and
            # re-chunk under the tightened budget until stable.
            budget = max_data_payload
            for _ in range(4):
                contents = self._build_contents(budget)
                overhead = self._integrity_overhead(len(contents))
                if budget == max_data_payload - overhead:
                    break
                budget = max_data_payload - overhead
                if budget <= 0:
                    raise CapacityError(
                        "integrity proofs do not fit the data blob size"
                    )
            contents = self._build_contents(budget)
            paths = sorted(contents)
            tree = MerkleTree([encode_json_payload(contents[p]) for p in paths])
            data_payloads = {}
            for index, path in enumerate(paths):
                wrapper = {
                    INTEGRITY_CONTENT: contents[path],
                    INTEGRITY_PROOF: encode_proof(tree.proof(index)),
                    INTEGRITY_INDEX: index,
                }
                payload = encode_json_payload(wrapper)
                if len(payload) > max_data_payload:
                    raise CapacityError(
                        f"integrity-wrapped payload at {path} exceeds the "
                        f"blob size"
                    )
                data_payloads[path] = payload
            style = dict(program.style)
            style[INTEGRITY_ROOT_KEY] = tree.root.hex()
            program = LightscriptProgram(program.domain, program.routes,
                                         style=style, version=program.version)

        code_payload = program.to_json()
        if max_code_payload is not None and len(code_payload) > max_code_payload:
            raise CapacityError(
                f"code blob of {len(code_payload)} bytes exceeds the universe "
                f"code size {max_code_payload}"
            )
        return CompiledSite(self.domain, code_payload, data_payloads)

    def _build_contents(self, max_payload: int) -> Dict[str, Dict[str, Any]]:
        """Seal and chunk every page into per-path content dicts."""
        pages = dict(self._pages)
        if self.search_enabled:
            from repro.core.lightweb.search import build_search_pages

            pages.update(build_search_pages(
                self.domain, self._pages,
                max_results=self._search_max_results,
            ))
        contents: Dict[str, Dict[str, Any]] = {}
        for rest, content in sorted(pages.items()):
            full_path = self.domain + rest
            if rest in self._protected_paths:
                # Seal first; protected envelopes are compact and fixed-form,
                # so chunking applies to the plaintext pages only. An
                # over-long protected page must be split by the author.
                envelope = self._protection.seal_content(full_path, content)
                if len(encode_json_payload(envelope)) > max_payload:
                    raise CapacityError(
                        f"protected page {full_path} exceeds the data payload "
                        f"limit even before padding; split it into parts"
                    )
                contents[full_path] = envelope
                continue
            for chunk_path, chunk in chunk_content(full_path, content, max_payload):
                contents[chunk_path] = chunk
        return contents

    @staticmethod
    def _integrity_overhead(n_leaves: int) -> int:
        """Worst-case wrapper bytes: proof hex + index + JSON scaffolding."""
        levels = max(1, math.ceil(math.log2(max(2, n_leaves))))
        proof_chars = (levels + 1) * 65  # one spare level for growth
        return proof_chars + 64

    def _check_rest(self, rest: str) -> str:
        if not rest.startswith("/"):
            raise PathError(f"page path must start with '/': {rest!r}")
        return rest


class Publisher:
    """A content publisher owning one or more sites."""

    def __init__(self, name: str):
        self.name = name
        self._sites: Dict[str, Site] = {}

    def site(self, domain: str) -> Site:
        """Get (creating if needed) the publisher's site for a domain."""
        domain = validate_domain(domain)
        if domain not in self._sites:
            self._sites[domain] = Site(domain)
        return self._sites[domain]

    def domains(self) -> List[str]:
        """Domains this publisher authors."""
        return sorted(self._sites)

    def push(self, cdn, universe_name: str, domain: Optional[str] = None) -> List[str]:
        """Compile and upload sites to a CDN universe (§3.1 step 0).

        Args:
            cdn: the :class:`~repro.core.lightweb.cdn.Cdn` to push to.
            universe_name: which of the CDN's universes receives the content.
            domain: push only this site (default: all of them).

        Returns:
            The domains pushed.
        """
        targets = [domain] if domain is not None else self.domains()
        pushed = []
        for target in targets:
            site = self._sites.get(validate_domain(target))
            if site is None:
                raise PathError(f"{self.name} has no site {target!r}")
            universe = cdn.universe(universe_name)
            compiled = site.compile(
                universe.max_data_payload, universe.max_code_payload
            )
            cdn.accept_push(self.name, universe_name, compiled)
            pushed.append(site.domain)
        return pushed


__all__ = ["Publisher", "Site", "CompiledSite", "DEFAULT_RENDER"]
