"""Access control, paywalls and key distribution (§3.3-§3.4).

"Lightweb can also support access control by allowing web publishers to
control the set of users who can view content. ... the CDN can simply store
an encryption of the data. When the client makes an account with the
publisher outside of lightweb, it obtains cryptographic key(s) ... The
publisher can periodically rotate keys in order to revoke users' access as
necessary ... The publisher could also use broadcast encryption to allow
clients to update their keys based on membership changes."

The CDN never sees plaintext or permissions; it stores opaque protected
payloads like any other blob. Revocation = rotate the epoch and broadcast
the new epoch key under a subtree cover excluding revoked accounts; revoked
clients can fetch the broadcast but cannot decrypt it, and their stale epoch
keys fail authentication on newly sealed content. Paywalls (§3.4) are the
same mechanism: paying subscribers get accounts.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional, Tuple

from repro.core.lightweb.blobs import decode_json_payload, encode_json_payload
from repro.crypto import aead
from repro.crypto.keys import BroadcastKeyTree, KeyEpoch, PublisherKeychain
from repro.errors import AccessError

PROTECTED_MARKER = "__protected__"


def is_protected(content: Any) -> bool:
    """Whether a parsed data-blob payload is a protected envelope."""
    return isinstance(content, dict) and content.get(PROTECTED_MARKER) is True


class ProtectedPublisher:
    """The publisher side: seals content, manages accounts and revocation."""

    def __init__(self, domain: str, master_secret: bytes, max_users: int = 1024):
        self.domain = domain
        self._keychain = PublisherKeychain(master_secret)
        self._tree = BroadcastKeyTree(master_secret + b"|bcast", max_users)
        self._next_user = 0
        self._revoked: set = set()

    @property
    def current_epoch(self) -> int:
        """The active key epoch."""
        return self._keychain.current_epoch

    def seal_content(self, path: str, content: Dict[str, Any]) -> Dict[str, Any]:
        """Encrypt page content under the current epoch's per-path key.

        The result is an ordinary JSON data-blob payload the CDN stores
        without being able to read it; the path is bound as AAD so a
        malicious CDN cannot swap protected blobs between paths.
        """
        epoch = self._keychain.epoch_key()
        sealed = aead.seal(
            epoch.path_key(path),
            encode_json_payload(content),
            aad=path.encode("utf-8"),
        )
        return {
            PROTECTED_MARKER: True,
            "domain": self.domain,
            "epoch": epoch.epoch,
            "ct": base64.b64encode(sealed).decode("ascii"),
        }

    def open_account(self) -> "Account":
        """Create a subscriber account (the out-of-lightweb signup of §3.3)."""
        user_id = self._next_user
        self._next_user += 1
        if user_id >= self._tree.n_users:
            raise AccessError("publisher account capacity exhausted")
        return Account(
            domain=self.domain,
            user_id=user_id,
            tree_keys=self._tree.user_keys(user_id),
            epoch=self._keychain.epoch_key(),
        )

    def rotate_keys(self) -> None:
        """Periodic key rotation without a revocation (§3.3).

        Clients that refresh keep access; clients that never refresh age
        out — the paper's lightweight revocation-by-rotation.
        """
        self._keychain.rotate()

    def revoke(self, user_id: int) -> None:
        """Revoke an account and rotate the epoch key immediately.

        Raises:
            AccessError: if no such account exists.
        """
        if not 0 <= user_id < self._next_user:
            raise AccessError(f"no account {user_id} to revoke")
        self._revoked.add(user_id)
        self._keychain.rotate()

    def epoch_broadcast(self) -> List[Tuple[int, bytes]]:
        """Broadcast the *current* epoch key to every non-revoked account.

        Clients "can query the publisher periodically for updated keys";
        this is that update, encrypted so revoked accounts learn nothing.
        """
        epoch = self._keychain.epoch_key()
        payload = epoch.epoch.to_bytes(8, "little") + epoch.key
        return self._tree.broadcast(payload, revoked=self._revoked)


class Account:
    """A subscriber's credentials for one publisher."""

    def __init__(self, domain: str, user_id: int, tree_keys: Dict[int, bytes],
                 epoch: KeyEpoch):
        self.domain = domain
        self.user_id = user_id
        self._tree_keys = tree_keys
        self.epoch = epoch

    def refresh(self, broadcast: List[Tuple[int, bytes]]) -> KeyEpoch:
        """Update to the latest epoch from a publisher broadcast.

        Raises:
            AccessError: if this account was revoked (no usable cover key).
        """
        payload = BroadcastKeyTree.receive(self._tree_keys, broadcast)
        epoch_num = int.from_bytes(payload[:8], "little")
        self.epoch = KeyEpoch(epoch=epoch_num, key=payload[8:])
        return self.epoch


class AccountKeyring:
    """Browser-side keyring: per-domain subscriber accounts."""

    def __init__(self):
        self._accounts: Dict[str, Account] = {}

    def add_account(self, account: Account) -> None:
        """Install an account obtained from a publisher."""
        self._accounts[account.domain] = account

    def has_account(self, domain: str) -> bool:
        """Whether the user subscribes to a domain."""
        return domain in self._accounts

    def account(self, domain: str) -> Account:
        """Look up a domain's account.

        Raises:
            AccessError: if there is none.
        """
        account = self._accounts.get(domain)
        if account is None:
            raise AccessError(f"no account for {domain}")
        return account

    def refresh(self, domain: str, broadcast: List[Tuple[int, bytes]]) -> None:
        """Apply a publisher's key broadcast to the stored account."""
        self.account(domain).refresh(broadcast)

    def unseal(self, path: str, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Decrypt a protected payload fetched from the CDN.

        Raises:
            AccessError: no account, wrong/stale epoch, or tampering.
        """
        if not is_protected(envelope):
            raise AccessError("payload is not a protected envelope")
        domain = str(envelope.get("domain", ""))
        account = self.account(domain)
        epoch_num = int(envelope.get("epoch", -1))
        if epoch_num != account.epoch.epoch:
            raise AccessError(
                f"content sealed under epoch {epoch_num}, account holds "
                f"{account.epoch.epoch}; refresh keys from the publisher"
            )
        try:
            sealed = base64.b64decode(str(envelope.get("ct", "")), validate=True)
        except (ValueError, TypeError) as exc:
            raise AccessError(f"corrupt protected envelope: {exc}") from exc
        try:
            plain = aead.open_sealed(
                account.epoch.path_key(path), sealed, aad=path.encode("utf-8")
            )
        except Exception as exc:
            raise AccessError(f"cannot decrypt {path}: {exc}") from exc
        content = decode_json_payload(plain)
        if not isinstance(content, dict):
            raise AccessError("protected payload must decode to an object")
        return content


__all__ = [
    "ProtectedPublisher",
    "Account",
    "AccountKeyring",
    "is_protected",
    "PROTECTED_MARKER",
]
