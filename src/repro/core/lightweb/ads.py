"""Local ad targeting (§3.4) — personalisation without server-side state.

"Lightweb is compatible with online ads. The simplest way to achieve this is
to have a publisher embed subject-relevant ads directly into their site's
static content. Ad targeting is also possible in principle: the site's code
could fetch different ads from the CDN based on the user's local state
(browsing history, postal code, inferred interests, etc.)."

The publisher ships an :class:`AdInventory` inside a data blob; the browser
selects one ad *locally* against the user's stored interest profile, so the
targeting signal never leaves the client. The browser injects the winner as
``selected_ad`` into the fetched data, where render templates can reference
it (``{data0.selected_ad}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Ad:
    """One advertisement: display text plus targeting keywords."""

    ad_id: str
    text: str
    keywords: Sequence[str] = ()


class AdInventory:
    """A publisher's embeddable ad inventory."""

    def __init__(self, ads: Sequence[Ad]):
        self.ads = list(ads)

    def to_payload(self) -> List[Dict[str, Any]]:
        """Encode as the JSON list a data blob carries under ``"ads"``."""
        return [
            {"id": ad.ad_id, "text": ad.text, "keywords": list(ad.keywords)}
            for ad in self.ads
        ]

    @classmethod
    def from_payload(cls, payload: Any) -> "AdInventory":
        """Parse an inventory from fetched blob JSON (tolerant of junk)."""
        ads = []
        if isinstance(payload, list):
            for entry in payload:
                if not isinstance(entry, dict):
                    continue
                ads.append(
                    Ad(
                        ad_id=str(entry.get("id", "")),
                        text=str(entry.get("text", "")),
                        keywords=tuple(
                            str(k) for k in entry.get("keywords", []) or []
                        ),
                    )
                )
        return cls(ads)


def select_ad(inventory: AdInventory, interests: Sequence[str]) -> Optional[Ad]:
    """Pick the best-matching ad for a local interest profile.

    Scoring is keyword overlap; ties break deterministically by ad id so the
    choice is reproducible. With no interests (or no overlap) the first ad
    is the untargeted fallback.

    Returns:
        The chosen :class:`Ad`, or None for an empty inventory.
    """
    if not inventory.ads:
        return None
    interest_set = {interest.lower() for interest in interests}

    def score(ad: Ad):
        overlap = len(interest_set & {kw.lower() for kw in ad.keywords})
        return (-overlap, ad.ad_id)

    best = min(inventory.ads, key=score)
    return best


__all__ = ["Ad", "AdInventory", "select_ad"]
