"""Fixed-size blob formats for lightweb content (§3.1).

"all code blobs in the universe must have a single fixed size (e.g., 1 MiB)
and all data blobs in the universe must have a single fixed size as well
(e.g., 4 KiB)."

Blobs carry a 4-byte payload-length prefix and zero padding to the fixed
size, so the padded wire object is indistinguishable across payload lengths
(the property fixed sizes exist to provide). Values longer than one blob
are split by :func:`chunk_content` into continuation pages linked by a
``next`` pointer — the paper's "the user can click a 'next' link if she
wants to read more" (§5).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Tuple

from repro.errors import CapacityError, ProtocolError

LENGTH_PREFIX_BYTES = 4


def pack_blob(payload: bytes, blob_size: int) -> bytes:
    """Pad a payload to the universe's fixed blob size.

    Raises:
        CapacityError: if the payload (plus length prefix) does not fit.
    """
    if len(payload) + LENGTH_PREFIX_BYTES > blob_size:
        raise CapacityError(
            f"payload of {len(payload)} bytes does not fit in a "
            f"{blob_size}-byte blob"
        )
    return struct.pack("<I", len(payload)) + payload.ljust(
        blob_size - LENGTH_PREFIX_BYTES, b"\x00"
    )


def unpack_blob(blob: bytes) -> bytes:
    """Strip the length prefix and padding from a fixed-size blob.

    Raises:
        ProtocolError: if the declared length is inconsistent.
    """
    if len(blob) < LENGTH_PREFIX_BYTES:
        raise ProtocolError("blob shorter than its length prefix")
    (length,) = struct.unpack_from("<I", blob, 0)
    if LENGTH_PREFIX_BYTES + length > len(blob):
        raise ProtocolError(
            f"blob declares {length} payload bytes but only "
            f"{len(blob) - LENGTH_PREFIX_BYTES} are present"
        )
    return blob[LENGTH_PREFIX_BYTES : LENGTH_PREFIX_BYTES + length]


def encode_json_payload(obj: Any) -> bytes:
    """Canonical JSON encoding used for data-blob payloads."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json_payload(payload: bytes) -> Any:
    """Parse a JSON data-blob payload.

    Raises:
        ProtocolError: on malformed JSON.
    """
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed blob JSON: {exc}") from exc


def continuation_path(path: str, part: int) -> str:
    """The path of the ``part``-th continuation chunk of ``path``."""
    if part < 1:
        raise CapacityError("continuation parts start at 1")
    return f"{path}~part{part}"


def chunk_content(path: str, content: Dict[str, Any], max_payload: int,
                  body_field: str = "body") -> List[Tuple[str, Dict[str, Any]]]:
    """Split over-long content into linked continuation pages.

    The ``body_field`` string is cut into pieces; every piece except the
    last carries a ``next`` pointer to the following part's path. Other
    fields are carried on the first chunk only.

    Args:
        path: the value's lightweb path.
        content: a JSON-serialisable dict with a string under
            ``body_field``.
        max_payload: maximum encoded payload bytes per blob.

    Returns:
        List of ``(chunk_path, chunk_content)`` in order; a single-element
        list when no chunking is needed.

    Raises:
        CapacityError: if even an empty-body chunk cannot fit (oversized
            metadata).
    """
    encoded = encode_json_payload(content)
    if len(encoded) <= max_payload:
        return [(path, content)]

    body = content.get(body_field)
    if not isinstance(body, str):
        raise CapacityError(
            f"content at {path} exceeds {max_payload} bytes and has no "
            f"chunkable string field {body_field!r}"
        )

    header = dict(content)
    header[body_field] = ""
    chunks: List[Tuple[str, Dict[str, Any]]] = []
    remaining = body
    part = 0
    while remaining:
        is_first = part == 0
        base: Dict[str, Any] = dict(header) if is_first else {body_field: ""}
        chunk_path = path if is_first else continuation_path(path, part)
        # Initial body budget: payload cap minus the chunk's overhead with a
        # worst-case `next` pointer; then shrink (JSON escaping can expand
        # the body) until the encoded chunk actually fits.
        probe = dict(base)
        probe["next"] = continuation_path(path, part + 1)
        budget = max_payload - len(encode_json_payload(probe))
        if budget <= 0:
            raise CapacityError(
                f"metadata of {path} leaves no room for body in a "
                f"{max_payload}-byte payload"
            )
        piece = remaining[:budget]
        candidate: Dict[str, Any] = {}
        while piece:
            candidate = dict(base)
            candidate[body_field] = piece
            if len(piece) < len(remaining):
                candidate["next"] = continuation_path(path, part + 1)
            if len(encode_json_payload(candidate)) <= max_payload:
                break
            piece = piece[: len(piece) - max(1, len(piece) // 16)]
        if not piece:
            raise CapacityError(f"cannot fit any body content of {path} in a chunk")
        remaining = remaining[len(piece):]
        chunks.append((chunk_path, candidate))
        part += 1
    return chunks


__all__ = [
    "pack_blob",
    "unpack_blob",
    "encode_json_payload",
    "decode_json_payload",
    "chunk_content",
    "continuation_path",
    "LENGTH_PREFIX_BYTES",
]
