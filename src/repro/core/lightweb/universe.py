"""Content universes: the unit of lightweb administration (§3.1, §3.5).

A universe fixes the blob geometry for everything it hosts — one code-blob
size, one data-blob size, one per-page fetch budget — and owns the mapping
from paths to storage slots. Code blobs live in a *separate* key space from
data blobs, following §3.2: "CDNs can host domain-specific code in a
separate 'universe' from the other key-value pairs. This separation can
improve ZLTP performance and only reveals when a user is visiting a path
with a domain where the code is not cached locally."

Path-prefix ownership ("The CDN is responsible for managing ownership of
path prefixes within a universe", §3.1) is enforced on every write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.lightweb.paths import parse_path, validate_domain
from repro.errors import CapacityError, OwnershipError
from repro.pir.database import BlobDatabase
from repro.pir.keyword import HEADER_BYTES, KeywordIndex


@dataclass(frozen=True)
class UniverseTier:
    """A cost-coverage tier (§3.5): "small", "medium" and "large" universes.

    "a single CDN could group its pages into 'small', 'medium', and 'large'
    universes where each universe has a different fixed page size."
    """

    name: str
    data_blob_size: int
    data_domain_bits: int

    def __post_init__(self):
        if self.data_blob_size < HEADER_BYTES + 16:
            raise CapacityError("tier blob size too small to hold records")


#: The §3.5 example tiering. Sizes chosen around the paper's 4 KiB figure.
DEFAULT_TIERS = (
    UniverseTier("small", data_blob_size=1024, data_domain_bits=12),
    UniverseTier("medium", data_blob_size=4096, data_domain_bits=12),
    UniverseTier("large", data_blob_size=16384, data_domain_bits=12),
)


class ContentUniverse:
    """One lightweb universe: fixed geometry, owned prefixes, two key spaces."""

    def __init__(
        self,
        name: str,
        code_blob_size: int = 64 * 1024,
        data_blob_size: int = 4096,
        code_domain_bits: int = 10,
        data_domain_bits: int = 12,
        fetch_budget: int = 5,
        probes: int = 2,
        salt: Optional[bytes] = None,
    ):
        """Create an empty universe.

        Args:
            name: universe identifier (unique within its CDN).
            code_blob_size: fixed size of every code blob (paper example:
                1 MiB; smaller by default so tests stay fast).
            data_blob_size: fixed size of every data blob (paper: 4 KiB).
            code_domain_bits / data_domain_bits: log2 slot counts of the two
                key spaces.
            fetch_budget: the fixed number of data GETs per page view
                (paper example: five).
            probes: keyword probes per lookup (2 = cuckoo hashing).
            salt: keyword-hash salt; defaults to one derived from the name.
        """
        if fetch_budget < 1:
            raise CapacityError("fetch budget must be at least 1")
        self.name = name
        self.code_blob_size = code_blob_size
        self.data_blob_size = data_blob_size
        self.fetch_budget = fetch_budget
        self.probes = probes
        self.salt = salt if salt is not None else b"universe:" + name.encode("utf-8")
        self.code_db = BlobDatabase(code_domain_bits, code_blob_size)
        self.data_db = BlobDatabase(data_domain_bits, data_blob_size)
        self._code_index = KeywordIndex(self.code_db, probes=probes,
                                        salt=self.salt + b"|code")
        self._data_index = KeywordIndex(self.data_db, probes=probes,
                                        salt=self.salt + b"|data")
        self._owners: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def max_data_payload(self) -> int:
        """Usable payload bytes per data blob (record framing removed)."""
        return self.data_blob_size - HEADER_BYTES

    @property
    def max_code_payload(self) -> int:
        """Usable payload bytes per code blob."""
        return self.code_blob_size - HEADER_BYTES

    @property
    def code_salt(self) -> bytes:
        """Keyword salt of the code key space (announced in ServerHello)."""
        return self.salt + b"|code"

    @property
    def data_salt(self) -> bytes:
        """Keyword salt of the data key space."""
        return self.salt + b"|data"

    # ------------------------------------------------------------------
    # Ownership (§3.1)
    # ------------------------------------------------------------------

    def register_domain(self, publisher: str, domain: str) -> None:
        """Claim a top-level prefix for a publisher.

        Raises:
            OwnershipError: if another publisher holds it.
        """
        domain = validate_domain(domain)
        current = self._owners.get(domain)
        if current is not None and current != publisher:
            raise OwnershipError(
                f"domain {domain} in universe {self.name} is owned by "
                f"{current}, not {publisher}"
            )
        self._owners[domain] = publisher

    def owner_of(self, domain: str) -> Optional[str]:
        """The registered owner of a domain, if any."""
        return self._owners.get(validate_domain(domain))

    def domains(self) -> List[str]:
        """All registered domains."""
        return sorted(self._owners)

    # ------------------------------------------------------------------
    # Content writes
    # ------------------------------------------------------------------

    def put_code(self, publisher: str, domain: str, payload: bytes) -> None:
        """Store a domain's (single) code blob.

        "we only allow each domain to host a single code blob" (§3.2) —
        the code key space is keyed by the bare domain, so re-pushing
        replaces it.
        """
        domain = validate_domain(domain)
        self._require_owner(publisher, domain)
        if len(payload) > self.max_code_payload:
            raise CapacityError(
                f"code payload of {len(payload)} bytes exceeds universe "
                f"limit {self.max_code_payload}"
            )
        if self._probe_has(self._code_index, domain):
            self._replace(self._code_index, domain, payload)
        else:
            self._code_index.put(domain, payload)

    def put_data(self, publisher: str, path: str, payload: bytes) -> None:
        """Store one data blob at a full lightweb path."""
        parsed = parse_path(path)
        self._require_owner(publisher, parsed.domain)
        if len(payload) > self.max_data_payload:
            raise CapacityError(
                f"data payload at {path} is {len(payload)} bytes; universe "
                f"limit is {self.max_data_payload}"
            )
        if self._probe_has(self._data_index, parsed.full):
            self._replace(self._data_index, parsed.full, payload)
        else:
            self._data_index.put(parsed.full, payload)

    def remove_data(self, publisher: str, path: str) -> None:
        """Delete a data blob (ownership-checked)."""
        parsed = parse_path(path)
        self._require_owner(publisher, parsed.domain)
        self._data_index.remove(parsed.full)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Stored data blobs."""
        return self.data_db.n_occupied

    def storage_bytes(self) -> int:
        """Total backing storage across both key spaces."""
        return self.code_db.memory_bytes() + self.data_db.memory_bytes()

    def describe(self) -> Dict[str, object]:
        """A summary dict (used by examples and the CDN's catalogue)."""
        return {
            "name": self.name,
            "code_blob_size": self.code_blob_size,
            "data_blob_size": self.data_blob_size,
            "fetch_budget": self.fetch_budget,
            "probes": self.probes,
            "domains": self.domains(),
            "n_pages": self.n_pages,
            "data_slots": self.data_db.n_slots,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_owner(self, publisher: str, domain: str) -> None:
        owner = self._owners.get(domain)
        if owner is None:
            raise OwnershipError(
                f"domain {domain} is not registered in universe {self.name}"
            )
        if owner != publisher:
            raise OwnershipError(
                f"{publisher} does not own {domain} in universe {self.name} "
                f"(owner: {owner})"
            )

    @staticmethod
    def _probe_has(index: KeywordIndex, key: str) -> bool:
        from repro.pir.keyword import decode_record

        for slot in index.candidate_slots(key):
            if decode_record(key, index.database.get_slot(slot)) is not None:
                return True
        return False

    @staticmethod
    def _replace(index: KeywordIndex, key: str, payload: bytes) -> None:
        try:
            index.remove(key)
        except KeyError:
            pass
        index.put(key, payload)


__all__ = ["ContentUniverse", "UniverseTier", "DEFAULT_TIERS"]
