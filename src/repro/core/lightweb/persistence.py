"""Saving and restoring content universes — the CDN restart story.

A real CDN's "single logical ZLTP server ... comprised of thousands of
physical machines configured for fault-tolerance" (§3.1) persists its
content. This module serialises a :class:`ContentUniverse` — both blob
databases, the keyword placements, and the ownership registry — into one
``.npz`` archive, and restores it bit-for-bit, so a ``lightweb serve``
process can restart without publishers re-pushing.

Format: numpy arrays for the two packed stores plus a JSON metadata blob
(geometry, salt, owners, occupied slots, cuckoo placements).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import numpy as np

from repro.core.lightweb.universe import ContentUniverse
from repro.errors import ProtocolError

FORMAT_VERSION = 1


def save_universe(universe: ContentUniverse, path: str) -> None:
    """Write a universe to ``path`` (a ``.npz`` archive)."""
    meta = {
        "format": FORMAT_VERSION,
        "name": universe.name,
        "code_blob_size": universe.code_blob_size,
        "data_blob_size": universe.data_blob_size,
        "code_domain_bits": universe.code_db.domain_bits,
        "data_domain_bits": universe.data_db.domain_bits,
        "fetch_budget": universe.fetch_budget,
        "probes": universe.probes,
        "salt": universe.salt.hex(),
        "owners": {d: universe.owner_of(d) for d in universe.domains()},
        "code_occupied": sorted(universe.code_db.occupied_slots()),
        "data_occupied": sorted(universe.data_db.occupied_slots()),
        "code_placements": dict(universe._code_index._records_for_save()),
        "data_placements": dict(universe._data_index._records_for_save()),
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        code_storage=universe.code_db._storage,
        data_storage=universe.data_db._storage,
    )


def load_universe(path: str) -> ContentUniverse:
    """Restore a universe saved by :func:`save_universe`.

    Raises:
        ProtocolError: on a missing file or unrecognised format.
    """
    if not Path(path).exists():
        raise ProtocolError(f"no universe archive at {path}")
    try:
        archive = np.load(path, allow_pickle=False)
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"corrupt universe archive {path}: {exc}") from exc
    if meta.get("format") != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported universe format {meta.get('format')!r}"
        )
    universe = ContentUniverse(
        meta["name"],
        code_blob_size=int(meta["code_blob_size"]),
        data_blob_size=int(meta["data_blob_size"]),
        code_domain_bits=int(meta["code_domain_bits"]),
        data_domain_bits=int(meta["data_domain_bits"]),
        fetch_budget=int(meta["fetch_budget"]),
        probes=int(meta["probes"]),
        salt=bytes.fromhex(meta["salt"]),
    )
    universe.code_db._storage[:] = archive["code_storage"]
    universe.data_db._storage[:] = archive["data_storage"]
    universe.code_db._occupied = set(int(i) for i in meta["code_occupied"])
    universe.data_db._occupied = set(int(i) for i in meta["data_occupied"])
    for domain, owner in meta["owners"].items():
        universe.register_domain(owner, domain)
    universe._code_index._restore_placements(meta["code_placements"])
    universe._data_index._restore_placements(meta["data_placements"])
    return universe


__all__ = ["save_universe", "load_universe", "FORMAT_VERSION"]
