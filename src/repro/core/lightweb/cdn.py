"""CDNs: the administrative home of lightweb universes (§3.1, §3.5, §4).

"The content-distribution network (CDN) hosting a lightweb universe
maintains a single logical ZLTP server serving all of the lightweb pages
within its universe." Per §3.2 the client actually opens *two* kinds of
sessions — one for code blobs, one for data blobs — so each universe is
exposed behind two logical servers (each of which is a non-colluding *pair*
when the ``pir2`` mode is in use).

The CDN also implements:

- the §3.5 tiering (several universes with different fixed page sizes),
- peering (accepted pushes propagate to peer CDNs; ownership is checked
  against the shared :class:`~repro.core.lightweb.peering.DomainRegistry`),
- §4 billing inputs: total GETs served per universe (the CDN can count
  *requests*, never which page), plus hooks for the private per-domain
  aggregation of :mod:`repro.analytics`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import backend as backend_registry
from repro.core.backend import RequestStats, mode_endpoints, negotiate
from repro.core.lightweb.peering import DomainRegistry
from repro.core.lightweb.publisher import CompiledSite
from repro.core.lightweb.universe import ContentUniverse
from repro.core.zltp.client import ZltpClient
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.transport import transport_pair
from repro.crypto.lwe import LweParams
from repro.errors import OwnershipError, PathError

TransportFactory = Callable[[str], Tuple[object, object]]


class Cdn:
    """A content-distribution network hosting lightweb universes."""

    def __init__(self, name: str, registry: Optional[DomainRegistry] = None,
                 modes: Optional[List[str]] = None,
                 lwe_params: Optional[LweParams] = None,
                 rng: Optional[np.random.Generator] = None,
                 executor: Optional[object] = None):
        """Create a CDN.

        Args:
            name: the CDN's identity (e.g. ``"akamai"``).
            registry: shared domain registrar; a private one is created if
                peering is not needed.
            modes: ZLTP modes this CDN supports, in preference order —
                "Each CDN chooses which ZLTP modes of operation to support,
                based on the cost tolerance and privacy demands of its
                users" (§3.1). Aliases (``lwe``, ``enclave``) are accepted;
                the default is every registered backend.
            lwe_params: parameters for the ``pir-lwe`` mode, if offered.
            rng: deterministic randomness for tests.
            executor: optional :class:`~repro.pir.engine.ScanExecutor`;
                every logical server forwards its per-backend
                :class:`RequestStats` there.
        """
        self.name = name
        self.registry = registry if registry is not None else DomainRegistry()
        offered = list(modes) if modes is not None \
            else backend_registry.registered_modes()
        self.modes = [backend_registry.resolve_mode(mode) for mode in offered]
        self._lwe_params = lwe_params
        self._rng = rng
        self._executor = executor
        self._universes: Dict[str, ContentUniverse] = {}
        self._servers: Dict[Tuple[str, str, int], ZltpServer] = {}
        self.peers: List["Cdn"] = []
        self.gets_by_universe: Dict[str, int] = {}

    def advertised_modes(self) -> List[Dict[str, object]]:
        """Registry-derived description of every mode this CDN serves.

        One entry per supported mode: name, endpoint count, security
        assumption, and whether a one-time setup download is required —
        what a CDN's catalogue page would advertise to §3.1 clients.
        """
        out: List[Dict[str, object]] = []
        for mode in self.modes:
            spec = backend_registry.get_backend(mode)
            out.append({
                "mode": spec.name,
                "endpoints": spec.endpoints,
                "assumption": spec.assumption,
                "needs_setup": spec.needs_setup,
            })
        return out

    # ------------------------------------------------------------------
    # Universe management
    # ------------------------------------------------------------------

    def create_universe(self, name: str, **kwargs) -> ContentUniverse:
        """Create and host a new universe (kwargs as ContentUniverse)."""
        if name in self._universes:
            raise PathError(f"CDN {self.name} already hosts universe {name!r}")
        universe = ContentUniverse(name, **kwargs)
        self._universes[name] = universe
        self.gets_by_universe[name] = 0
        return universe

    def universe(self, name: str) -> ContentUniverse:
        """Look up a hosted universe.

        Raises:
            PathError: if this CDN does not host it.
        """
        universe = self._universes.get(name)
        if universe is None:
            raise PathError(f"CDN {self.name} hosts no universe {name!r}")
        return universe

    def universes(self) -> List[str]:
        """Names of hosted universes (the CDN's catalogue)."""
        return sorted(self._universes)

    # ------------------------------------------------------------------
    # Publisher side: pushes and peering
    # ------------------------------------------------------------------

    def accept_push(self, publisher: str, universe_name: str,
                    compiled: CompiledSite, _from_peer: bool = False) -> None:
        """Ingest a compiled site into a universe (§3.1 step 0).

        Registers the domain (consulting the shared registry), stores the
        code blob and every data blob, and propagates to peers.

        Raises:
            OwnershipError: if the domain belongs to someone else.
        """
        universe = self.universe(universe_name)
        self.registry.register(compiled.domain, publisher)
        universe.register_domain(publisher, compiled.domain)
        universe.put_code(publisher, compiled.domain, compiled.code_payload)
        for path, payload in sorted(compiled.data_payloads.items()):
            universe.put_data(publisher, path, payload)
        if not _from_peer:
            for peer in self.peers:
                if universe_name in peer._universes:
                    peer.accept_push(publisher, universe_name, compiled,
                                     _from_peer=True)

    def peer_with(self, other: "Cdn") -> None:
        """Establish symmetric peering (§3.5).

        Raises:
            OwnershipError: if the CDNs do not share a domain registry —
                peering requires agreeing on domain ownership.
        """
        if other.registry is not self.registry:
            raise OwnershipError(
                "peered CDNs must share a domain registry (§3.5)"
            )
        if other not in self.peers:
            self.peers.append(other)
        if self not in other.peers:
            other.peers.append(self)

    # ------------------------------------------------------------------
    # Client side: ZLTP sessions
    # ------------------------------------------------------------------

    def _server(self, universe_name: str, kind: str, party: int) -> ZltpServer:
        """The logical ZLTP server for (universe, code|data, party)."""
        if kind not in ("code", "data"):
            raise PathError(f"kind must be 'code' or 'data', got {kind!r}")
        key = (universe_name, kind, party)
        server = self._servers.get(key)
        if server is None:
            universe = self.universe(universe_name)
            database = universe.code_db if kind == "code" else universe.data_db
            salt = universe.code_salt if kind == "code" else universe.data_salt
            server = ZltpServer(
                database,
                modes=self.modes,
                party=party,
                salt=salt,
                probes=universe.probes,
                lwe_params=self._lwe_params,
                rng=self._rng,
                executor=self._executor,
            )
            self._servers[key] = server
        return server

    def connect(self, universe_name: str, kind: str,
                client_modes: Optional[List[str]] = None,
                transport_factory: Optional[TransportFactory] = None,
                rng: Optional[np.random.Generator] = None) -> ZltpClient:
        """Open a connected ZLTP client session against one universe.

        Figures out how many endpoints the (to-be-)negotiated mode needs,
        wires a transport per endpoint (in-memory by default, or through
        ``transport_factory`` — e.g. a simulated network path), and runs the
        hello exchange.

        Args:
            universe_name: which hosted universe.
            kind: ``"code"`` or ``"data"`` — the two session types of §3.2.
            client_modes: the client's offered modes (default: all).
            transport_factory: ``factory(name) -> (client_end, server_end)``.
            rng: client-side randomness.

        Returns:
            A connected :class:`ZltpClient`.
        """
        offered = list(client_modes) if client_modes is not None \
            else backend_registry.registered_modes()
        chosen = negotiate(offered, self.modes)
        n_endpoints = mode_endpoints(chosen)
        factory = transport_factory if transport_factory is not None else (
            lambda name: transport_pair(name + ":client", name + ":server")
        )
        transports = []
        for party in range(n_endpoints):
            client_end, server_end = factory(
                f"{self.name}/{universe_name}/{kind}/{party}"
            )
            server = self._server(universe_name, kind, party)
            server.serve_transport(server_end)
            transports.append(client_end)
        client = ZltpClient(transports, supported_modes=offered, rng=rng)
        client.connect()
        return client

    # ------------------------------------------------------------------
    # Billing inputs (§4)
    # ------------------------------------------------------------------

    def record_gets(self, universe_name: str, count: int) -> None:
        """Account served GETs against a universe (drives §4 billing)."""
        self.gets_by_universe[universe_name] = (
            self.gets_by_universe.get(universe_name, 0) + count
        )

    def total_gets(self, universe_name: str) -> int:
        """GETs served for a universe, counting all logical servers."""
        direct = sum(
            server.gets_served
            for (uname, _kind, _party), server in self._servers.items()
            if uname == universe_name
        )
        return direct + self.gets_by_universe.get(universe_name, 0)

    def stats_by_mode(self, universe_name: str) -> Dict[str, RequestStats]:
        """Per-backend serving stats for a universe, across all servers.

        The same :class:`RequestStats` records the ZLTP sessions measured,
        merged over every logical server (code/data, both parties) of the
        universe — the §4 billing input broken down by mode.
        """
        merged: Dict[str, RequestStats] = {}
        for (uname, _kind, _party), server in self._servers.items():
            if uname != universe_name:
                continue
            for mode, stats in server.stats_by_mode().items():
                if mode not in merged:
                    merged[mode] = RequestStats()
                merged[mode].merge(stats)
        return {mode: stats.freeze() for mode, stats in merged.items()}


__all__ = ["Cdn", "TransportFactory"]
