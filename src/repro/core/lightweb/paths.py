"""The lightweb path grammar (§3.1).

"Every data blob within a CDN's lightweb universe has a unique path, such as
nytimes.com/world/africa/2023/06/headlines.json. The only constraint on the
path format is that it must have a valid domain as the top-level path
component; otherwise, the path may have any format."

"By convention, a single publisher controls all of the content beneath a
particular top-level path component."
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

from repro.errors import PathError

#: RFC-1035-flavoured label: letters/digits/hyphens, no leading/trailing
#: hyphen, 1-63 chars.
_LABEL = r"(?!-)[a-z0-9-]{1,63}(?<!-)"
_DOMAIN_RE = re.compile(rf"^(?:{_LABEL}\.)+{_LABEL}$")

MAX_PATH_LENGTH = 1024


def validate_domain(domain: str) -> str:
    """Check that a string is a plausible registrable domain.

    Returns the (lower-cased) domain.

    Raises:
        PathError: on anything that is not ``label(.label)+``.
    """
    lowered = domain.lower()
    if not _DOMAIN_RE.match(lowered):
        raise PathError(f"invalid lightweb domain: {domain!r}")
    return lowered


@dataclass(frozen=True)
class LightwebPath:
    """A parsed lightweb path: the owning domain plus the remainder.

    Attributes:
        domain: the top-level component (determines ownership and which
            code blob handles the page).
        rest: everything after the domain, always starting with ``/`` (the
            domain's root page has rest ``"/"``).
    """

    domain: str
    rest: str

    def __str__(self) -> str:
        return self.domain + (self.rest if self.rest != "/" else "")

    @property
    def full(self) -> str:
        """The canonical full path string (domain + rest)."""
        return self.domain + self.rest


def parse_path(path: str) -> LightwebPath:
    """Parse and validate a lightweb path.

    Args:
        path: e.g. ``"nytimes.com/world/africa/2023/06/headlines.json"``.

    Returns:
        The parsed :class:`LightwebPath`.

    Raises:
        PathError: if the path is empty, too long, has no valid domain as
            its first component, or contains control characters.
    """
    if not path:
        raise PathError("empty path")
    if len(path) > MAX_PATH_LENGTH:
        raise PathError(f"path longer than {MAX_PATH_LENGTH} characters")
    if any(ord(ch) < 0x20 or ord(ch) == 0x7F for ch in path):
        raise PathError("path contains control characters")
    head, sep, tail = path.partition("/")
    domain = validate_domain(head)
    rest = "/" + tail if sep else "/"
    return LightwebPath(domain=domain, rest=rest)


def owner_prefix(path: str) -> str:
    """The ownership prefix (the domain) of a path — §3.1's convention."""
    return parse_path(path).domain


def split_query(rest: str) -> Tuple[str, str]:
    """Split a path remainder into (route part, query part)."""
    route, _, query = rest.partition("?")
    return route or "/", query


__all__ = [
    "LightwebPath",
    "parse_path",
    "validate_domain",
    "owner_prefix",
    "split_query",
    "MAX_PATH_LENGTH",
]
