"""Multi-universe peering and the shared domain registry (§3.5).

"To allow lightweb content to be available across multiple universes managed
by multiple CDNs, the CDNs managing these universes could peer with each
other. If a publisher uploads content to one CDN, the CDN would push the
content to all of its peers. To make this possible, CDNs would have to agree
on the assignment of lightweb domain names to owners (e.g., using today's
domain-name registration system) so that each domain has the same owner in
each universe."

:class:`DomainRegistry` is the today's-DNS stand-in: a registrar all peered
CDNs consult so ownership is globally consistent. Peering itself lives on
:class:`~repro.core.lightweb.cdn.Cdn` (``peer_with`` / push propagation) and
uses this registry as the source of truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.lightweb.paths import validate_domain
from repro.errors import OwnershipError


class DomainRegistry:
    """A global domain registrar shared by peered CDNs."""

    def __init__(self, name: str = "registry"):
        self.name = name
        self._owners: Dict[str, str] = {}

    def register(self, domain: str, owner: str) -> None:
        """Register a domain to an owner.

        Re-registration by the same owner is a no-op; by a different owner
        it fails — domains "have the same owner in each universe".

        Raises:
            OwnershipError: on an ownership conflict.
        """
        domain = validate_domain(domain)
        current = self._owners.get(domain)
        if current is not None and current != owner:
            raise OwnershipError(
                f"domain {domain} is registered to {current}, not {owner}"
            )
        self._owners[domain] = owner

    def owner_of(self, domain: str) -> Optional[str]:
        """Look up a domain's registered owner."""
        return self._owners.get(validate_domain(domain))

    def transfer(self, domain: str, old_owner: str, new_owner: str) -> None:
        """Transfer a domain between owners (both CDNs see the change).

        Raises:
            OwnershipError: if ``old_owner`` does not currently hold it.
        """
        domain = validate_domain(domain)
        if self._owners.get(domain) != old_owner:
            raise OwnershipError(
                f"{old_owner} does not own {domain}; cannot transfer"
            )
        self._owners[domain] = new_owner

    def domains(self) -> List[str]:
        """All registered domains."""
        return sorted(self._owners)


__all__ = ["DomainRegistry"]
