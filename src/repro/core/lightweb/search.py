"""Private per-site search — the §6 Tiptoe tie-in, inside the lightweb model.

The paper points at Tiptoe for private *web* search and notes "users could
then access their search results using lightweb". For a single site, no
extra machinery is needed at all: the publisher compiles an inverted index
into ordinary data blobs (one blob per term at
``domain/_search/<term>.json``), and a search query becomes one private
GET for the query term's blob. Because keyword lookups are
access-indistinguishable whether the key exists or not, searching for a
term with no results looks identical on the wire to a hit — the search
term never leaves the client.

:func:`build_search_pages` produces the index pages;
:func:`search_route` the lightscript route that serves queries.
``Site.enable_search()`` wires both in automatically.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Tuple

from repro.core.lightweb.lightscript import Route
from repro.errors import CapacityError

_WORD_RE = re.compile(r"[a-z0-9]{3,24}")

#: Words too common to index (tiny stopword list; enough for demo corpora).
STOPWORDS = frozenset(
    "the and for with that this from are was were has have had not you "
    "all can will one two its our their his her they them".split()
)

DEFAULT_MAX_RESULTS = 8
DEFAULT_MAX_TERMS = 2000

SEARCH_PREFIX = "/_search/"


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens, stopwords removed."""
    return [word for word in _WORD_RE.findall(text.lower())
            if word not in STOPWORDS]


def build_search_pages(domain: str, pages: Dict[str, Dict[str, Any]],
                       max_results: int = DEFAULT_MAX_RESULTS,
                       max_terms: int = DEFAULT_MAX_TERMS
                       ) -> Dict[str, Dict[str, Any]]:
    """Compile an inverted index over a site's pages into data pages.

    Args:
        domain: the site's domain.
        pages: ``rest -> content`` as authored (string bodies indexed;
            search pages themselves and non-text fields are skipped).
        max_results: result links kept per term (most-relevant first, by
            term frequency).
        max_terms: overall cap on indexed terms (highest-frequency kept).

    Returns:
        ``rest -> content`` for the index pages
        (``/_search/<term>.json`` each holding a ``results`` link list).
    """
    postings: Dict[str, List[Tuple[int, str, str]]] = defaultdict(list)
    for rest, content in pages.items():
        if rest.startswith(SEARCH_PREFIX):
            continue
        title = str(content.get("title", rest.strip("/") or domain))
        body = content.get("body")
        text = title + " " + (body if isinstance(body, str) else "")
        counts: Dict[str, int] = defaultdict(int)
        for token in tokenize(text):
            counts[token] += 1
        for term, count in counts.items():
            postings[term].append((count, domain + rest, title))

    if len(postings) > max_terms:
        keep = sorted(
            postings,
            key=lambda term: -sum(c for c, _p, _t in postings[term]),
        )[:max_terms]
        postings = {term: postings[term] for term in keep}

    search_pages: Dict[str, Dict[str, Any]] = {}
    for term, hits in postings.items():
        hits.sort(key=lambda hit: (-hit[0], hit[1]))
        links = [f"[[{path}|{title}]]" for _count, path, title in
                 hits[:max_results]]
        search_pages[f"{SEARCH_PREFIX}{term}.json"] = {
            "term": term,
            "n_results": len(links),
            "results": links,
        }
    return search_pages


def search_route(domain: str) -> Route:
    """The lightscript route serving ``domain/search?q=<term>``."""
    return Route(
        pattern=r"^/search$",
        fetches=(f"{domain}{SEARCH_PREFIX}{{query.q|}}.json",),
        render=("Search results for '{query.q|}':\n"
                "{data0.results|no results}"),
    )


__all__ = [
    "build_search_pages",
    "search_route",
    "tokenize",
    "STOPWORDS",
    "SEARCH_PREFIX",
    "DEFAULT_MAX_RESULTS",
]
