"""The lightweb browser: "essentially a minimal web browser that speaks the
ZLTP protocol" (§3.2).

A page visit follows the paper's four steps exactly:

1. **Connect to a CDN** — :meth:`LightwebBrowser.connect` opens the two
   ZLTP sessions of §3.2, one for code blobs and one for data blobs.
2. **Fetch code blob** — the domain's program is fetched privately on the
   code session and cached aggressively ("we would expect code blobs to
   change very rarely").
3. **Fetch data blobs** — the program plans at most ``fetch_budget`` data
   fetches; the browser *pads the count to exactly the budget* with dummy
   keyword lookups so "the number of data blobs fetched per page view" is
   fixed, as §3.2 requires. Protected payloads are unsealed with the user's
   account keys (§3.3); missing keys render as access-denied rather than
   failing the page.
4. **Render content** — the program's template produces text;
   ``[[path|label]]`` spans become followable links, and continuation
   chunks surface as "next" links (§5's long-value story).

The browser keeps a ``network_log`` of every GET it makes. Tests assert the
§3.2 leakage contract directly against it: per visit, exactly one optional
code GET plus exactly ``fetch_budget`` data GETs — never a function of which
page was requested.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.lightweb.access import AccountKeyring, is_protected
from repro.core.lightweb.ads import AdInventory, select_ad
from repro.core.lightweb.blobs import decode_json_payload
from repro.core.lightweb.lightscript import LightscriptProgram
from repro.core.lightweb.paths import parse_path, split_query
from repro.core.lightweb.storage import LocalStorage
from repro.errors import AccessError, PathError, ProtocolError, TransportError
from repro.obs.metrics import record_failover, record_retry

_LINK_RE = re.compile(r"\[\[([^\]|]+)(?:\|([^\]]*))?\]\]")

PromptHandler = Callable[[str, str], Optional[Any]]


@dataclass
class RenderedPage:
    """The result of one page visit.

    Attributes:
        path: the requested full path.
        text: the rendered page text (links replaced by their labels).
        links: ``(target_path, label)`` pairs in order of appearance.
        fetched_paths: the real (non-dummy) data paths fetched.
        data: the parsed data blobs, aligned with ``fetched_paths``
            (None for absent or access-denied blobs).
        notes: human-readable events (access denied, missing route, ...).
    """

    path: str
    text: str
    links: List[Tuple[str, str]] = field(default_factory=list)
    fetched_paths: List[str] = field(default_factory=list)
    data: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def link_targets(self) -> List[str]:
        """Just the link target paths."""
        return [target for target, _label in self.links]


class LightwebBrowser:
    """A stateful lightweb client for one user."""

    def __init__(self, storage: Optional[LocalStorage] = None,
                 keyring: Optional[AccountKeyring] = None,
                 prompt_handler: Optional[PromptHandler] = None,
                 interests: Optional[List[str]] = None,
                 rng: Optional[np.random.Generator] = None):
        """Create a browser.

        Args:
            storage: per-domain local storage (fresh if omitted).
            keyring: subscriber accounts for protected content.
            prompt_handler: called as ``handler(domain, key)`` when a page
                needs a local value the user has not provided (§3.3's
                postal-code prompt); returning None skips the prompt.
            interests: the local interest profile ads are targeted against.
            rng: randomness for dummy-fetch padding.
        """
        self.storage = storage if storage is not None else LocalStorage()
        self.keyring = keyring if keyring is not None else AccountKeyring()
        self.prompt_handler = prompt_handler
        self.interests = list(interests) if interests is not None else []
        self._rng = rng if rng is not None else np.random.default_rng()
        self._code_client = None
        self._data_client = None
        self._code_cache: Dict[str, LightscriptProgram] = {}
        self.fetch_budget: Optional[int] = None
        self.universe_name: Optional[str] = None
        self.cdn_name: Optional[str] = None
        self.history: List[str] = []
        self.network_log: List[Dict[str, Any]] = []
        self._dummy_counter = 0
        #: CDN failovers this browser performed (§3.5; also in metrics).
        self.failovers = 0

    # ------------------------------------------------------------------
    # Step 1: connect to a CDN
    # ------------------------------------------------------------------

    def connect(self, cdn, universe_name: str,
                client_modes: Optional[List[str]] = None,
                transport_factory=None,
                fallbacks: Optional[List[Tuple[Any, str]]] = None) -> None:
        """Open the code and data ZLTP sessions against one universe.

        Args:
            cdn: the primary CDN.
            universe_name: the universe to browse on it.
            client_modes: ZLTP modes to offer.
            transport_factory: optional transport wiring (simnet, taps).
            fallbacks: further ``(cdn, universe_name)`` pairs — §3.5's
                fault-tolerance story: peered CDNs carry the same content,
                so the browser fails over mid-session when the primary
                stops answering.
        """
        self._endpoints = [(cdn, universe_name)] + list(fallbacks or [])
        self._endpoint_index = 0
        self._client_modes = client_modes
        self._transport_factory = transport_factory
        self._connect_current()

    def _connect_current(self) -> None:
        cdn, universe_name = self._endpoints[self._endpoint_index]
        universe = cdn.universe(universe_name)
        self._code_client = cdn.connect(
            universe_name, "code", client_modes=self._client_modes,
            transport_factory=self._transport_factory, rng=self._rng,
        )
        self._data_client = cdn.connect(
            universe_name, "data", client_modes=self._client_modes,
            transport_factory=self._transport_factory, rng=self._rng,
        )
        self.fetch_budget = universe.fetch_budget
        self.universe_name = universe_name
        self.cdn_name = cdn.name

    def _failover(self) -> bool:
        """Advance to the next configured endpoint; False if exhausted."""
        while self._endpoint_index + 1 < len(self._endpoints):
            self._endpoint_index += 1
            try:
                self._connect_current()
            except (TransportError, ProtocolError):
                continue
            self.failovers += 1
            record_failover("browser")
            return True
        return False

    @property
    def connected(self) -> bool:
        """Whether both sessions are open."""
        return self._code_client is not None and self._data_client is not None

    def close(self) -> None:
        """Close both ZLTP sessions."""
        if self._code_client is not None:
            self._code_client.close()
        if self._data_client is not None:
            self._data_client.close()
        self._code_client = None
        self._data_client = None

    # ------------------------------------------------------------------
    # Steps 2-4: visit a page
    # ------------------------------------------------------------------

    def visit(self, path: str) -> RenderedPage:
        """Visit a lightweb path privately; returns the rendered page.

        On a transport failure (dead CDN) the browser fails over to the
        next configured endpoint, if any, and retries the visit once.

        Raises:
            PathError: if the path is invalid or the domain hosts no site.
            ProtocolError: if the browser is not connected.
            TransportError: if every configured endpoint is unreachable.
        """
        try:
            return self._visit_once(path)
        except TransportError:
            if not self._failover():
                raise
            record_retry("browser")
            return self._visit_once(path)

    def _visit_once(self, path: str) -> RenderedPage:
        if not self.connected:
            raise ProtocolError("browser is not connected to a universe")
        parsed = parse_path(path)
        route_rest, query_string = split_query(parsed.rest)
        query = _parse_query(query_string)

        program = self._load_program(parsed.domain)
        route, match = program.match(route_rest)
        notes: List[str] = []
        fetch_paths: List[str] = []
        storage_view = self._storage_view(parsed.domain)

        if route is None:
            notes.append(f"no route matches {route_rest!r}")
        else:
            self._run_prompts(parsed.domain, route)
            storage_view = self._storage_view(parsed.domain)
            fetch_paths = program.plan_fetches(
                route, match, storage_view, query, self.fetch_budget
            )

        integrity_root = _integrity_root(program)
        data = [self._fetch_data(p, notes, integrity_root) for p in fetch_paths]
        # Pad to the fixed budget with dummy keyword lookups so the
        # on-the-wire GET count never depends on the page (§3.2).
        for _ in range(self.fetch_budget - len(fetch_paths)):
            self._dummy_fetch()

        if route is None:
            text = f"[not found] {parsed.full}"
        else:
            text = program.render(route, match, storage_view, query, data)

        links = _extract_links(text)
        text = _LINK_RE.sub(lambda m: m.group(2) or m.group(1), text)
        for content in data:
            if isinstance(content, dict) and isinstance(content.get("next"), str):
                links.append((content["next"], "next"))

        self.history.append(parsed.full)
        return RenderedPage(
            path=parsed.full,
            text=text,
            links=links,
            fetched_paths=fetch_paths,
            data=data,
            notes=notes,
        )

    def dummy_page_view(self) -> None:
        """Emit a full dummy page view: exactly ``fetch_budget`` data GETs.

        On the wire this is indistinguishable from a real visit to a domain
        whose code blob is cached — the building block of the cover-traffic
        schedule (:mod:`repro.core.lightweb.scheduler`).
        """
        if not self.connected:
            raise ProtocolError("browser is not connected to a universe")
        for _ in range(self.fetch_budget):
            self._dummy_fetch()

    def follow(self, page: RenderedPage, index: int) -> RenderedPage:
        """Follow the ``index``-th link of a rendered page."""
        targets = page.link_targets()
        if not 0 <= index < len(targets):
            raise PathError(f"page has {len(targets)} links; no index {index}")
        return self.visit(targets[index])

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def bytes_sent(self) -> int:
        """Bytes uploaded across both sessions."""
        return self._code_client.bytes_sent + self._data_client.bytes_sent

    @property
    def bytes_received(self) -> int:
        """Bytes downloaded across both sessions."""
        return self._code_client.bytes_received + self._data_client.bytes_received

    def gets_for_last_visit(self) -> Dict[str, int]:
        """GET counts attributable to the most recent visit."""
        counts: Dict[str, int] = {"code-get": 0, "data-get": 0}
        for event in reversed(self.network_log):
            if event["visit"] != len(self.history) - 1:
                break
            counts[event["kind"]] += 1
        return counts

    def forget_domain(self, domain: str) -> None:
        """Drop a domain's cached code and local storage."""
        self._code_cache.pop(domain, None)
        self.storage.clear_domain(domain)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _log(self, kind: str) -> None:
        self.network_log.append({"kind": kind, "visit": len(self.history)})

    def _load_program(self, domain: str) -> LightscriptProgram:
        program = self._code_cache.get(domain)
        if program is not None:
            return program
        payload = self._code_client.get(domain)
        self._log("code-get")
        if payload is None:
            raise PathError(
                f"no lightweb site for {domain} in universe {self.universe_name}"
            )
        program = LightscriptProgram.from_json(payload)
        self._code_cache[domain] = program
        return program

    def _storage_view(self, domain: str) -> Dict[str, Any]:
        return {key: self.storage.get(domain, key)
                for key in self.storage.keys(domain)}

    def _run_prompts(self, domain: str, route) -> None:
        for key in route.prompts:
            if self.storage.get(domain, key) is not None:
                continue
            if self.prompt_handler is None:
                continue
            value = self.prompt_handler(domain, key)
            if value is not None:
                self.storage.set(domain, key, value)

    def _fetch_data(self, data_path: str, notes: List[str],
                    integrity_root: Optional[bytes] = None
                    ) -> Optional[Dict[str, Any]]:
        payload = self._data_client.get(data_path)
        self._log("data-get")
        if payload is None:
            return None
        try:
            content = decode_json_payload(payload)
        except ProtocolError:
            notes.append(f"malformed data blob at {data_path}")
            return None
        if integrity_root is not None:
            content = self._verify_integrity(data_path, content,
                                             integrity_root, notes)
            if content is None:
                return None
        if not isinstance(content, dict):
            content = {"body": content}
        if is_protected(content):
            try:
                content = self.keyring.unseal(data_path, content)
            except AccessError as exc:
                notes.append(f"access denied at {data_path}: {exc}")
                return None
        if "ads" in content:
            ad = select_ad(AdInventory.from_payload(content["ads"]), self.interests)
            if ad is not None:
                content = dict(content)
                content["selected_ad"] = ad.text
        return content

    def _verify_integrity(self, data_path: str, content: Any,
                          root: bytes, notes: List[str]
                          ) -> Optional[Dict[str, Any]]:
        """Check an integrity-wrapped payload against the code-blob root."""
        from repro.core.lightweb.blobs import encode_json_payload
        from repro.core.lightweb.publisher import (
            INTEGRITY_CONTENT,
            INTEGRITY_PROOF,
        )
        from repro.crypto.merkle import decode_proof, verify_proof
        from repro.errors import IntegrityError

        if not isinstance(content, dict) or INTEGRITY_CONTENT not in content:
            notes.append(f"integrity violation at {data_path}: missing wrapper")
            return None
        inner = content[INTEGRITY_CONTENT]
        try:
            proof = decode_proof(str(content.get(INTEGRITY_PROOF, "")))
            verify_proof(root, encode_json_payload(inner), proof)
        except IntegrityError as exc:
            notes.append(f"integrity violation at {data_path}: {exc}")
            return None
        if not isinstance(inner, dict):
            inner = {"body": inner}
        return inner

    def _dummy_fetch(self) -> None:
        self._dummy_counter += 1
        nonce = int(self._rng.integers(0, 2**62))
        # A keyword lookup for a key that cannot exist: same wire signature
        # as a real GET (same probe count, same sizes), no real content.
        self._data_client.get(f"padding.invalid/{nonce}-{self._dummy_counter}")
        self._log("data-get")


def _integrity_root(program: LightscriptProgram) -> Optional[bytes]:
    """The site's Merkle root, if its code blob declares one."""
    from repro.core.lightweb.publisher import INTEGRITY_ROOT_KEY

    encoded = program.style.get(INTEGRITY_ROOT_KEY)
    if not isinstance(encoded, str):
        return None
    try:
        root = bytes.fromhex(encoded)
    except ValueError:
        return None
    return root if len(root) == 32 else None


def _parse_query(query_string: str) -> Dict[str, str]:
    query: Dict[str, str] = {}
    if not query_string:
        return query
    for pair in query_string.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[key] = value
    return query


def _extract_links(text: str) -> List[Tuple[str, str]]:
    links = []
    for match in _LINK_RE.finditer(text):
        target = match.group(1).strip()
        label = (match.group(2) or target).strip()
        links.append((target, label))
    return links


__all__ = ["LightwebBrowser", "RenderedPage"]
