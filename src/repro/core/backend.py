"""The pluggable PIR-backend registry behind ZLTP's modes of operation.

The paper's core claim (§4) is that lightweb can swap its private-retrieval
substrate — two-server DPF PIR, single-server LWE PIR, or an enclave with
ORAM — without changing the browsing layer. This module is the seam that
makes the swap real in code: one :class:`BackendSpec` per mode, registered
through the :func:`declare_backend` decorator pair, is the **single source
of truth** for

- the wire-visible mode *name* (plus human-friendly aliases for the CLI),
- how many server endpoints a client session needs (two for ``pir2``'s
  non-colluding pair, one otherwise),
- the server-preference order used by :func:`negotiate`,
- whether the mode snapshots the database at build time (and so must be
  rebuilt when a publisher push lands) and whether it has a one-time
  setup download (the LWE hint),
- the per-backend cost parameters the §5 cost model scales up, and
- the server/client classes themselves, so the zero-leakage analyzer can
  enumerate every wire-facing answer path from the registry instead of a
  name pattern.

A new backend is therefore one self-contained module::

    from repro.core import backend

    toy = backend.declare_backend(
        "toy", endpoints=1, preference=50, assumption="none (demo)")

    @toy.server
    class ToyServer:
        @classmethod
        def from_context(cls, database, ctx):
            ...

    @toy.client
    class ToyClient:
        @classmethod
        def from_hello(cls, domain_bits, blob_size, hello_params, setup,
                       rng=None):
            ...

and immediately negotiates, serves through :class:`~repro.core.zltp.server.
ZltpServerSession`, appears in ``lightweb serve --modes``, and is covered
by ``lightweb lint`` — with no edits to ``modes.py``, ``server.py`` or the
CLI.

Every backend call is accounted through one shared :class:`RequestStats`
record (queries served, bytes up/down, scan seconds) so the CDN, the scan
engine, and the benchmarks report per-backend metrics from one structure.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - Protocol is typing-only sugar
    from typing import Protocol
except ImportError:  # pragma: no cover - very old pythons
    Protocol = object  # type: ignore[assignment]

from repro.errors import NegotiationError, ProtocolError, ReproError
from repro.obs.trace import span


# --------------------------------------------------------------------------
# The shared per-backend accounting record
# --------------------------------------------------------------------------


@dataclass
class RequestStats:
    """Per-backend serving counters, shared across every layer.

    One structure carries the numbers the ZLTP server session measures,
    the scan engine aggregates, the CDN reports per universe, and the
    benchmarks serialise — instead of three ad-hoc counter sets.

    Attributes:
        queries: private-GETs answered.
        bytes_up: total request-payload bytes received (mode payloads,
            not framing).
        bytes_down: total answer-payload bytes produced.
        scan_seconds: wall time spent inside backend ``answer`` /
            ``answer_batch`` calls.
        retries: shard/task retries absorbed while answering (a request
            that needed a retry still succeeded — this counts the
            recoveries, not failures).
    """

    queries: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    scan_seconds: float = 0.0
    retries: int = 0

    # Deliberately a plain class attribute, not a dataclass field:
    # freezing must not change equality or the serialised form, so a
    # frozen snapshot still compares equal to a live record with the
    # same counters.
    _frozen = False

    def freeze(self) -> "RequestStats":
        """Make this record immutable; returns self for chaining.

        Reports hand out frozen snapshots so a caller can never mutate
        (or observe mid-update tearing of) the live accounting state.
        """
        self._frozen = True
        return self

    def add(self, queries: int = 0, bytes_up: int = 0, bytes_down: int = 0,
            scan_seconds: float = 0.0, retries: int = 0) -> "RequestStats":
        """Accumulate raw deltas in place; returns self for chaining.

        Raises:
            ReproError: if this record is a frozen snapshot.
        """
        if self._frozen:
            raise ReproError("RequestStats snapshot is frozen")
        self.queries += queries
        self.bytes_up += bytes_up
        self.bytes_down += bytes_down
        self.scan_seconds += scan_seconds
        self.retries += retries
        return self

    def merge(self, other: "RequestStats") -> "RequestStats":
        """Fold another record into this one in place."""
        return self.add(queries=other.queries, bytes_up=other.bytes_up,
                        bytes_down=other.bytes_down,
                        scan_seconds=other.scan_seconds,
                        retries=other.retries)

    def copy(self) -> "RequestStats":
        """An independent snapshot of the current counters."""
        return RequestStats(queries=self.queries, bytes_up=self.bytes_up,
                            bytes_down=self.bytes_down,
                            scan_seconds=self.scan_seconds,
                            retries=self.retries)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what benchmark result files embed)."""
        return {
            "queries": self.queries,
            "bytes_up": self.bytes_up,
            "bytes_down": self.bytes_down,
            "scan_seconds": self.scan_seconds,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestStats":
        """Inverse of :meth:`as_dict` (used when re-reading benchmark JSON).

        ``retries`` defaults to 0 so JSON written before the resilience
        counters existed still round-trips.
        """
        return cls(queries=int(data["queries"]),
                   bytes_up=int(data["bytes_up"]),
                   bytes_down=int(data["bytes_down"]),
                   scan_seconds=float(data["scan_seconds"]),
                   retries=int(data.get("retries", 0)))


# The RequestStats delta of the answer call currently executing on this
# thread/context. Layers *below* the backend seam (the scan engine's
# shard-retry path) attribute recoveries to the request being answered
# through this, without threading a stats handle down every call chain.
_active_stats: ContextVar[Optional[RequestStats]] = ContextVar(
    "repro_backend_active_stats", default=None)


def current_request_stats() -> Optional[RequestStats]:
    """The live stats delta of the in-flight answer call, if any."""
    return _active_stats.get()


def timed_answer(server: "PirBackend", payload: bytes,
                 stats: RequestStats) -> bytes:
    """Run one backend ``answer`` call, accounting it on ``stats``."""
    with span("backend.answer") as sp:
        token = _active_stats.set(stats)
        try:
            answer = server.answer(payload)
        finally:
            _active_stats.reset(token)
        sp.annotate(bytes_up=len(payload), bytes_down=len(answer))
    stats.add(queries=1, bytes_up=len(payload), bytes_down=len(answer),
              scan_seconds=sp.elapsed)
    return answer


def timed_answer_batch(server: "PirBackend", payloads: Sequence[bytes],
                       stats: RequestStats) -> List[bytes]:
    """Run one backend ``answer_batch`` call, accounting it on ``stats``.

    Falls back to per-payload ``answer`` calls when the backend does not
    implement batching.
    """
    with span("backend.answer_batch", batch=len(payloads)) as sp:
        token = _active_stats.set(stats)
        try:
            answer_batch = getattr(server, "answer_batch", None)
            if answer_batch is not None:
                answers = answer_batch(list(payloads))
            else:
                answers = [server.answer(payload) for payload in payloads]
        finally:
            _active_stats.reset(token)
        bytes_up = sum(len(p) for p in payloads)
        bytes_down = sum(len(a) for a in answers)
        sp.annotate(bytes_up=bytes_up, bytes_down=bytes_down)
    stats.add(queries=len(answers), bytes_up=bytes_up,
              bytes_down=bytes_down, scan_seconds=sp.elapsed)
    return answers


# --------------------------------------------------------------------------
# The backend protocol (capabilities every mode implements)
# --------------------------------------------------------------------------


class PirBackend(Protocol):
    """Server half of a PIR backend: opaque query payload in, answer out."""

    def hello_params(self) -> Dict[str, Any]:
        """Mode parameters announced in the ServerHello."""

    def setup(self) -> Dict[str, Any]:
        """One-time setup payload (empty when ``needs_setup`` is False)."""

    def answer(self, payload: bytes) -> bytes:
        """Answer one private-GET payload."""

    def answer_batch(self, payloads: List[bytes]) -> List[bytes]:
        """Answer a pipelined run of payloads (one scan where possible)."""


class PirBackendClient(Protocol):
    """Client half of a PIR backend: build queries, decode answers."""

    def queries_for_slot(self, slot: int) -> List[bytes]:
        """One opaque query payload per server endpoint."""

    def decode(self, answers: List[bytes]) -> bytes:
        """Recombine the per-endpoint answers into the fetched record."""


# --------------------------------------------------------------------------
# Per-backend cost parameters (consumed by repro.costmodel)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendCost:
    """Cost-model parameters the §5 estimator looks up by backend name.

    Attributes:
        servers_per_request: how many logical servers process every
            request (2 for the non-colluding pair, 1 otherwise) — the
            paper's ``×2`` in the Table 2 vCPU arithmetic.
        linear_scan: whether per-request server work is a linear pass
            over the dataset (False for the polylog enclave mode).
        note: one-line description for cost reports.
    """

    servers_per_request: int = 1
    linear_scan: bool = True
    note: str = ""


# --------------------------------------------------------------------------
# Backend construction context
# --------------------------------------------------------------------------


@dataclass
class ServerContext:
    """Everything a backend may need to build its server half.

    The registry hands the whole context to ``from_context`` so new
    backends can grow configuration without a cross-cutting signature
    change; unknown-to-a-backend fields are simply ignored.

    Attributes:
        party: this server's role in a multi-endpoint pair (0-based).
        lwe_params: parameters for lattice-based modes, if offered.
        rng: deterministic randomness (tests).
        options: free-form per-backend options.
    """

    party: int = 0
    lwe_params: Any = None
    rng: Any = None
    options: Dict[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------------
# The registry
# --------------------------------------------------------------------------


@dataclass
class BackendSpec:
    """One registered PIR backend: metadata plus both protocol halves.

    Attributes:
        name: canonical wire-visible mode name.
        endpoints: server sessions a client must open for this mode.
        preference: server-side preference rank (lower wins negotiation).
        assumption: the §2.1 security assumption, for docs and CLI output.
        aliases: additional CLI-friendly names (``lwe`` → ``pir-lwe``).
        needs_setup: whether the client must fetch a one-time setup
            payload after the hello (the LWE hint download).
        snapshots_database: whether the server half copies the database at
            build time and must be rebuilt when its version moves.
        cost: per-backend cost-model parameters.
        server_cls / client_cls: the two protocol halves, attached via the
            :meth:`server` / :meth:`client` decorators.
    """

    name: str
    endpoints: int
    preference: int
    assumption: str = ""
    aliases: Tuple[str, ...] = ()
    needs_setup: bool = False
    snapshots_database: bool = True
    cost: BackendCost = field(default_factory=BackendCost)
    server_cls: Optional[type] = None
    client_cls: Optional[type] = None

    # -- decorator halves ------------------------------------------------

    def server(self, cls: type) -> type:
        """Class decorator attaching the server half of this backend."""
        if not hasattr(cls, "from_context"):
            raise ProtocolError(
                f"backend {self.name!r} server class {cls.__name__} must "
                f"define a from_context(database, ctx) classmethod"
            )
        self.server_cls = cls
        return cls

    def client(self, cls: type) -> type:
        """Class decorator attaching the client half of this backend."""
        if not hasattr(cls, "from_hello"):
            raise ProtocolError(
                f"backend {self.name!r} client class {cls.__name__} must "
                f"define a from_hello(...) classmethod"
            )
        self.client_cls = cls
        return cls

    # -- construction ----------------------------------------------------

    def build_server(self, database, ctx: Optional[ServerContext] = None):
        """Build the server half over a blob database."""
        if self.server_cls is None:
            raise NegotiationError(
                f"backend {self.name!r} has no registered server class"
            )
        return self.server_cls.from_context(
            database, ctx if ctx is not None else ServerContext()
        )

    def build_client(self, domain_bits: int, blob_size: int,
                     hello_params: Dict[str, Any], setup: Dict[str, Any],
                     rng=None):
        """Build the client half from a completed hello/setup exchange."""
        if self.client_cls is None:
            raise NegotiationError(
                f"backend {self.name!r} has no registered client class"
            )
        return self.client_cls.from_hello(domain_bits, blob_size,
                                          hello_params, setup, rng=rng)


_registry_lock = threading.Lock()
_backends: Dict[str, BackendSpec] = {}  # guarded-by: _registry_lock
_aliases: Dict[str, str] = {}  # guarded-by: _registry_lock
_builtins_loaded = False  # guarded-by: _registry_lock


def _ensure_builtins() -> None:
    """Import the built-in mode registrations exactly once.

    The registry itself is dependency-free; the three shipped backends
    live in :mod:`repro.core.zltp.modes` and register on import. Lookups
    trigger that import lazily so ``import repro.core.backend`` stays
    cheap and cycle-free.
    """
    global _builtins_loaded
    with _registry_lock:
        if _builtins_loaded:
            return
        _builtins_loaded = True
    import repro.core.zltp.modes  # noqa: F401  (registers on import)


def declare_backend(name: str, *, endpoints: int, preference: int,
                    assumption: str = "", aliases: Iterable[str] = (),
                    needs_setup: bool = False,
                    snapshots_database: bool = True,
                    cost: Optional[BackendCost] = None) -> BackendSpec:
    """Create and register a :class:`BackendSpec`; returns it for the
    ``@spec.server`` / ``@spec.client`` decorators.

    Raises:
        NegotiationError: on a duplicate name/alias or bad endpoint count.
    """
    if endpoints < 1:
        raise NegotiationError(f"backend {name!r}: endpoints must be >= 1")
    spec = BackendSpec(
        name=name, endpoints=endpoints, preference=preference,
        assumption=assumption, aliases=tuple(aliases),
        needs_setup=needs_setup, snapshots_database=snapshots_database,
        cost=cost if cost is not None else BackendCost(
            servers_per_request=endpoints),
    )
    with _registry_lock:
        taken = set(_backends) | set(_aliases)
        for label in (spec.name,) + spec.aliases:
            if label in taken:
                raise NegotiationError(
                    f"backend name {label!r} is already registered"
                )
        _backends[spec.name] = spec
        for alias in spec.aliases:
            _aliases[alias] = spec.name
    return spec


def unregister_backend(name: str) -> None:
    """Remove a registered backend (test hygiene for toy backends)."""
    with _registry_lock:
        spec = _backends.pop(name, None)
        if spec is None:
            raise NegotiationError(f"unknown mode {name!r}")
        for alias in spec.aliases:
            _aliases.pop(alias, None)


def resolve_mode(name: str) -> str:
    """Canonicalise a mode name or alias.

    Raises:
        NegotiationError: if neither a name nor an alias matches.
    """
    _ensure_builtins()
    with _registry_lock:
        if name in _backends:
            return name
        if name in _aliases:
            return _aliases[name]
    raise NegotiationError(f"unknown mode {name!r}")


def get_backend(name: str) -> BackendSpec:
    """Look up a registered backend by name or alias.

    Raises:
        NegotiationError: if the mode is not registered.
    """
    canonical = resolve_mode(name)
    with _registry_lock:
        return _backends[canonical]


def registered_specs() -> List[BackendSpec]:
    """All registered backends in preference order (rank, then name)."""
    _ensure_builtins()
    with _registry_lock:
        specs = list(_backends.values())
    return sorted(specs, key=lambda spec: (spec.preference, spec.name))


def registered_modes() -> List[str]:
    """Registered mode names in preference order.

    The order is derived from each spec's ``preference`` rank, never from
    registration (insertion) order, so it is stable however modules
    happen to be imported.
    """
    return [spec.name for spec in registered_specs()]


def registered_server_class_names() -> List[str]:
    """Class names of every registered server half (for the lint rule)."""
    return sorted({
        spec.server_cls.__name__
        for spec in registered_specs()
        if spec.server_cls is not None
    })


def mode_endpoints(mode: str) -> int:
    """How many ZLTP server sessions the client must open for a mode."""
    return get_backend(mode).endpoints


def capability_metadata(modes: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, Any]]:
    """Per-mode public capability metadata, derived from the registry.

    This is what a server embeds in its discovery announce records (and
    what placement tooling prices deployments from): for each mode, the
    endpoint count a client session needs, the negotiation preference
    rank, whether a one-time setup download exists, and the
    :class:`BackendCost` parameters. Everything here is wire-visible
    protocol structure — nothing per-client, nothing secret.
    """
    names = [resolve_mode(name) for name in modes] if modes is not None \
        else registered_modes()
    out: Dict[str, Dict[str, Any]] = {}
    for name in names:
        spec = get_backend(name)
        out[name] = {
            "endpoints": spec.endpoints,
            "preference": spec.preference,
            "needs_setup": spec.needs_setup,
            "servers_per_request": spec.cost.servers_per_request,
            "linear_scan": spec.cost.linear_scan,
        }
    return out


def negotiate(client_modes: Sequence[str],
              server_modes: Sequence[str]) -> str:
    """Pick the mode: first server-preferred mode the client supports.

    Mode names are canonicalised through the registry; names neither side
    recognises are ignored (a newer peer may offer modes we do not know).

    Raises:
        NegotiationError: if there is no common registered mode.
    """
    def canonical(modes: Sequence[str]) -> List[str]:
        out = []
        for name in modes:
            try:
                out.append(resolve_mode(name))
            except NegotiationError:
                continue
        return out

    offered = set(canonical(client_modes))
    for mode in canonical(server_modes):
        if mode in offered:
            return mode
    raise NegotiationError(
        f"no common mode: client {list(client_modes)}, "
        f"server {list(server_modes)}"
    )


def create_server(mode: str, database, party: int = 0, lwe_params=None,
                  rng=None, options: Optional[Dict[str, Any]] = None):
    """Build the server half of a mode over a blob database."""
    ctx = ServerContext(party=party, lwe_params=lwe_params, rng=rng,
                        options=dict(options or {}))
    return get_backend(mode).build_server(database, ctx)


def create_client(mode: str, domain_bits: int, blob_size: int,
                  hello_params: Dict[str, Any], setup: Dict[str, Any],
                  rng=None):
    """Build the client half of a negotiated mode."""
    return get_backend(mode).build_client(domain_bits, blob_size,
                                          hello_params, setup, rng=rng)


__all__ = [
    "RequestStats",
    "current_request_stats",
    "timed_answer",
    "timed_answer_batch",
    "PirBackend",
    "PirBackendClient",
    "BackendCost",
    "ServerContext",
    "BackendSpec",
    "declare_backend",
    "unregister_backend",
    "resolve_mode",
    "get_backend",
    "registered_specs",
    "registered_modes",
    "registered_server_class_names",
    "mode_endpoints",
    "capability_metadata",
    "negotiate",
    "create_server",
    "create_client",
]
