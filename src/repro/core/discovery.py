"""Server discovery + capability routing: resolved, self-healing endpoints.

The paper's deployment story (§5) assumes clients somehow know which
servers hold which shards in which modes. Until this module, that
knowledge was CLI flag sprawl — ``--code-ports``/``--data-ports`` port
lists a deployment could neither grow nor heal. This module replaces the
hand-wired endpoint lists with a *directory*:

* Servers publish signed :class:`AnnounceRecord`\\ s — (universe, session
  kind, party, modes, shard prefix range, per-mode
  :class:`~repro.core.backend.BackendCost`, current load derived from
  :class:`~repro.core.backend.RequestStats`) — to a directory, and
  re-announce periodically (:class:`Announcer`) so records carry fresh
  load and expire by TTL when a server dies silently.
* Clients resolve a :class:`CapabilityQuery` ("pir2, data sessions,
  party 1") into a ranked candidate list and build a self-healing
  :class:`~repro.core.resilience.EndpointPool` from it
  (:func:`resolved_pool`): when every pooled endpoint is dead the pool
  *re-resolves* against the directory instead of giving up, so a
  replacement server announced after the client connected still heals
  the session — discovery, not flags, is the fallback path.
* The directory itself is pluggable: :class:`InProcessDirectory` for
  tests and embedding, :class:`DirectoryServer`/:class:`DirectoryClient`
  for real TCP deployments, and :func:`static_directory` as the shim
  that keeps the old port-flag CLI working (flags are now just a way to
  pre-populate a local directory).
* :class:`CachingResolver` keeps the last successful answer per query,
  so a dead *directory* degrades gracefully: resolves fall back to
  cached records within a TTL-grace window instead of failing.

Zero-leakage notes (also in DESIGN.md):

1. Discovery is **control plane**. Announce records describe server
   topology — universes, modes, shard placement, aggregate load — all
   public metadata an on-path observer of the data plane learns anyway.
   No client secret ever enters a record or a query.
2. The *browsing* client never issues prefix-scoped queries: it resolves
   by (universe, kind, mode, party) and the sharded front-end fans out
   server-side, so the directory cannot learn which shard a client is
   reading. Prefix-range queries exist for server-side placement tooling
   only.
3. Records are MACed with a deployment secret (`blake2b` keyed hash,
   verified with ``hmac.compare_digest``), so a compromised directory
   cannot forge endpoints and redirect clients to a malicious server;
   clients re-verify every record they receive.
4. Directory frames are padded to a fixed size
   (:data:`DIRECTORY_FRAME_BYTES`), mirroring the data plane's
   fixed-size-frame invariant — message length reveals nothing about
   directory contents.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import backend as backend_registry
from repro.core.resilience import EndpointPool
from repro.core.zltp.wire import FrameDecoder, encode_frame
from repro.errors import DiscoveryError, TransportError
from repro.obs.logs import get_logger
from repro.obs.metrics import (
    record_announce,
    record_rediscovery,
    record_resolve,
)
from repro.obs.trace import span

_log = get_logger(__name__)

#: Development default; real deployments pass their own secret.
DEFAULT_SECRET = b"lightweb-dev-directory"

#: Every directory request and response is padded to exactly this many
#: payload bytes (control-plane twin of the data plane's fixed-size-frame
#: invariant; see PROTOCOL.md).
DIRECTORY_FRAME_BYTES = 16384

_RECV_CHUNK = 65536


def _mac_key(secret: bytes) -> bytes:
    """Derive the record-MAC key from the deployment secret."""
    return hashlib.blake2b(secret, digest_size=32).digest()


# --------------------------------------------------------------------------
# Announce records
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AnnounceRecord:
    """One server endpoint's capability announcement.

    Attributes:
        server_id: stable identity of the listener (survives re-announce;
            a re-announce under the same id replaces the old record).
        host / port: where to dial the ZLTP listener.
        universe: the universe this listener serves.
        kind: session kind, ``"code"`` or ``"data"``.
        party: the endpoint's role in a multi-endpoint mode (0-based).
        modes: canonical mode names served, in the server's preference
            order (derived from the backend registry).
        prefix_bits: width of the server-side shard prefix space
            (0 = unsharded; the listener answers over the whole domain
            either way — the front-end fans out internally).
        prefix_lo / prefix_hi: the half-open shard prefix range this
            deployment's data servers hold, for placement tooling.
        cost: per-mode cost parameters
            (:meth:`~repro.core.backend.BackendCost` as dicts), derived
            from the registry at announce time.
        load: current serving load — aggregate, public counters only
            (``sessions_active``, ``queries``, ``scan_seconds``).
        attrs: free-form public universe metadata clients need before the
            hello (e.g. ``fetch_budget``), so a discovered client needs
            zero out-of-band configuration.
        generation: announce counter; newer generations replace older.
        ttl_seconds: how long the record stays resolvable without a
            re-announce; ``None`` never expires (static shim records).
        signature: keyed-MAC over the canonical payload (hex).
    """

    server_id: str
    host: str
    port: int
    universe: str
    kind: str
    party: int = 0
    modes: Tuple[str, ...] = ()
    prefix_bits: int = 0
    prefix_lo: int = 0
    prefix_hi: int = 0
    cost: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    load: Dict[str, float] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)
    generation: int = 0
    ttl_seconds: Optional[float] = None
    signature: str = ""

    def payload_dict(self) -> Dict[str, Any]:
        """The signed portion of the record (everything but the MAC)."""
        return {
            "server_id": self.server_id,
            "host": self.host,
            "port": self.port,
            "universe": self.universe,
            "kind": self.kind,
            "party": self.party,
            "modes": list(self.modes),
            "prefix_bits": self.prefix_bits,
            "prefix_lo": self.prefix_lo,
            "prefix_hi": self.prefix_hi,
            "cost": self.cost,
            "load": self.load,
            "attrs": self.attrs,
            "generation": self.generation,
            "ttl_seconds": self.ttl_seconds,
        }

    def _canonical(self) -> bytes:
        return json.dumps(self.payload_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def sign(self, secret: bytes = DEFAULT_SECRET) -> "AnnounceRecord":
        """A copy of this record MACed under the deployment secret."""
        mac = hashlib.blake2b(self._canonical(), key=_mac_key(secret),
                              digest_size=16).hexdigest()
        return replace(self, signature=mac)

    def verify(self, secret: bytes = DEFAULT_SECRET) -> bool:
        """Whether the signature matches the payload under ``secret``."""
        expected = hashlib.blake2b(self._canonical(), key=_mac_key(secret),
                                   digest_size=16).hexdigest()
        return hmac.compare_digest(expected, self.signature)

    def covers_prefix(self, prefix: int) -> bool:
        """Whether this record's shard range contains ``prefix``."""
        if self.prefix_bits == 0:
            return True
        return self.prefix_lo <= prefix < self.prefix_hi

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, signature included."""
        data = self.payload_dict()
        data["signature"] = self.signature
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnnounceRecord":
        """Inverse of :meth:`to_dict`.

        Raises:
            DiscoveryError: on a structurally invalid record.
        """
        try:
            return cls(
                server_id=str(data["server_id"]),
                host=str(data["host"]),
                port=int(data["port"]),
                universe=str(data["universe"]),
                kind=str(data["kind"]),
                party=int(data.get("party", 0)),
                modes=tuple(data.get("modes", ())),
                prefix_bits=int(data.get("prefix_bits", 0)),
                prefix_lo=int(data.get("prefix_lo", 0)),
                prefix_hi=int(data.get("prefix_hi", 0)),
                cost=dict(data.get("cost", {})),
                load=dict(data.get("load", {})),
                attrs=dict(data.get("attrs", {})),
                generation=int(data.get("generation", 0)),
                ttl_seconds=(None if data.get("ttl_seconds") is None
                             else float(data["ttl_seconds"])),
                signature=str(data.get("signature", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DiscoveryError(f"malformed announce record: {exc}") from exc


# --------------------------------------------------------------------------
# Capability queries and ranking
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CapabilityQuery:
    """What a client needs from the directory.

    All fields but ``universe`` and ``kind`` are optional filters; a
    ``None`` field matches every record. ``prefix`` is for server-side
    placement tooling only — the browsing client never scopes a query to
    a shard (see the module docstring's leakage notes).
    """

    universe: str
    kind: str
    mode: Optional[str] = None
    party: Optional[int] = None
    prefix: Optional[int] = None

    def matches(self, record: AnnounceRecord) -> bool:
        """Whether ``record`` satisfies this query."""
        if record.universe != self.universe or record.kind != self.kind:
            return False
        if self.mode is not None and self.mode not in record.modes:
            return False
        if self.party is not None and record.party != self.party:
            return False
        if self.prefix is not None and not record.covers_prefix(self.prefix):
            return False
        return True

    def key(self) -> Tuple:
        """Hashable cache key for resolvers."""
        return (self.universe, self.kind, self.mode, self.party, self.prefix)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the directory wire query)."""
        return {"universe": self.universe, "kind": self.kind,
                "mode": self.mode, "party": self.party,
                "prefix": self.prefix}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CapabilityQuery":
        try:
            return cls(universe=str(data["universe"]), kind=str(data["kind"]),
                       mode=data.get("mode"), party=data.get("party"),
                       prefix=data.get("prefix"))
        except KeyError as exc:
            raise DiscoveryError(f"malformed capability query: {exc}") from exc


def rank_records(records: Sequence[AnnounceRecord]) -> List[AnnounceRecord]:
    """Least-loaded first, deterministic tie-break on server id.

    Load is the announced aggregate — public counters, refreshed on
    every re-announce, so a hot server drifts to the back of every pool
    built after its next announce. Keys, most urgent first:

    1. ``admission_queue_depth`` — queries admitted and waiting behind
       the scan *right now*. A server whose gate is backed up is the one
       actively shedding, so new sessions route around it first.
    2. ``sessions_active`` — live session count.
    3. cumulative CPU time: the parent's ``scan_seconds`` plus
       ``worker_busy_seconds`` burned inside its scan-pool workers (a
       multiprocess server's load lives mostly in its workers, and
       ranking only the parent's share would make the busiest machines
       look idle).

    Servers without an admission gate announce no queue depth and sort
    as depth 0 — the pre-gate behaviour, unchanged.
    """
    return sorted(records, key=lambda r: (
        r.load.get("admission_queue_depth", 0.0),
        r.load.get("sessions_active", 0.0),
        r.load.get("scan_seconds", 0.0) +
        r.load.get("worker_busy_seconds", 0.0),
        r.server_id,
    ))


# --------------------------------------------------------------------------
# Directories
# --------------------------------------------------------------------------


class InProcessDirectory:
    """The reference directory: a TTL'd, signature-checked record table.

    Thread-safe; the same instance backs embedded deployments, the TCP
    :class:`DirectoryServer`, and the static port-flag shim.
    """

    def __init__(self, secret: bytes = DEFAULT_SECRET,
                 clock: Callable[[], float] = time.monotonic):
        self._secret = secret
        self._clock = clock
        self._lock = threading.Lock()
        #: server_id -> (record, expires_at or None)
        self._records: Dict[str, Tuple[AnnounceRecord, Optional[float]]] = {}  # guarded-by: _lock
        self.announces = 0  # guarded-by: _lock
        self.expiries = 0  # guarded-by: _lock

    def announce(self, record: AnnounceRecord) -> None:
        """Insert or refresh a record.

        Raises:
            DiscoveryError: on a missing/forged signature or a stale
                generation (an old announcer racing a newer one).
        """
        if not record.verify(self._secret):
            record_announce("rejected")
            raise DiscoveryError(
                f"announce for {record.server_id!r} failed signature check")
        expires = (None if record.ttl_seconds is None
                   else self._clock() + record.ttl_seconds)
        with self._lock:
            existing = self._records.get(record.server_id)
            if existing is not None and \
                    existing[0].generation > record.generation:
                record_announce("stale")
                raise DiscoveryError(
                    f"announce for {record.server_id!r} has stale generation "
                    f"{record.generation} < {existing[0].generation}")
            self._records[record.server_id] = (record, expires)
            self.announces += 1
        record_announce("ok")

    def withdraw(self, server_id: str) -> bool:
        """Drop a record; returns whether it existed."""
        with self._lock:
            return self._records.pop(server_id, None) is not None

    def _prune_locked(self) -> int:
        """Drop expired records; returns how many (caller holds _lock)."""
        now = self._clock()
        dead = [sid for sid, (_r, exp) in self._records.items()
                if exp is not None and exp <= now]
        for sid in dead:
            del self._records[sid]
        return len(dead)

    def resolve(self, query: CapabilityQuery) -> List[AnnounceRecord]:
        """Live records matching ``query``, least-loaded first."""
        with self._lock:
            self.expiries += self._prune_locked()
            matched = [record for record, _exp in self._records.values()
                       if query.matches(record)]
        return rank_records(matched)

    def records(self) -> List[AnnounceRecord]:
        """Every live record (diagnostics and tests)."""
        with self._lock:
            self.expiries += self._prune_locked()
            return [record for record, _exp in self._records.values()]


class DirectoryServer:
    """Serve an :class:`InProcessDirectory` over TCP.

    One fixed-size JSON frame per request, one reply frame, one request
    per connection — the same deliberately tiny shape as the stats
    sidecar, with the data plane's framing reused verbatim. Operations:
    ``announce`` (a signed record), ``resolve`` (a capability query),
    ``withdraw`` (a server id).
    """

    def __init__(self, secret: bytes = DEFAULT_SECRET,
                 host: str = "127.0.0.1", port: int = 0,
                 directory: Optional[InProcessDirectory] = None):
        self.directory = directory if directory is not None \
            else InProcessDirectory(secret=secret)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        _log.info("directory listening", extra={
            "host": self.address[0], "port": self.address[1]})

    def _serve_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                self._serve_request(conn)
            except Exception:
                # One malformed request must not kill the directory.
                _log.exception("directory request failed")
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_request(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        decoder = FrameDecoder()
        frames: List[bytes] = []
        while not frames:
            try:
                chunk = conn.recv(_RECV_CHUNK)
            except OSError:
                return
            if not chunk:
                return
            frames = decoder.feed(chunk)
        try:
            request = _decode_directory_frame(frames[0])
            reply = self._dispatch(request)
        except (DiscoveryError, TransportError) as exc:
            reply = {"ok": False, "error": str(exc)}
        try:
            conn.sendall(encode_frame(_encode_directory_frame(reply)))
        except OSError:
            _log.debug("directory client disconnected mid-write")

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "announce":
            self.directory.announce(
                AnnounceRecord.from_dict(request.get("record", {})))
            return {"ok": True}
        if op == "resolve":
            query = CapabilityQuery.from_dict(request.get("query", {}))
            records = self.directory.resolve(query)
            return {"ok": True,
                    "records": [record.to_dict() for record in records]}
        if op == "withdraw":
            found = self.directory.withdraw(str(request.get("server_id", "")))
            return {"ok": True, "found": found}
        if op == "records":
            # Fleet tooling ("lightweb top") wants every live endpoint,
            # unfiltered — the same public metadata resolve serves, just
            # without a capability query.
            return {"ok": True,
                    "records": [record.to_dict()
                                for record in self.directory.records()]}
        raise DiscoveryError(f"unknown directory op {op!r}")

    def stop(self, timeout: float = 5.0) -> None:
        """Stop listening and join the serving thread (idempotent)."""
        self._stopping.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout)


def _encode_directory_frame(obj: Dict[str, Any]) -> bytes:
    """JSON + NUL padding to the fixed directory frame size."""
    payload = json.dumps(obj, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > DIRECTORY_FRAME_BYTES:
        raise DiscoveryError(
            f"directory message of {len(payload)} bytes exceeds the fixed "
            f"frame size {DIRECTORY_FRAME_BYTES}")
    return payload + b"\x00" * (DIRECTORY_FRAME_BYTES - len(payload))


def _decode_directory_frame(frame: bytes) -> Dict[str, Any]:
    """Inverse of :func:`_encode_directory_frame` (JSON never contains NUL)."""
    try:
        decoded = json.loads(frame.rstrip(b"\x00").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DiscoveryError(f"malformed directory frame: {exc}") from exc
    if not isinstance(decoded, dict):
        raise DiscoveryError("directory frame must be a JSON object")
    return decoded


class DirectoryClient:
    """Talk to a :class:`DirectoryServer` over TCP, one dial per request.

    Connection failures surface as
    :class:`~repro.errors.TransportError` — the signal
    :class:`CachingResolver` turns into a cached-records fallback.
    Records returned by ``resolve`` are re-verified locally, so a
    compromised directory cannot inject forged endpoints.
    """

    def __init__(self, host: str, port: int,
                 secret: bytes = DEFAULT_SECRET,
                 timeout: float = 5.0):
        self.host = host
        self.port = port
        self._secret = secret
        self._timeout = timeout

    def _request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=self._timeout) as sock:
                sock.sendall(encode_frame(_encode_directory_frame(obj)))
                decoder = FrameDecoder()
                frames: List[bytes] = []
                while not frames:
                    chunk = sock.recv(_RECV_CHUNK)
                    if not chunk:
                        raise TransportError(
                            "directory closed before replying")
                    frames = decoder.feed(chunk)
        except OSError as exc:
            raise TransportError(
                f"directory {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        reply = _decode_directory_frame(frames[0])
        if not reply.get("ok", False):
            raise DiscoveryError(
                f"directory rejected request: {reply.get('error', '?')}")
        return reply

    def announce(self, record: AnnounceRecord) -> None:
        """Publish one signed record."""
        self._request({"op": "announce", "record": record.to_dict()})

    def withdraw(self, server_id: str) -> bool:
        """Drop a record by id; returns whether the directory had it."""
        return bool(self._request({"op": "withdraw",
                                   "server_id": server_id}).get("found"))

    def resolve(self, query: CapabilityQuery) -> List[AnnounceRecord]:
        """Matching records, signature-verified locally, ranked."""
        reply = self._request({"op": "resolve", "query": query.to_dict()})
        return rank_records(self._verified(reply))

    def records(self) -> List[AnnounceRecord]:
        """Every live record, signature-verified locally, ranked.

        The fleet-scraping entry point: ``lightweb top`` asks for the
        whole directory and scrapes each endpoint's stats sidecar.
        """
        reply = self._request({"op": "records"})
        return rank_records(self._verified(reply))

    def _verified(self, reply: Dict[str, Any]) -> List[AnnounceRecord]:
        records = []
        for data in reply.get("records", []):
            record = AnnounceRecord.from_dict(data)
            if not record.verify(self._secret):
                raise DiscoveryError(
                    f"directory returned a forged record for "
                    f"{record.server_id!r}")
            records.append(record)
        return records


class CachingResolver:
    """Resolve through a directory, falling back to cached records.

    Every successful resolve is cached per query. When the directory is
    unreachable (:class:`~repro.errors.TransportError`), the last cached
    answer is served instead — within ``grace_seconds`` of when it was
    cached (``None`` = unlimited grace) — so a dead directory degrades
    resolution instead of killing it. Record TTLs still apply at the
    *directory*; the grace window is the client's own staleness bound.
    """

    def __init__(self, directory: Any, grace_seconds: Optional[float] = 300.0,
                 clock: Callable[[], float] = time.monotonic):
        self._directory = directory
        self._grace = grace_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: query key -> (records, cached_at)
        self._cache: Dict[Tuple, Tuple[List[AnnounceRecord], float]] = {}  # guarded-by: _lock
        self.cache_fallbacks = 0  # guarded-by: _lock

    def resolve(self, query: CapabilityQuery) -> List[AnnounceRecord]:
        """Resolve ``query``, preferring the live directory.

        Raises:
            TransportError: the directory is down and no cached answer
                is within the grace window.
        """
        # The span carries only public structural labels — never a shard
        # prefix (the browsing client does not issue prefix queries).
        with span("discovery.resolve", kind=query.kind,
                  mode=query.mode) as sp:
            try:
                records = self._directory.resolve(query)
                source = "directory"
            except TransportError as exc:
                records = self._cached(query)
                if records is None:
                    record_resolve("failed")
                    raise TransportError(
                        f"directory unreachable and no cached records for "
                        f"{query.key()}: {exc}") from exc
                source = "cache"
                with self._lock:
                    self.cache_fallbacks += 1
                _log.warning("directory down; using cached records", extra={
                    "kind": query.kind, "records": len(records)})
            else:
                with self._lock:
                    self._cache[query.key()] = (list(records), self._clock())
            sp.annotate(source=source, records=len(records))
        record_resolve(source, seconds=sp.elapsed)
        return records

    def _cached(self, query: CapabilityQuery) -> Optional[List[AnnounceRecord]]:
        with self._lock:
            entry = self._cache.get(query.key())
            if entry is None:
                return None
            records, cached_at = entry
            if self._grace is not None and \
                    self._clock() - cached_at > self._grace:
                return None
            return list(records)


# --------------------------------------------------------------------------
# The announcer (server side)
# --------------------------------------------------------------------------


class Announcer:
    """Periodically publish a deployment's records to a directory.

    ``records_fn`` is called on every tick so each announce carries a
    fresh load snapshot and a bumped generation. A directory outage is
    absorbed (counted, retried next tick), so servers keep serving while
    the directory heals.
    """

    def __init__(self, directory: Any,
                 records_fn: Callable[[], Sequence[AnnounceRecord]],
                 secret: bytes = DEFAULT_SECRET,
                 interval_seconds: float = 5.0,
                 name: str = "announcer"):
        self._directory = directory
        self._records_fn = records_fn
        self._secret = secret
        self._interval = interval_seconds
        self.name = name
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._generation = 0  # guarded-by: _lock
        self.announced = 0  # guarded-by: _lock
        self.errors = 0  # guarded-by: _lock
        self._announced_ids: set = set()  # guarded-by: _lock

    def announce_now(self) -> int:
        """Publish every record once; returns how many landed."""
        with self._lock:
            self._generation += 1
            generation = self._generation
        landed = 0
        for record in self._records_fn():
            signed = replace(record, generation=generation).sign(self._secret)
            try:
                self._directory.announce(signed)
            except (TransportError, DiscoveryError) as exc:
                with self._lock:
                    self.errors += 1
                _log.warning("announce failed", extra={
                    "server_id": record.server_id, "error": str(exc)})
                continue
            landed += 1
            with self._lock:
                self.announced += 1
                self._announced_ids.add(record.server_id)
        return landed

    def start(self) -> "Announcer":
        """Announce immediately, then re-announce every interval."""
        self.announce_now()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=self.name)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stopping.wait(self._interval):
            self.announce_now()

    def stop(self, withdraw: bool = True, timeout: float = 5.0) -> None:
        """Stop re-announcing; optionally withdraw everything announced."""
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        if withdraw:
            with self._lock:
                ids = sorted(self._announced_ids)
                self._announced_ids.clear()
            for server_id in ids:
                try:
                    self._directory.withdraw(server_id)
                except (TransportError, DiscoveryError):
                    pass


# --------------------------------------------------------------------------
# Client-side pool construction
# --------------------------------------------------------------------------


def dial_for_record(record: AnnounceRecord,
                    connect: Optional[Callable[[str, int], Any]] = None,
                    **connect_kwargs: Any) -> Callable[[], Any]:
    """A zero-argument dial for one announced endpoint."""
    if connect is None:
        from repro.core.zltp.sockets import connect_tcp
        connect = connect_tcp

    def dial() -> Any:
        return connect(record.host, record.port, **connect_kwargs)

    return dial


def resolved_pool(resolver: Any, query: CapabilityQuery,
                  connect: Optional[Callable[[str, int], Any]] = None,
                  name: Optional[str] = None,
                  **connect_kwargs: Any) -> EndpointPool:
    """Build a self-healing :class:`EndpointPool` from a capability query.

    The pool's candidates come from resolving ``query`` now; its
    ``refresh`` hook re-resolves the *same* query when every candidate is
    dead, so endpoints announced after the pool was built (a replacement
    server) transparently heal it — the discovery-native fallback path.

    Raises:
        DiscoveryError: when the initial resolve matches nothing.
    """
    records = resolver.resolve(query)
    if not records:
        raise DiscoveryError(
            f"no server matches capability {query.key()} — nothing announced "
            f"for this universe/kind/mode")
    pool_name = name if name is not None else \
        f"discovered:{query.universe}/{query.kind}" + \
        (f"/party{query.party}" if query.party is not None else "")

    def build_dials(found: Sequence[AnnounceRecord]) -> List[Callable[[], Any]]:
        return [dial_for_record(record, connect=connect, **connect_kwargs)
                for record in found]

    def refresh() -> List[Callable[[], Any]]:
        try:
            found = resolver.resolve(query)
        except TransportError:
            return []  # directory and cache both gone: pool reports its own error
        if not found:
            return []
        record_rediscovery()
        _log.info("pool re-resolved via directory", extra={
            "pool": pool_name, "candidates": len(found)})
        return build_dials(found)

    return EndpointPool(build_dials(records), name=pool_name, refresh=refresh)


def available_modes(records: Sequence[AnnounceRecord]) -> List[str]:
    """Canonical modes served by any of ``records``, in registry
    preference order."""
    served = set()
    for record in records:
        served.update(record.modes)
    return [mode for mode in backend_registry.registered_modes()
            if mode in served]


# --------------------------------------------------------------------------
# The static shim (port flags -> a local directory)
# --------------------------------------------------------------------------


def static_directory(host: str,
                     ports_by_kind: Dict[str, Sequence[int]],
                     replicas_by_kind: Optional[Dict[str, Sequence[int]]] = None,
                     universe: str = "main",
                     modes: Optional[Sequence[str]] = None,
                     attrs: Optional[Dict[str, Any]] = None,
                     secret: bytes = DEFAULT_SECRET) -> InProcessDirectory:
    """Pre-populate a local directory from old-style port flags.

    This is how ``--code-ports``/``--data-ports`` (and the replica-port
    flags) keep working: they no longer wire dial lists by hand, they
    just synthesize never-expiring announce records and feed them through
    the same resolution path a real directory serves.

    The flat replica lists follow the order ``serve --replicas`` prints
    (round by round, party by party): with ``k`` primaries, replica ports
    ``i, i+k, i+2k, ...`` belong to endpoint ``i``.

    Raises:
        DiscoveryError: when a replica list's length is not a multiple of
            its kind's endpoint count (the silent misassignment the old
            flat mapping allowed).
    """
    replicas_by_kind = replicas_by_kind or {}
    offered = tuple(backend_registry.resolve_mode(m) for m in modes) \
        if modes is not None else tuple(backend_registry.registered_modes())
    cost = backend_registry.capability_metadata(offered)
    directory = InProcessDirectory(secret=secret)

    def make(kind: str, party: int, port: int, role: str,
             index: int) -> AnnounceRecord:
        return AnnounceRecord(
            server_id=f"static/{universe}/{kind}/{party}/{role}{index}",
            host=host, port=port, universe=universe, kind=kind, party=party,
            modes=offered, cost=cost, attrs=dict(attrs or {}),
            ttl_seconds=None,
        ).sign(secret)

    for kind, ports in ports_by_kind.items():
        primaries = list(ports)
        replicas = list(replicas_by_kind.get(kind) or [])
        if replicas and len(replicas) % len(primaries) != 0:
            raise DiscoveryError(
                f"{kind} replica ports: got {len(replicas)} for "
                f"{len(primaries)} endpoint(s); the flat list must be a "
                f"multiple of the endpoint count (round by round, party by "
                f"party, as `serve --replicas` prints)")
        for party, port in enumerate(primaries):
            directory.announce(make(kind, party, port, "primary", 0))
            for round_index, port_r in enumerate(
                    replicas[party::len(primaries)]):
                directory.announce(
                    make(kind, party, port_r, "replica", round_index))
    return directory


__all__ = [
    "DEFAULT_SECRET",
    "DIRECTORY_FRAME_BYTES",
    "AnnounceRecord",
    "CapabilityQuery",
    "rank_records",
    "InProcessDirectory",
    "DirectoryServer",
    "DirectoryClient",
    "CachingResolver",
    "Announcer",
    "dial_for_record",
    "resolved_pool",
    "available_modes",
    "static_directory",
]
