"""Transports carrying framed ZLTP messages.

A :class:`Transport` is a duplex byte pipe with framing and byte accounting.
The accounting matters beyond diagnostics: the per-request communication
numbers of §5.1/§5.2 (13.6 KiB, 15.9 KiB) are exactly what these counters
measure, and the network adversary of :mod:`repro.netsim` observes the same
(size, direction, time) stream a real on-path attacker would.

:class:`InMemoryTransport` pairs connect a client to a server inside one
process with synchronous delivery; :mod:`repro.core.zltp.sockets` provides
the real-TCP equivalent; and the network simulator wraps either end to add
latency and adversarial observation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Tuple

from repro.core.zltp.wire import FrameDecoder, encode_frame
from repro.errors import TransportError


class Transport:
    """Abstract duplex framed transport."""

    def send_frame(self, payload: bytes) -> None:
        """Send one message payload (framed on the wire)."""
        raise NotImplementedError

    def recv_frame(self) -> bytes:
        """Receive the next message payload.

        Raises:
            TransportError: if the transport is closed or has no pending
                frame (in-memory transports are synchronous, so an empty
                inbox is a protocol bug, not a wait condition).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Close the transport; further sends raise."""
        raise NotImplementedError

    @property
    def bytes_sent(self) -> int:
        """Total framed bytes sent (wire size, headers included)."""
        raise NotImplementedError

    @property
    def bytes_received(self) -> int:
        """Total framed bytes received."""
        raise NotImplementedError


class InMemoryTransport(Transport):
    """One end of an in-process transport pair with synchronous delivery.

    When this end sends, the peer's ``receiver`` callback (if set) runs
    immediately — that is how an in-process ZLTP server answers without any
    event loop. Frames not consumed by a callback queue in the inbox for
    ``recv_frame``.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._peer: Optional["InMemoryTransport"] = None
        self._inbox: deque = deque()
        self._decoder = FrameDecoder()
        self._closed = False
        self._bytes_sent = 0
        self._bytes_received = 0
        #: Optional synchronous frame handler (used by server sessions).
        self.receiver: Optional[Callable[[bytes], None]] = None
        #: Optional tap invoked with (direction, n_bytes) for every frame;
        #: direction is "send" or "recv". The netsim adversary hooks here.
        self.tap: Optional[Callable[[str, int], None]] = None

    def connect(self, peer: "InMemoryTransport") -> None:
        """Link two endpoints (normally via :func:`transport_pair`)."""
        self._peer = peer
        peer._peer = self

    def send_frame(self, payload: bytes) -> None:
        if self._closed:
            raise TransportError(f"transport {self.name!r} is closed")
        if self._peer is None:
            raise TransportError(f"transport {self.name!r} is not connected")
        frame = encode_frame(payload)
        self._bytes_sent += len(frame)
        if self.tap is not None:
            self.tap("send", len(frame))
        self._peer._deliver(frame)

    def _deliver(self, frame: bytes) -> None:
        if self._closed:
            return  # peer closed mid-flight; drop, as a socket would
        self._bytes_received += len(frame)
        if self.tap is not None:
            self.tap("recv", len(frame))
        for payload in self._decoder.feed(frame):
            if self.receiver is not None:
                self.receiver(payload)
            else:
                self._inbox.append(payload)

    def recv_frame(self) -> bytes:
        if self._inbox:
            return self._inbox.popleft()
        if self._closed:
            raise TransportError(f"transport {self.name!r} is closed")
        raise TransportError(
            f"no pending frame on {self.name!r} (synchronous transport)"
        )

    def pending(self) -> int:
        """Frames queued in the inbox."""
        return len(self._inbox)

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._bytes_received


def transport_pair(client_name: str = "client", server_name: str = "server"
                   ) -> Tuple[InMemoryTransport, InMemoryTransport]:
    """Create a connected (client_end, server_end) in-memory pair."""
    a = InMemoryTransport(client_name)
    b = InMemoryTransport(server_name)
    a.connect(b)
    return a, b


__all__ = ["Transport", "InMemoryTransport", "transport_pair"]
