"""Server-side admission control: shed requests a deadline cannot survive.

Without a gate, a saturated PIR server queues every arriving GET behind a
linear database scan; latency grows with queue depth until *every* client
blows its deadline and goodput collapses to zero — the classic closed-loop
congestion collapse SABRE-style systems bound with admission control. The
fix is to reject work *early and cheaply*: a request that would wait longer
than the deadline it ships under is answered with a fast
``ErrorMessage("overload")`` (microseconds) instead of a doomed scan
(milliseconds–seconds), so the capacity that remains serves requests that
can still succeed.

:class:`AdmissionController` is the gate. It tracks two aggregate, public
quantities — the number of admitted-and-unfinished queries (queue depth)
and an EWMA of per-query service time — and sheds a new batch when other
work is already in flight and either

* the queue depth would exceed ``max_queue_depth``, or
* the estimated time to drain the queue *including the new batch*
  (``(in_flight + n) * ewma_service_seconds``) would exceed
  ``deadline_seconds``.

A batch arriving at an **idle** gate is always admitted: an idle server
cannot be overloaded by one batch, and admitting guarantees the
estimator keeps seeing fresh observations (no admissions would mean no
samples, so a transiently inflated estimate could never decay).

The estimator itself must not confuse *queueing* with *service*. The
reported batch wall time is a **response** time — under load it
includes the wait behind everything admitted earlier, so feeding it to
the EWMA directly makes the gate believe service cost grew with load
and shed nearly everything (the estimate chases ``depth x service``,
a positive feedback loop). The gate therefore takes, per release, the
minimum of two overestimates of per-query cost:

* the reported response time (exact when the batch had the server to
  itself, inflated by queueing when it did not), and
* the **inter-departure time** since the previous release (exact when
  the server stayed busy — a work-conserving bottleneck starts the
  next query the moment one departs — inflated by idle gaps when it
  did not).

Whichever regime the server is in, one of the two is tight, so the
``min`` tracks true drain cost at idle *and* at saturation.

Both inputs are aggregate load statistics, never per-client or
per-request content, so the decision leaks nothing about what anyone is
fetching (the same zero-leakage discipline as the metrics registry). The
gate hangs off :class:`~repro.core.zltp.server.ZltpServer` and is checked
inside :class:`~repro.core.zltp.server.ZltpServerSession` — the state
machine both serving kinds (eventloop and threaded) share — so one
controller covers every transport.

Outcomes are exported through the ``admission_*`` metrics and the
server's :meth:`~repro.core.zltp.server.ZltpServer.capability_snapshot`
load dict, so discovery ranking (:func:`repro.core.discovery.rank_records`)
routes new sessions around saturated servers.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.obs.metrics import record_admission, record_admission_queue_depth


class AdmissionController:
    """A load-shedding gate for one logical ZLTP server.

    Attributes:
        deadline_seconds: the per-request deadline the gate protects —
            the server-side estimate of what clients ship with their
            requests (a deployment-wide public constant).
        max_queue_depth: hard cap on admitted-and-unfinished queries,
            independent of timing estimates (a bound for the cold-start
            window before the EWMA has seen any service times).
        ewma_alpha: weight of the newest observation in the service-time
            EWMA (0 < alpha <= 1; higher = faster adaptation).
    """

    def __init__(self, deadline_seconds: float = 2.0,
                 max_queue_depth: int = 64,
                 ewma_alpha: float = 0.2,
                 initial_service_seconds: float = 0.0):
        if deadline_seconds <= 0:
            raise ReproError("admission deadline must be positive")
        if max_queue_depth < 1:
            raise ReproError("max_queue_depth must be >= 1")
        if not 0 < ewma_alpha <= 1:
            raise ReproError("ewma_alpha must be in (0, 1]")
        if initial_service_seconds < 0:
            raise ReproError("initial_service_seconds cannot be negative")
        self.deadline_seconds = float(deadline_seconds)
        self.max_queue_depth = int(max_queue_depth)
        self.ewma_alpha = float(ewma_alpha)
        self._lock = threading.Lock()
        self._in_flight = 0  # guarded-by: _lock
        self._service_ewma = float(initial_service_seconds)  # guarded-by: _lock
        self._last_departure: Optional[float] = None  # guarded-by: _lock
        self.admitted = 0  # guarded-by: _lock
        self.shed = 0  # guarded-by: _lock
        self._clock = time.monotonic  # injectable for tests

    @property
    def queue_depth(self) -> int:
        """Queries admitted and not yet released."""
        with self._lock:
            return self._in_flight

    @property
    def service_seconds_estimate(self) -> float:
        """The current per-query service-time EWMA (0.0 before any
        observation)."""
        with self._lock:
            return self._service_ewma

    def try_admit(self, n: int = 1) -> Optional[str]:
        """Admit ``n`` queries, or explain (publicly) why not.

        Returns ``None`` on admission — the caller *must* balance it with
        one :meth:`release` for the same ``n`` — or a short public detail
        string for the ``ErrorMessage("overload")`` reply on shed. The
        detail names only aggregate load (depth, estimate), never
        anything about the request.
        """
        if n < 1:
            raise ReproError("cannot admit a non-positive batch")
        with self._lock:
            depth_after = self._in_flight + n
            if self._in_flight == 0:
                # Idle gate: always admit (see the module docstring —
                # this is what lets an inflated estimate self-correct).
                # A busy period starts here, so the inter-departure
                # clock restarts too.
                self._in_flight = depth_after
                self.admitted += n
                self._last_departure = self._clock()
                detail = None
            elif depth_after > self.max_queue_depth:
                self.shed += n
                detail = (f"queue depth {self._in_flight}+{n} exceeds "
                          f"{self.max_queue_depth}")
            elif self._service_ewma > 0.0 and \
                    depth_after * self._service_ewma > self.deadline_seconds:
                self.shed += n
                detail = (f"estimated wait {depth_after * self._service_ewma:.3f}s "
                          f"exceeds deadline {self.deadline_seconds:g}s")
            else:
                self._in_flight = depth_after
                self.admitted += n
                detail = None
            depth = self._in_flight
        if detail is None:
            record_admission("admitted", n)
        else:
            record_admission("shed", n)
        record_admission_queue_depth(depth)
        return detail

    def release(self, n: int = 1,
                service_seconds: Optional[float] = None) -> None:
        """Balance an admit: ``n`` queries finished (however they ended).

        ``service_seconds`` is the wall *response* time of the batch
        (queueing wait included); it is spread evenly across the batch's
        queries, so batched and unbatched scans calibrate the same
        estimator. The EWMA is fed the minimum of that and the
        inter-departure time since the previous release — see the module
        docstring for why either alone over-estimates under the wrong
        regime.
        """
        if n < 1:
            raise ReproError("cannot release a non-positive batch")
        now = self._clock()
        with self._lock:
            self._in_flight = max(0, self._in_flight - n)
            per_query: Optional[float] = None
            if service_seconds is not None and service_seconds >= 0:
                per_query = float(service_seconds) / n
            if self._last_departure is not None:
                inter_departure = max(0.0, now - self._last_departure) / n
                per_query = inter_departure if per_query is None \
                    else min(per_query, inter_departure)
            self._last_departure = now
            if per_query is not None:
                if self._service_ewma == 0.0:
                    self._service_ewma = per_query
                else:
                    self._service_ewma += self.ewma_alpha * \
                        (per_query - self._service_ewma)
            depth = self._in_flight
        record_admission_queue_depth(depth)

    def load_snapshot(self) -> Dict[str, float]:
        """Aggregate load keys for the announce record's ``load`` dict.

        ``admission_queue_depth`` is the instantaneous saturation signal
        discovery ranking sorts on first; ``admission_shed`` is the
        cumulative shed count (diagnostic, not a ranking key — an idle
        server that shed long ago is not saturated *now*).
        """
        with self._lock:
            return {
                "admission_queue_depth": float(self._in_flight),
                "admission_shed": float(self.shed),
                "admission_service_seconds": float(self._service_ewma),
            }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready gate state (stats endpoints, tests)."""
        with self._lock:
            return {
                "deadline_seconds": self.deadline_seconds,
                "max_queue_depth": self.max_queue_depth,
                "queue_depth": self._in_flight,
                "service_seconds_estimate": self._service_ewma,
                "admitted": self.admitted,
                "shed": self.shed,
            }


__all__ = ["AdmissionController"]
