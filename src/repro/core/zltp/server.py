"""The ZLTP server endpoint.

One :class:`ZltpServer` is a *logical* server for one universe shard: it
owns the blob database, announces the universe's blob geometry in its
ServerHello ("the server indicates to the client the size of the
fixed-length blobs it is serving", §2), and serves private-GETs in whichever
negotiated mode each session chose. In the paper's deployment a CDN runs two
such logical servers (the non-colluding pair) across many machines; here the
:class:`~repro.pir.sharding.ShardedDeployment` plays the many-machines part.

:class:`ZltpServerSession` is a pure state machine — messages in, messages
out — so the same code is exercised by in-memory transports, the network
simulator, and real TCP sockets.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.zltp import messages as msg
from repro.core.zltp.modes import (
    ALL_MODES,
    make_mode_server,
    mode_endpoints,
    negotiate,
)
from repro.core.zltp.transport import Transport
from repro.crypto.lwe import LweParams
from repro.errors import NegotiationError, ProtocolError, ReproError
from repro.pir.database import BlobDatabase


class _State(enum.Enum):
    AWAIT_HELLO = "await_hello"
    READY = "ready"
    CLOSED = "closed"


class ZltpServer:
    """A logical ZLTP server over one blob database.

    Attributes:
        database: the fixed-size-blob store being served.
        party: this server's role in a two-server pair (0 or 1); only
            meaningful for the ``pir2`` mode.
        salt: the universe's keyword-hash salt, announced to clients.
        probes: fixed probe count per keyword lookup (1 = plain hashing,
            >=2 = cuckoo).
    """

    def __init__(
        self,
        database: BlobDatabase,
        modes: Optional[List[str]] = None,
        party: int = 0,
        salt: bytes = b"",
        probes: int = 1,
        lwe_params: Optional[LweParams] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.database = database
        self.modes = list(modes) if modes is not None else list(ALL_MODES)
        for mode in self.modes:
            mode_endpoints(mode)  # validates names early
        self.party = party
        self.salt = salt
        self.probes = probes
        self._lwe_params = lwe_params
        self._rng = rng
        self._mode_servers: Dict[str, Any] = {}
        # One logical server is shared by every connection thread of a
        # ZltpTcpServer, so the stats counters are read-modify-written
        # concurrently and need their own lock.
        self._stats_lock = threading.Lock()
        self.sessions_opened = 0  # guarded-by: _stats_lock
        self.gets_served = 0  # guarded-by: _stats_lock

    def mode_server(self, mode: str):
        """Get (building lazily) the server half of a mode.

        Modes that snapshot the database at build time (pir-lwe's matrix,
        enclave-oram's ORAM load) are rebuilt when the database has changed
        since — otherwise a publisher re-push (§3.1) would be visible in
        ``pir2`` but stale in the other modes.
        """
        cached = self._mode_servers.get(mode)
        if cached is not None:
            server, built_version = cached
            if built_version == self.database.version or mode == "pir2":
                return server
        server = make_mode_server(
            mode, self.database, party=self.party,
            lwe_params=self._lwe_params, rng=self._rng,
        )
        self._mode_servers[mode] = (server, self.database.version)
        return server

    def create_session(self) -> "ZltpServerSession":
        """Open a new protocol session."""
        with self._stats_lock:
            self.sessions_opened += 1
        return ZltpServerSession(self)

    def serve_transport(self, transport) -> "ZltpServerSession":
        """Attach a session to a synchronous-delivery transport.

        Every frame the client sends is decoded, run through the session
        state machine, and the replies are sent back on the same transport.
        """
        session = self.create_session()

        def handle(frame: bytes) -> None:
            for reply in session.handle_frame(frame):
                transport.send_frame(reply)
            if session.closed:
                transport.close()

        transport.receiver = handle
        return session


class ZltpServerSession:
    """Per-connection protocol state machine."""

    def __init__(self, server: ZltpServer):
        self._server = server
        self._state = _State.AWAIT_HELLO
        self._mode_name: Optional[str] = None
        self._mode = None

    @property
    def closed(self) -> bool:
        """Whether the session has terminated."""
        return self._state is _State.CLOSED

    @property
    def mode(self) -> Optional[str]:
        """The negotiated mode name, once the hello exchange completed."""
        return self._mode_name

    def handle_frame(self, frame: bytes) -> List[bytes]:
        """Decode one frame, advance the state machine, encode the replies."""
        if self._state is _State.CLOSED:
            return []
        try:
            message = msg.decode_message(frame)
        except ProtocolError as exc:
            self._state = _State.CLOSED
            return [msg.encode_message(msg.ErrorMessage("bad-message", str(exc)))]
        return [msg.encode_message(reply) for reply in self.handle(message)]

    def handle_frames(self, frames: List[bytes]) -> List[bytes]:
        """Handle a burst of frames, batching pipelined GETs into one scan.

        Transports that read several frames at once (a pipelining TCP
        client) pass them here: runs of consecutive GetRequests in the
        ready state are answered with one ``answer_batch`` call, so the
        mode's single-pass batch scan path serves them in one walk over
        the database (§5.1). Any other message flushes the pending run and
        goes through the normal one-message state machine.
        """
        replies: List[bytes] = []
        pending: List[msg.GetRequest] = []
        for frame in frames:
            if self._state is _State.CLOSED:
                break
            try:
                message = msg.decode_message(frame)
            except ProtocolError as exc:
                replies.extend(self._flush_gets(pending))
                self._state = _State.CLOSED
                replies.append(
                    msg.encode_message(msg.ErrorMessage("bad-message", str(exc)))
                )
                return replies
            if isinstance(message, msg.GetRequest) and self._state is _State.READY:
                pending.append(message)
                continue
            replies.extend(self._flush_gets(pending))
            if self._state is _State.CLOSED:
                break
            replies.extend(msg.encode_message(reply) for reply in self.handle(message))
        replies.extend(self._flush_gets(pending))
        return replies

    def _flush_gets(self, pending: List[msg.GetRequest]) -> List[bytes]:
        """Answer a run of pipelined GetRequests in one batched scan."""
        if not pending:
            return []
        batch, pending[:] = list(pending), []
        try:
            answer_batch = getattr(self._mode, "answer_batch", None)
            if answer_batch is not None:
                answers = answer_batch([g.payload for g in batch])
            else:
                answers = [self._mode.answer(g.payload) for g in batch]
        except ReproError as exc:
            self._state = _State.CLOSED
            return [msg.encode_message(msg.ErrorMessage("protocol", str(exc)))]
        with self._server._stats_lock:
            self._server.gets_served += len(batch)
        return [
            msg.encode_message(
                msg.GetResponse(request_id=request.request_id, payload=answer)
            )
            for request, answer in zip(batch, answers)
        ]

    def handle(self, message) -> List[Any]:
        """Advance the state machine by one message; return reply messages."""
        if self._state is _State.CLOSED:
            return []
        try:
            return self._dispatch(message)
        except NegotiationError as exc:
            self._state = _State.CLOSED
            return [msg.ErrorMessage("negotiation", str(exc))]
        except ReproError as exc:
            # Mode-level failures (bad DPF key, malformed LWE query, broken
            # seal) are the client's fault; report and tear down.
            self._state = _State.CLOSED
            return [msg.ErrorMessage("protocol", str(exc))]

    def _dispatch(self, message) -> List[Any]:
        if isinstance(message, msg.Bye):
            self._state = _State.CLOSED
            return []
        if self._state is _State.AWAIT_HELLO:
            if not isinstance(message, msg.ClientHello):
                raise ProtocolError(
                    f"expected ClientHello, got {type(message).__name__}"
                )
            return [self._do_hello(message)]
        # READY state.
        if isinstance(message, msg.SetupRequest):
            return [msg.SetupResponse(params=self._mode.setup())]
        if isinstance(message, msg.GetRequest):
            answer = self._mode.answer(message.payload)
            with self._server._stats_lock:
                self._server.gets_served += 1
            return [msg.GetResponse(request_id=message.request_id, payload=answer)]
        raise ProtocolError(f"unexpected {type(message).__name__} in ready state")

    def _do_hello(self, hello: msg.ClientHello) -> msg.ServerHello:
        if hello.version != msg.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {hello.version} unsupported "
                f"(server speaks {msg.PROTOCOL_VERSION})"
            )
        mode_name = negotiate(hello.supported_modes, self._server.modes)
        self._mode_name = mode_name
        self._mode = self._server.mode_server(mode_name)
        self._state = _State.READY
        db = self._server.database
        return msg.ServerHello(
            blob_size=db.blob_size,
            domain_bits=db.domain_bits,
            mode=mode_name,
            probes=self._server.probes,
            salt=self._server.salt,
            mode_params=self._mode.hello_params(),
        )


__all__ = ["ZltpServer", "ZltpServerSession"]
