"""The ZLTP server endpoint.

One :class:`ZltpServer` is a *logical* server for one universe shard: it
owns the blob database, announces the universe's blob geometry in its
ServerHello ("the server indicates to the client the size of the
fixed-length blobs it is serving", §2), and serves private-GETs in whichever
negotiated mode each session chose. In the paper's deployment a CDN runs two
such logical servers (the non-colluding pair) across many machines; here the
:class:`~repro.pir.sharding.ShardedDeployment` plays the many-machines part.

Modes are looked up in the :mod:`repro.core.backend` registry — the server
has no per-mode code paths of its own, so a newly registered backend is
served without touching this module. Every answer call is accounted on a
shared :class:`~repro.core.backend.RequestStats` record, aggregated
per-mode on the server and optionally forwarded to a scan executor.

:class:`ZltpServerSession` is a pure state machine — messages in, messages
out — so the same code is exercised by in-memory transports, the network
simulator, and real TCP sockets.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core import backend as backend_registry
from repro.core.backend import (
    RequestStats,
    ServerContext,
    negotiate,
    timed_answer,
    timed_answer_batch,
)
from repro.core.zltp import messages as msg
from repro.core.zltp.transport import Transport
from repro.crypto.lwe import LweParams
from repro.errors import NegotiationError, ProtocolError, ReproError
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    REGISTRY,
    merge_snapshots,
    record_request_stats,
    snapshot_total,
)
from repro.obs.trace import span
from repro.pir.database import BlobDatabase


class _State(enum.Enum):
    AWAIT_HELLO = "await_hello"
    READY = "ready"
    CLOSED = "closed"


class ZltpServer:
    """A logical ZLTP server over one blob database.

    Attributes:
        database: the fixed-size-blob store being served.
        modes: canonical mode names served, in this server's preference
            order (default: every registered backend).
        party: this server's role in a multi-endpoint backend pair
            (0-based); only meaningful for modes with ``endpoints > 1``.
        salt: the universe's keyword-hash salt, announced to clients.
        probes: fixed probe count per keyword lookup (1 = plain hashing,
            >=2 = cuckoo).
        executor: optional :class:`~repro.pir.engine.ScanExecutor` that
            per-backend serving stats are forwarded to.
        options: free-form per-backend server options, passed through to
            every mode's ``from_context`` (e.g. ``prefix_bits`` to serve
            pir2 through a sharded front-end).
        flight: the always-on :class:`~repro.obs.flight.FlightRecorder`
            that retains recent/slow/errored request trace trees (pass
            one to tune capacities or the slow threshold).
        admission: optional
            :class:`~repro.core.zltp.admission.AdmissionController`; when
            attached, GETs that would blow their deadline are shed with a
            fast ``ErrorMessage("overload")`` instead of queued behind a
            doomed scan. One gate covers every serving kind, because the
            check sits in the shared session state machine.
    """

    def __init__(
        self,
        database: BlobDatabase,
        modes: Optional[List[str]] = None,
        party: int = 0,
        salt: bytes = b"",
        probes: int = 1,
        lwe_params: Optional[LweParams] = None,
        rng: Optional[np.random.Generator] = None,
        executor: Optional[Any] = None,
        options: Optional[Dict[str, Any]] = None,
        flight: Optional[FlightRecorder] = None,
        admission: Optional[Any] = None,
    ):
        self.database = database
        offered = list(modes) if modes is not None \
            else backend_registry.registered_modes()
        # Canonicalise aliases and validate names early (raises
        # NegotiationError on an unknown mode).
        self.modes = [backend_registry.resolve_mode(mode) for mode in offered]
        self.party = party
        self.salt = salt
        self.probes = probes
        self.executor = executor
        self.flight = flight if flight is not None else FlightRecorder()
        self.admission = admission
        self._lwe_params = lwe_params
        self._rng = rng
        self._options: Dict[str, Any] = dict(options or {})
        self._mode_servers: Dict[str, Any] = {}
        # One logical server is shared by every connection thread of a
        # ZltpTcpServer, so the stats counters are read-modify-written
        # concurrently and need their own lock.
        self._stats_lock = threading.Lock()
        self.sessions_opened = 0  # guarded-by: _stats_lock
        self.sessions_closed = 0  # guarded-by: _stats_lock
        self._stats_by_mode: Dict[str, RequestStats] = {}  # guarded-by: _stats_lock

    @property
    def sessions_active(self) -> int:
        """Sessions opened and not yet torn down.

        Transports must balance every :meth:`create_session` with a
        :meth:`ZltpServerSession.close` (the TCP servers do it in their
        connection-teardown paths), so this gauge reconciles to zero on
        a drained server.
        """
        with self._stats_lock:
            return self.sessions_opened - self.sessions_closed

    def _note_session_closed(self) -> None:
        with self._stats_lock:
            self.sessions_closed += 1

    @property
    def gets_served(self) -> int:
        """Total private-GETs answered, across every mode."""
        with self._stats_lock:
            return sum(stats.queries for stats in self._stats_by_mode.values())

    def stats_for(self, mode: str) -> RequestStats:
        """A frozen snapshot of the serving stats for one mode."""
        canonical = backend_registry.resolve_mode(mode)
        with self._stats_lock:
            stats = self._stats_by_mode.get(canonical)
            snapshot = stats.copy() if stats is not None else RequestStats()
        return snapshot.freeze()

    def stats_by_mode(self) -> Dict[str, RequestStats]:
        """Frozen snapshots of the serving stats for every mode that served."""
        with self._stats_lock:
            return {mode: stats.copy().freeze()
                    for mode, stats in self._stats_by_mode.items()}

    def capability_snapshot(self) -> Dict[str, Any]:
        """Public capability + load metadata for discovery announces.

        Everything here is what an announce record carries: the served
        modes with their registry-derived metadata, this server's party,
        the sharded front-end's prefix width (0 when unsharded), and an
        aggregate load snapshot — live sessions, total queries, total
        scan seconds. All of it is deployment topology and aggregate
        counters; nothing is per-client or per-fetch.
        """
        with self._stats_lock:
            active = self.sessions_opened - self.sessions_closed
            queries = sum(s.queries for s in self._stats_by_mode.values())
            scan_seconds = sum(s.scan_seconds
                               for s in self._stats_by_mode.values())
        load = {
            "sessions_active": float(active),
            "queries": float(queries),
            "scan_seconds": float(scan_seconds),
        }
        if self.admission is not None:
            # Instantaneous queue depth (and the shed counter) — the
            # saturation signal discovery ranking sorts on first, so new
            # sessions route around a server that is already shedding.
            load.update(self.admission.load_snapshot())
        worker_snap = self.executor_metrics()
        if worker_snap is not None:
            # CPU time burned inside pool workers — the part of this
            # machine's load the parent-process counters cannot see.
            load["worker_busy_seconds"] = snapshot_total(
                worker_snap, "procpool_scan_seconds", field="sum")
        return {
            "modes": list(self.modes),
            "party": self.party,
            "prefix_bits": int(self._options.get("prefix_bits", 0)),
            "cost": backend_registry.capability_metadata(self.modes),
            "load": load,
        }

    def executor_metrics(self) -> Optional[Dict[str, Any]]:
        """The attached executor's worker-registry snapshot, if it has one."""
        if self.executor is None:
            return None
        snapshot = getattr(self.executor, "metrics_snapshot", None)
        if snapshot is None:
            return None
        return snapshot()

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The process registry merged with the executor's worker metrics.

        This is what the stats sidecar exposes: one snapshot in which
        ``procpool_scan_seconds{worker=...}`` from every scan process
        sits next to the parent's own counters, all in the mergeable
        format :func:`~repro.obs.metrics.merge_into` understands.
        """
        worker_snap = self.executor_metrics()
        if worker_snap is None:
            return merge_snapshots([REGISTRY.snapshot()])
        return merge_snapshots([REGISTRY.snapshot(), worker_snap])

    def record_stats(self, mode: str, delta: RequestStats) -> None:
        """Fold one session's answer-call delta into the per-mode totals.

        The same delta is forwarded to the attached scan executor (if
        any) and folded into the process-wide metrics registry, so engine
        reports, ``lightweb stats``, and benchmark JSON all see exactly
        the counters the protocol layer measured — one structure end to
        end.
        """
        with self._stats_lock:
            if mode not in self._stats_by_mode:
                self._stats_by_mode[mode] = RequestStats()
            self._stats_by_mode[mode].merge(delta)
        if self.executor is not None:
            record = getattr(self.executor, "record_backend", None)
            if record is not None:
                record(mode, delta)
        record_request_stats(mode, delta)

    def mode_server(self, mode: str):
        """Get (building lazily) the server half of a mode.

        Modes that snapshot the database at build time (pir-lwe's matrix,
        enclave-oram's ORAM load — ``snapshots_database`` in the registry)
        are rebuilt when the database has changed since — otherwise a
        publisher re-push (§3.1) would be visible in ``pir2`` but stale in
        the other modes.
        """
        spec = backend_registry.get_backend(mode)
        cached = self._mode_servers.get(spec.name)
        if cached is not None:
            server, built_version = cached
            if not spec.snapshots_database or \
                    built_version == self.database.version:
                return server
        ctx_options = dict(self._options)
        if self.executor is not None:
            ctx_options.setdefault("executor", self.executor)
        server = spec.build_server(self.database, ServerContext(
            party=self.party, lwe_params=self._lwe_params, rng=self._rng,
            options=ctx_options,
        ))
        self._mode_servers[spec.name] = (server, self.database.version)
        return server

    def create_session(self) -> "ZltpServerSession":
        """Open a new protocol session."""
        with self._stats_lock:
            self.sessions_opened += 1
        return ZltpServerSession(self)

    def serve_transport(self, transport) -> "ZltpServerSession":
        """Attach a session to a synchronous-delivery transport.

        Every frame the client sends is decoded, run through the session
        state machine, and the replies are sent back on the same transport.
        """
        session = self.create_session()

        def handle(frame: bytes) -> None:
            for reply in session.handle_frame(frame):
                transport.send_frame(reply)
            if session.closed:
                transport.close()

        transport.receiver = handle
        return session


class ZltpServerSession:
    """Per-connection protocol state machine.

    Attributes:
        stats: this session's own :class:`RequestStats` — the same deltas
            that are folded into the server's per-mode totals.
    """

    def __init__(self, server: ZltpServer):
        self._server = server
        self._state = _State.AWAIT_HELLO
        self._mode_name: Optional[str] = None
        self._mode = None
        self.stats = RequestStats()

    @property
    def closed(self) -> bool:
        """Whether the session has terminated."""
        return self._state is _State.CLOSED

    def _mark_closed(self) -> None:
        """Terminal-state transition; notifies the server exactly once."""
        if self._state is _State.CLOSED:
            return
        self._state = _State.CLOSED
        self._server._note_session_closed()

    def close(self) -> None:
        """Tear the session down (idempotent).

        Transports call this from their connection-teardown paths so a
        peer that vanishes mid-session — early EOF, a reset, a handler
        crash — still balances the server's session accounting; a
        session that already closed itself through the state machine is
        left as-is.
        """
        self._mark_closed()

    @property
    def mode(self) -> Optional[str]:
        """The negotiated mode name, once the hello exchange completed."""
        return self._mode_name

    def handle_frame(self, frame: bytes) -> List[bytes]:
        """Decode one frame, advance the state machine, encode the replies."""
        if self._state is _State.CLOSED:
            return []
        try:
            message = msg.decode_message(frame)
        except ProtocolError as exc:
            self._mark_closed()
            return [msg.encode_message(msg.ErrorMessage("bad-message", str(exc)))]
        return [msg.encode_message(reply) for reply in self.handle(message)]

    def handle_frames(self, frames: List[bytes]) -> List[bytes]:
        """Handle a burst of frames, batching pipelined GETs into one scan.

        Transports that read several frames at once (a pipelining TCP
        client) pass them here: runs of consecutive GetRequests in the
        ready state are answered with one ``answer_batch`` call, so the
        mode's single-pass batch scan path serves them in one walk over
        the database (§5.1). Any other message flushes the pending run and
        goes through the normal one-message state machine.
        """
        replies: List[bytes] = []
        pending: List[msg.GetRequest] = []
        for frame in frames:
            if self._state is _State.CLOSED:
                break
            try:
                message = msg.decode_message(frame)
            except ProtocolError as exc:
                replies.extend(self._flush_gets(pending))
                self._mark_closed()
                replies.append(
                    msg.encode_message(msg.ErrorMessage("bad-message", str(exc)))
                )
                return replies
            if isinstance(message, msg.GetRequest) and self._state is _State.READY:
                pending.append(message)
                continue
            replies.extend(self._flush_gets(pending))
            if self._state is _State.CLOSED:
                break
            replies.extend(msg.encode_message(reply) for reply in self.handle(message))
        replies.extend(self._flush_gets(pending))
        return replies

    def _account(self, delta: RequestStats) -> None:
        """Fold an answer-call delta into the session and server stats."""
        self.stats.merge(delta)
        if self._mode_name is not None:
            self._server.record_stats(self._mode_name, delta)

    def _flush_gets(self, pending: List[msg.GetRequest]) -> List[bytes]:
        """Answer a run of pipelined GetRequests in one batched scan."""
        if not pending:
            return []
        batch, pending[:] = list(pending), []
        gate = self._server.admission
        if gate is not None:
            detail = gate.try_admit(len(batch))
            if detail is not None:
                # Shed the whole run: one error per request preserves the
                # 1:1 request/reply pairing, and the session stays READY —
                # overload is the *server's* state, not a client fault.
                shed = msg.encode_message(msg.ErrorMessage("overload", detail))
                return [shed] * len(batch)
        delta = RequestStats()
        try:
            with self._server.flight.capture():
                with span("zltp.session.get_batch", mode=self._mode_name,
                          batch=len(batch)) as sp:
                    answers = timed_answer_batch(
                        self._mode, [g.payload for g in batch], delta
                    )
                    sp.annotate(queries=delta.queries,
                                bytes_up=delta.bytes_up,
                                bytes_down=delta.bytes_down)
        except ReproError as exc:
            if gate is not None:
                gate.release(len(batch))
            self._mark_closed()
            return [msg.encode_message(msg.ErrorMessage("protocol", str(exc)))]
        if gate is not None:
            gate.release(len(batch), service_seconds=sp.elapsed)
        self._account(delta)
        return [
            msg.encode_message(
                msg.GetResponse(request_id=request.request_id, payload=answer)
            )
            for request, answer in zip(batch, answers)
        ]

    def handle(self, message) -> List[Any]:
        """Advance the state machine by one message; return reply messages."""
        if self._state is _State.CLOSED:
            return []
        try:
            return self._dispatch(message)
        except NegotiationError as exc:
            self._mark_closed()
            return [msg.ErrorMessage("negotiation", str(exc))]
        except ReproError as exc:
            # Mode-level failures (bad DPF key, malformed LWE query, broken
            # seal) are the client's fault; report and tear down.
            self._mark_closed()
            return [msg.ErrorMessage("protocol", str(exc))]

    def _dispatch(self, message) -> List[Any]:
        if isinstance(message, msg.Bye):
            self._mark_closed()
            return []
        if self._state is _State.AWAIT_HELLO:
            if not isinstance(message, msg.ClientHello):
                raise ProtocolError(
                    f"expected ClientHello, got {type(message).__name__}"
                )
            return [self._do_hello(message)]
        # READY state.
        if isinstance(message, msg.SetupRequest):
            return [msg.SetupResponse(params=self._mode.setup())]
        if isinstance(message, msg.GetRequest):
            gate = self._server.admission
            if gate is not None:
                detail = gate.try_admit(1)
                if detail is not None:
                    # Shed without closing: the session stays READY so the
                    # client can retry or move to a less-loaded endpoint.
                    return [msg.ErrorMessage("overload", detail)]
            delta = RequestStats()
            try:
                with self._server.flight.capture():
                    with span("zltp.session.get", mode=self._mode_name) as sp:
                        answer = timed_answer(self._mode, message.payload,
                                              delta)
                        sp.annotate(queries=delta.queries,
                                    bytes_up=delta.bytes_up,
                                    bytes_down=delta.bytes_down)
            except ReproError:
                if gate is not None:
                    gate.release(1)
                raise
            if gate is not None:
                gate.release(1, service_seconds=sp.elapsed)
            self._account(delta)
            return [msg.GetResponse(request_id=message.request_id, payload=answer)]
        raise ProtocolError(f"unexpected {type(message).__name__} in ready state")

    def _do_hello(self, hello: msg.ClientHello) -> msg.ServerHello:
        if hello.version != msg.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {hello.version} unsupported "
                f"(server speaks {msg.PROTOCOL_VERSION})"
            )
        mode_name = negotiate(hello.supported_modes, self._server.modes)
        self._mode_name = mode_name
        self._mode = self._server.mode_server(mode_name)
        self._state = _State.READY
        db = self._server.database
        return msg.ServerHello(
            blob_size=db.blob_size,
            domain_bits=db.domain_bits,
            mode=mode_name,
            probes=self._server.probes,
            salt=self._server.salt,
            mode_params=self._mode.hello_params(),
        )


__all__ = ["ZltpServer", "ZltpServerSession"]
