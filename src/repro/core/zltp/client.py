"""The ZLTP client endpoint: ``GET(key) -> value`` and nothing else (§2).

A :class:`ZltpClient` owns one transport per server endpoint the negotiated
mode requires — two for ``pir2`` ("the ZLTP client must establish sessions
with two ZLTP servers", §2.2), one otherwise — and exposes the private-GET
operation at two levels:

- :meth:`get_slot` — fetch the raw record at an index (what the protocol
  actually moves), and
- :meth:`get` — the paper's keyword API: hash the key to its fixed probe
  slots, privately fetch *all* of them (the probe count never depends on
  the key or its presence), and decode the matching record.

The client also keeps byte counters, which are the measured communication
numbers of benchmark E3.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core import backend as backend_registry
from repro.core.resilience import Deadline
from repro.core.zltp import messages as msg
from repro.crypto.cuckoo import CuckooTable
from repro.crypto.hashing import KeyedHash
from repro.errors import (
    NegotiationError,
    OverloadError,
    ProtocolError,
    TransportError,
)
from repro.obs.trace import span
from repro.pir.keyword import decode_record


class ZltpClient:
    """A client session (or session pair) against a logical ZLTP server."""

    def __init__(self, transports: List[Any],
                 supported_modes: Optional[List[str]] = None,
                 rng: Optional[np.random.Generator] = None):
        """Create a client over already-connected transports.

        Args:
            transports: one transport per server endpoint. Two for ``pir2``;
                the client checks the count against the negotiated mode.
            supported_modes: modes offered in the ClientHello, in the order
                the client prefers them. Defaults to everything.
            rng: optional deterministic randomness (tests).
        """
        if not transports:
            raise ProtocolError("need at least one transport")
        self._transports = list(transports)
        self.supported_modes = (
            list(supported_modes) if supported_modes is not None
            else backend_registry.registered_modes()
        )
        self._rng = rng
        self._next_request_id = 0
        self.mode: Optional[str] = None
        self.blob_size: Optional[int] = None
        self.domain_bits: Optional[int] = None
        self.probes: Optional[int] = None
        self.salt: Optional[bytes] = None
        self._mode_client = None
        self._hash = None
        self._cuckoo = None
        self._connected = False

    # ------------------------------------------------------------------
    # Session establishment
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Run the hello (and, if needed, setup) exchange on every transport."""
        hello = msg.ClientHello(supported_modes=self.supported_modes)
        server_hellos = []
        for transport in self._transports:
            transport.send_frame(msg.encode_message(hello))
            server_hellos.append(self._recv(transport))

        first = server_hellos[0]
        if not isinstance(first, msg.ServerHello):
            raise ProtocolError(f"expected ServerHello, got {type(first).__name__}")
        for other in server_hellos[1:]:
            if not isinstance(other, msg.ServerHello):
                raise ProtocolError("expected ServerHello from every endpoint")
            if (other.blob_size, other.domain_bits, other.mode,
                    other.probes, other.salt) != (
                    first.blob_size, first.domain_bits, first.mode,
                    first.probes, first.salt):
                raise ProtocolError("endpoints disagree on universe geometry")

        spec = backend_registry.get_backend(first.mode)
        if spec.endpoints != len(self._transports):
            raise NegotiationError(
                f"mode {first.mode!r} needs {spec.endpoints} endpoint(s), "
                f"client has {len(self._transports)}"
            )
        if spec.endpoints > 1:
            # Multi-endpoint backends announce each endpoint's party in
            # the hello; order transports so index b talks to party b.
            parties = [h.mode_params.get("party") for h in server_hellos]
            if any(not isinstance(party, int) for party in parties):
                # A hello without a party assignment is a negotiation
                # failure, not a TypeError from sorting None against int.
                raise NegotiationError(
                    f"{spec.name} endpoints must each announce an integer "
                    f"party, got {parties}"
                )
            if sorted(parties) != list(range(spec.endpoints)):
                raise NegotiationError(
                    f"{spec.name} endpoints must be parties "
                    f"0..{spec.endpoints - 1}, got {parties}"
                )
            order = sorted(range(spec.endpoints), key=lambda i: parties[i])
            self._transports = [self._transports[i] for i in order]

        setup: Dict[str, Any] = {}
        if spec.needs_setup:
            transport = self._transports[0]
            transport.send_frame(msg.encode_message(msg.SetupRequest()))
            response = self._recv(transport)
            if not isinstance(response, msg.SetupResponse):
                raise ProtocolError("expected SetupResponse")
            setup = response.params

        self.mode = first.mode
        self.blob_size = first.blob_size
        self.domain_bits = first.domain_bits
        self.probes = first.probes
        self.salt = first.salt
        self._mode_client = spec.build_client(
            first.domain_bits, first.blob_size,
            first.mode_params, setup, rng=self._rng,
        )
        if self.probes == 1:
            self._hash = KeyedHash(first.domain_bits, first.salt)
        else:
            self._cuckoo = CuckooTable(first.domain_bits, n_hashes=self.probes,
                                       salt=first.salt)
        self._hello_signature = (first.blob_size, first.domain_bits,
                                 first.mode, first.probes, first.salt)
        self._connected = True
        # Resilient transports journal request frames from here on and
        # re-run the hello (restricted to the negotiated session) on
        # every reconnect, before replaying unanswered requests.
        for endpoint, transport in enumerate(self._transports):
            if hasattr(transport, "mark_established"):
                transport.on_reconnect = self._make_resume(endpoint)
                transport.mark_established()

    def _make_resume(self, endpoint: int):
        """A reconnect hook that restores this endpoint's session."""
        def resume(raw) -> None:
            self._resume_session(endpoint, raw)
        return resume

    def _resume_session(self, endpoint: int, raw) -> None:
        """Re-run the hello on a re-dialled transport and validate that
        the server (or its replica) still matches the negotiated session.

        Only the already-negotiated mode is offered, so a replica cannot
        silently renegotiate. A mismatched geometry, mode, or party is a
        :class:`~repro.errors.ProtocolError` — retrying cannot fix it.
        """
        hello = msg.ClientHello(supported_modes=[self.mode])
        raw.send_frame(msg.encode_message(hello))
        reply = msg.decode_message(raw.recv_frame())
        if isinstance(reply, msg.ErrorMessage):
            raise ProtocolError(
                f"server error {reply.code}: {reply.detail}")
        if not isinstance(reply, msg.ServerHello):
            raise ProtocolError(
                f"expected ServerHello on resume, got {type(reply).__name__}")
        signature = (reply.blob_size, reply.domain_bits, reply.mode,
                     reply.probes, reply.salt)
        if signature != self._hello_signature:
            raise ProtocolError(
                "reconnected endpoint disagrees with the negotiated session")
        spec = backend_registry.get_backend(self.mode)
        if spec.endpoints > 1:
            party = reply.mode_params.get("party")
            if party != endpoint:
                raise ProtocolError(
                    f"reconnected endpoint {endpoint} announced party "
                    f"{party!r}"
                )

    # ------------------------------------------------------------------
    # The private-GET operation
    # ------------------------------------------------------------------

    def get_slot(self, slot: int) -> bytes:
        """Privately fetch the raw record at a database slot.

        A single-slot :meth:`get_slots` — same wire behaviour, same
        overload semantics.
        """
        return self.get_slots([slot])[0]

    def get_slots(self, slots: List[int], deadline_seconds: Optional[float] = None) -> List[bytes]:  # lint: allow(secret-branch) — only the *number* of requested slots shapes control flow here, and the request count is public by design (§2.1 leaks it); the slot values never branch
        """Privately fetch several slots with pipelined requests.

        All GetRequests are written before any response is read, so a
        batching-aware server (the §5.1 path) sees them arrive together
        and can answer the whole run with one pass over the database.
        Responses on each transport come back in request order; ids are
        checked against the ids sent.

        Args:
            slots: database slots to fetch.
            deadline_seconds: optional budget for the whole batch; checked
                between responses, so a session stuck reconnecting raises
                :class:`~repro.errors.DeadlineError` instead of hanging.

        Returns:
            The decoded records, in the order of ``slots``.

        Raises:
            OverloadError: the server's admission gate shed some or all
                of the batch. The server answers every shed request with
                its own ``ErrorMessage("overload")`` and keeps the
                session open, so this client drains every expected reply
                first — the streams stay in sync and the session remains
                usable for a retry (here or on another endpoint).
        """
        self._require_connected()
        if not slots:
            return []
        deadline = (Deadline.start(deadline_seconds)
                    if deadline_seconds is not None else None)
        request_ids: List[int] = []
        per_slot_queries = []
        for slot in slots:
            queries = self._mode_client.queries_for_slot(slot)
            if len(queries) != len(self._transports):
                raise ProtocolError("mode produced wrong number of queries")
            per_slot_queries.append(queries)
            request_ids.append(self._next_request_id)
            self._next_request_id += 1
        for endpoint, transport in enumerate(self._transports):
            for request_id, queries in zip(request_ids, per_slot_queries):
                transport.send_frame(
                    msg.encode_message(
                        msg.GetRequest(request_id=request_id,
                                       payload=queries[endpoint])
                    )
                )
        per_slot_answers: List[List[bytes]] = [[] for _ in slots]
        shed = 0
        shed_detail = ""
        for transport in self._transports:
            for i, request_id in enumerate(request_ids):
                if deadline is not None:
                    deadline.check("get_slots")
                response = msg.decode_message(transport.recv_frame())
                if isinstance(response, msg.ErrorMessage) and \
                        response.code == "overload":
                    # One error frame per shed request, in request order:
                    # count it, keep draining so the reply stream stays
                    # aligned, and raise once everything expected arrived.
                    shed += 1
                    shed_detail = response.detail
                    continue
                if isinstance(response, msg.ErrorMessage):
                    raise ProtocolError(
                        f"server error {response.code}: {response.detail}")
                if not isinstance(response, msg.GetResponse):
                    raise ProtocolError(
                        f"expected GetResponse, got {type(response).__name__}"
                    )
                if response.request_id != request_id:
                    raise ProtocolError(
                        f"response id {response.request_id} != request id "
                        f"{request_id}"
                    )
                per_slot_answers[i].append(response.payload)
        if shed:
            raise OverloadError(
                f"server shed {shed} of "
                f"{len(slots) * len(self._transports)} requests: "
                f"{shed_detail}")
        return [self._mode_client.decode(answers) for answers in per_slot_answers]

    def candidate_slots(self, key: str) -> List[int]:
        """The fixed probe slots for ``key`` under the universe's salt."""
        self._require_connected()
        if self.probes == 1:
            return [self._hash.slot(key)]
        return self._cuckoo.candidates(key)

    def get(self, key: str,
            deadline_seconds: Optional[float] = None) -> Optional[bytes]:
        """The ZLTP API (§2): privately fetch the value stored under ``key``.

        Always performs exactly ``probes`` slot fetches, so the observable
        request count is independent of the key and of whether it exists.

        Args:
            key: the keyword to look up.
            deadline_seconds: optional wall-clock budget for the lookup
                (a fixed public number, never derived from the key).

        Returns:
            The value payload, or None if no record for ``key`` exists.
        """
        # The span carries only the public probe count and mode — never
        # the key, its slots, or whether it was found.
        with span("zltp.client.get", mode=self.mode, probes=self.probes):
            found = None
            for record in self.get_slots(self.candidate_slots(key),
                                         deadline_seconds=deadline_seconds):
                payload = decode_record(key, record)
                if payload is not None and found is None:
                    found = payload
            return found

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Send Bye on every endpoint and close the transports.

        The goodbye is best-effort: on a resilient transport it goes
        through ``try_send_frame``, so a dead connection is *not*
        re-established just to say Bye.
        """
        bye = msg.encode_message(msg.Bye())
        for transport in self._transports:
            try_send = getattr(transport, "try_send_frame", None)
            if try_send is not None:
                try_send(bye)
            else:
                try:
                    transport.send_frame(bye)
                except TransportError:
                    pass
            transport.close()
        self._connected = False

    @property
    def bytes_sent(self) -> int:
        """Total bytes uploaded across all endpoints."""
        return sum(t.bytes_sent for t in self._transports)

    @property
    def bytes_received(self) -> int:
        """Total bytes downloaded across all endpoints."""
        return sum(t.bytes_received for t in self._transports)

    def _require_connected(self) -> None:
        if not self._connected:
            raise ProtocolError("client is not connected; call connect() first")

    def _recv(self, transport):
        message = msg.decode_message(transport.recv_frame())
        if isinstance(message, msg.ErrorMessage):
            if message.code == "overload":
                raise OverloadError(f"server overloaded: {message.detail}")
            raise ProtocolError(f"server error {message.code}: {message.detail}")
        return message


def connect_client(transports: List[Any],
                   supported_modes: Optional[List[str]] = None,
                   rng: Optional[np.random.Generator] = None) -> ZltpClient:
    """Create and connect a :class:`ZltpClient` in one call."""
    client = ZltpClient(transports, supported_modes=supported_modes, rng=rng)
    client.connect()
    return client


__all__ = ["ZltpClient", "connect_client"]
