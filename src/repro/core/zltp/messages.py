"""ZLTP message types and their binary codec.

The protocol needs only a handful of messages (§2): a hello exchange that
announces blob geometry and negotiates the mode of operation, an optional
setup exchange for modes with one-time client downloads (the LWE hint), the
GET request/response pair, errors, and a goodbye.

Messages are encoded as a one-byte type tag followed by a canonical binary
encoding of the message's field dictionary. The value codec is a small
self-describing TLV format (ints, strings, bytes, lists, dicts) — enough to
carry every mode's parameters without pulling in a serialisation library,
and strict enough that malformed input raises :class:`ProtocolError` rather
than producing garbage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import ProtocolError

PROTOCOL_VERSION = 1

# --------------------------------------------------------------------------
# Value codec
# --------------------------------------------------------------------------

_T_NONE = 0
_T_INT = 1
_T_BYTES = 2
_T_STR = 3
_T_LIST = 4
_T_DICT = 5
_T_BOOL = 6
_T_FLOAT = 7


# Secret-bearing ZLTP fields are fixed-size by protocol (slots are
# 8-byte ints, DPF keys and LWE queries are parameter-determined), so
# the generic encoder's length prefixes are public.  Everything secret
# that reaches this encoder has already passed a declassification
# boundary (AEAD seal, DPF keygen), so the whole-program taint engine
# agrees without a suppression.
def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, bool):
        out.append(_T_BOOL)
        out.append(int(value))
    elif isinstance(value, int):
        out.append(_T_INT)
        out.extend(struct.pack("<q", value))
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack("<d", value))
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out.extend(struct.pack("<I", len(value)))
        out.extend(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out.extend(struct.pack("<I", len(raw)))
        out.extend(raw)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out.extend(struct.pack("<I", len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out.extend(struct.pack("<I", len(value)))
        for key in sorted(value):
            if not isinstance(key, str):
                raise ProtocolError("dict keys must be strings")
            _encode_value(key, out)
            _encode_value(value[key], out)
    else:
        raise ProtocolError(f"cannot encode value of type {type(value).__name__}")


def _decode_value(raw: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(raw):
        raise ProtocolError("truncated value")
    tag = raw[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_BOOL:
        if offset >= len(raw):
            raise ProtocolError("truncated bool")
        return bool(raw[offset]), offset + 1
    if tag == _T_INT:
        if offset + 8 > len(raw):
            raise ProtocolError("truncated int")
        (value,) = struct.unpack_from("<q", raw, offset)
        return value, offset + 8
    if tag == _T_FLOAT:
        if offset + 8 > len(raw):
            raise ProtocolError("truncated float")
        (value,) = struct.unpack_from("<d", raw, offset)
        return value, offset + 8
    if tag in (_T_BYTES, _T_STR):
        if offset + 4 > len(raw):
            raise ProtocolError("truncated length")
        (length,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        if offset + length > len(raw):
            raise ProtocolError("truncated payload")
        chunk = raw[offset : offset + length]
        offset += length
        if tag == _T_STR:
            try:
                return chunk.decode("utf-8"), offset
            except UnicodeDecodeError as exc:
                raise ProtocolError("invalid utf-8 in string") from exc
        return bytes(chunk), offset
    if tag == _T_LIST:
        if offset + 4 > len(raw):
            raise ProtocolError("truncated list length")
        (count,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_value(raw, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        if offset + 4 > len(raw):
            raise ProtocolError("truncated dict length")
        (count,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _decode_value(raw, offset)
            if not isinstance(key, str):
                raise ProtocolError("dict keys must decode to strings")
            value, offset = _decode_value(raw, offset)
            result[key] = value
        return result, offset
    raise ProtocolError(f"unknown value tag {tag}")


def encode_payload(fields: Dict[str, Any]) -> bytes:
    """Encode a message field dictionary."""
    out = bytearray()
    _encode_value(fields, out)
    return bytes(out)


def decode_payload(raw: bytes) -> Dict[str, Any]:
    """Decode a message field dictionary, requiring full consumption."""
    value, offset = _decode_value(raw, 0)
    if offset != len(raw):
        raise ProtocolError(f"{len(raw) - offset} trailing bytes after message")
    if not isinstance(value, dict):
        raise ProtocolError("message payload must be a dict")
    return value


# --------------------------------------------------------------------------
# Message types
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ClientHello:
    """Session opener: the client offers the modes it supports, in order."""

    supported_modes: List[str]
    version: int = PROTOCOL_VERSION

    TAG = 1


@dataclass(frozen=True)
class ServerHello:
    """Server reply: blob geometry plus the negotiated mode (§2).

    "The server indicates to the client the size of the fixed-length blobs
    it is serving, and the client and server then negotiate which
    cryptographic mode of operation they will use."
    """

    blob_size: int
    domain_bits: int
    mode: str
    probes: int = 1
    salt: bytes = b""
    mode_params: Dict[str, Any] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    TAG = 2


@dataclass(frozen=True)
class SetupRequest:
    """Client asks for the mode's one-time setup payload (e.g. LWE hint)."""

    TAG = 3


@dataclass(frozen=True)
class SetupResponse:
    """The mode's one-time setup payload."""

    params: Dict[str, Any]

    TAG = 4


@dataclass(frozen=True)
class GetRequest:
    """One private-GET request: an opaque mode-specific query payload."""

    request_id: int
    payload: bytes

    TAG = 5


@dataclass(frozen=True)
class GetResponse:
    """The answer to a private-GET: an opaque mode-specific payload."""

    request_id: int
    payload: bytes

    TAG = 6


@dataclass(frozen=True)
class ErrorMessage:
    """A fatal protocol error; the session should be torn down."""

    code: str
    detail: str = ""

    TAG = 7


@dataclass(frozen=True)
class Bye:
    """Orderly session close."""

    TAG = 8


_MESSAGE_TYPES = {
    cls.TAG: cls
    for cls in (
        ClientHello,
        ServerHello,
        SetupRequest,
        SetupResponse,
        GetRequest,
        GetResponse,
        ErrorMessage,
        Bye,
    )
}


def encode_message(message) -> bytes:
    """Serialise a message object: tag byte + encoded field dict."""
    cls = type(message)
    if cls.TAG not in _MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {cls.__name__}")
    fields = {
        name: getattr(message, name)
        for name in message.__dataclass_fields__
    }
    return bytes([cls.TAG]) + encode_payload(fields)


def decode_message(raw: bytes):
    """Parse a message; raises :class:`ProtocolError` on any malformation."""
    if not raw:
        raise ProtocolError("empty message")
    cls = _MESSAGE_TYPES.get(raw[0])
    if cls is None:
        raise ProtocolError(f"unknown message tag {raw[0]}")
    fields = decode_payload(raw[1:])
    expected = set(cls.__dataclass_fields__)
    got = set(fields)
    if got != expected:
        raise ProtocolError(
            f"{cls.__name__} fields mismatch: got {sorted(got)}, "
            f"expected {sorted(expected)}"
        )
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ProtocolError(f"bad fields for {cls.__name__}: {exc}") from exc


__all__ = [
    "PROTOCOL_VERSION",
    "ClientHello",
    "ServerHello",
    "SetupRequest",
    "SetupResponse",
    "GetRequest",
    "GetResponse",
    "ErrorMessage",
    "Bye",
    "encode_message",
    "decode_message",
    "encode_payload",
    "decode_payload",
]
