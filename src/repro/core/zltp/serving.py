"""Registry of TCP serving flavours behind one shared interface.

Two ways to put a :class:`~repro.core.zltp.server.ZltpServer` on a
socket ship in-tree: the event-loop reactor
(:class:`~repro.core.zltp.eventloop.ZltpEventLoopServer`, the default
session core) and the original thread-per-connection
:class:`~repro.core.zltp.sockets.ZltpTcpServer` (kept as the simple,
debuggable fallback). Both satisfy the same serving interface:

- constructor ``(server, host=..., port=..., stats_port=...)``,
- ``address`` / ``server`` / ``stats`` attributes,
- ``stats_snapshot()``, ``active_connections``, ``worker_count``,
- deterministic, idempotent ``stop(timeout)``.

Deployments pick a flavour by name (``lightweb serve --server-kind``),
benchmarks iterate :func:`server_kinds` to compare them on identical
workloads, and the integration suite runs both through the same tests —
the registry is what makes "swap the concurrency architecture" a
one-string decision instead of a code change, the same move
:mod:`repro.core.backend` made for PIR modes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.core.zltp.eventloop import ZltpEventLoopServer
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.sockets import ZltpTcpServer
from repro.errors import ReproError

#: The session core new deployments get unless they ask otherwise.
DEFAULT_SERVER_KIND = "eventloop"

_registry_lock = threading.Lock()
_SERVER_KINDS: Dict[str, Callable[..., Any]] = {}  # guarded-by: _registry_lock


def register_server_kind(name: str, factory: Callable[..., Any]) -> None:
    """Register a serving flavour under a selectable name.

    ``factory`` must accept the shared constructor signature
    ``(server, host=..., port=..., stats_port=..., **kwargs)`` and return
    an object satisfying the shared serving interface.
    """
    with _registry_lock:
        _SERVER_KINDS[name] = factory


def server_kinds() -> List[str]:
    """Registered flavour names, default first."""
    with _registry_lock:
        names = list(_SERVER_KINDS)
    names.sort(key=lambda name: (name != DEFAULT_SERVER_KIND, name))
    return names


def create_tcp_server(kind: Optional[str], server: ZltpServer,
                      host: str = "127.0.0.1", port: int = 0,
                      stats_port: Optional[int] = None, **kwargs: Any):
    """Build a TCP listener of the chosen flavour over a logical server.

    Args:
        kind: a registered flavour name, or None for the default.
        server: the logical ZLTP server to expose.
        host / port / stats_port: as on both server constructors.
        kwargs: flavour-specific extras (e.g. ``idle_timeout`` for the
            event loop), passed through verbatim.

    Raises:
        ReproError: on an unregistered kind name.
    """
    chosen = kind if kind is not None else DEFAULT_SERVER_KIND
    with _registry_lock:
        factory = _SERVER_KINDS.get(chosen)
    if factory is None:
        known = ", ".join(sorted(_SERVER_KINDS))
        raise ReproError(
            f"unknown server kind {chosen!r} (registered: {known})")
    return factory(server, host=host, port=port, stats_port=stats_port,
                   **kwargs)


register_server_kind("threaded", ZltpTcpServer)
register_server_kind("eventloop", ZltpEventLoopServer)


__all__ = [
    "DEFAULT_SERVER_KIND",
    "create_tcp_server",
    "register_server_kind",
    "server_kinds",
]
