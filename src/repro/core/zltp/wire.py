"""Length-prefixed framing for ZLTP messages.

Every protocol message travels as one frame: a 4-byte little-endian length
followed by the payload. Frames are capped so a malicious peer cannot force
an unbounded allocation; the cap comfortably fits a code blob plus headers.

The :class:`FrameDecoder` is a push parser — feed it whatever byte chunks
the transport delivers and it yields complete frames — so the same code
serves the in-memory transport, the network simulator, and real TCP sockets.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

from repro.errors import TransportError

HEADER_BYTES = 4
#: Generous cap: the largest legitimate frame is a code blob (~1 MiB in the
#: paper's example) plus message framing.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Wrap a message payload in a length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return struct.pack("<I", len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser: feed bytes in, get complete frames out."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[bytes]:
        """Append received bytes; return every frame completed by them.

        Raises:
            TransportError: on an oversized frame declaration (the stream is
                unrecoverable at that point).
        """
        self._buffer.extend(chunk)
        frames = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                break
            (length,) = struct.unpack_from("<I", self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise TransportError(f"peer declared oversized frame ({length} bytes)")
            if len(self._buffer) < HEADER_BYTES + length:
                break
            frame = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
            del self._buffer[: HEADER_BYTES + length]
            frames.append(frame)
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)


__all__ = ["encode_frame", "FrameDecoder", "HEADER_BYTES", "MAX_FRAME_BYTES"]
