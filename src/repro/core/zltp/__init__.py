"""The zero-leakage transfer protocol (ZLTP), paper §2.

"A ZLTP server holds a list of key-value pairs where each key is an
arbitrary string, and each value is a fixed-length binary blob. The ZLTP API
exposes a single private-GET operation to the client, which has the type
signature GET(key)->value."

A session (§2) starts with a hello exchange in which the server announces
its blob geometry and the two sides negotiate a mode of operation; every
subsequent GET exchanges mode-specific messages. Three modes are
implemented, matching §2.2:

- ``pir2`` — two-server DPF PIR (the paper's prototype; needs sessions with
  two non-colluding servers).
- ``pir-lwe`` — single-server LWE PIR (cryptographic assumptions only).
- ``enclave-oram`` — a simulated hardware enclave with Path ORAM.
"""

from repro.core.zltp.wire import encode_frame, FrameDecoder, MAX_FRAME_BYTES
from repro.core.zltp.messages import (
    ClientHello,
    ServerHello,
    SetupRequest,
    SetupResponse,
    GetRequest,
    GetResponse,
    ErrorMessage,
    Bye,
    decode_message,
    encode_message,
)
from repro.core.zltp.modes import (
    MODE_PIR2,
    MODE_PIR_LWE,
    MODE_ENCLAVE,
    ALL_MODES,
    mode_endpoints,
    negotiate,
)
from repro.core.zltp.server import ZltpServer, ZltpServerSession
from repro.core.zltp.client import ZltpClient
from repro.core.zltp.transport import InMemoryTransport, Transport, transport_pair

__all__ = [
    "encode_frame",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "ClientHello",
    "ServerHello",
    "SetupRequest",
    "SetupResponse",
    "GetRequest",
    "GetResponse",
    "ErrorMessage",
    "Bye",
    "decode_message",
    "encode_message",
    "MODE_PIR2",
    "MODE_PIR_LWE",
    "MODE_ENCLAVE",
    "ALL_MODES",
    "mode_endpoints",
    "negotiate",
    "ZltpServer",
    "ZltpServerSession",
    "ZltpClient",
    "InMemoryTransport",
    "Transport",
    "transport_pair",
]
