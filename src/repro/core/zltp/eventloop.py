"""Event-loop ZLTP serving: one reactor multiplexing thousands of sessions.

The thread-per-connection :class:`~repro.core.zltp.sockets.ZltpTcpServer`
was the right prototype — a PIR answer is a linear database scan, so a
handful of connections saturate the scan path long before threads matter.
The paper's deployment story (§5.2) is different: a front-end holding
*many* mostly-idle client sessions open at once while fanning each request
out to hundreds of data servers. A thread per idle session spends a stack
and a scheduler slot on a connection that is doing nothing; this module
spends a ~200-byte :class:`_Connection` record instead.

:class:`ZltpEventLoopServer` runs a single reactor thread over a
``selectors.DefaultSelector`` (epoll on Linux):

- the listener and every client socket are non-blocking; reads feed each
  connection's own :class:`~repro.core.zltp.wire.FrameDecoder`;
- replies accumulate in a per-connection write buffer which drains on
  writability — a slow reader backs pressure into its own buffer, never
  into a blocked thread;
- frames that arrive together still reach
  :meth:`~repro.core.zltp.server.ZltpServerSession.handle_frames` as one
  burst, so pipelined GETs keep hitting the single-pass batched scan;
- sessions idle past ``idle_timeout`` are reaped with a best-effort
  ``idle-timeout`` error frame (a reactor cannot afford parked-forever
  peers holding fds);
- :meth:`stop` has the same deterministic discipline as the threaded
  server: wake the reactor, drain it, join it, and leave no socket open.

Thread discipline: all per-connection state (the selector, the connection
table, decoders, write buffers) is *owned by the reactor thread* — only
``_react_*`` methods touch it, enforced by the ``owned-by:`` lint rule
(see DESIGN.md). Cross-thread communication happens exactly two ways: the
``_stopping`` event plus self-pipe wakeup, and atomic counter reads that
tolerate racing (``active_connections``).

The shared serving interface (``address``, ``stats``, ``stats_snapshot``,
``active_connections``, ``worker_count``, ``stop``) is what
:mod:`repro.core.zltp.serving` registers both flavours behind.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.core.zltp import messages as msg
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.sockets import StatsTcpServer
from repro.core.zltp.wire import FrameDecoder, encode_frame
from repro.errors import TransportError
from repro.obs.logs import get_logger
from repro.obs.metrics import (
    record_active_sessions,
    record_truncated_frame,
)

_RECV_CHUNK = 65536

_log = get_logger(__name__)


class _Connection:
    """Reactor-owned state for one client socket."""

    __slots__ = ("sock", "session", "decoder", "outbuf", "last_activity",
                 "closing", "want_write")

    def __init__(self, sock: socket.socket, session, now: float):
        self.sock = sock
        self.session = session
        self.decoder = FrameDecoder()
        self.outbuf = bytearray()
        self.last_activity = now
        #: Tear the connection down once the write buffer drains.
        self.closing = False
        #: Whether the selector registration currently includes EVENT_WRITE.
        self.want_write = False


class ZltpEventLoopServer:
    """Serve a logical ZLTP server from one selector-driven reactor.

    Drop-in for :class:`~repro.core.zltp.sockets.ZltpTcpServer` behind the
    shared serving interface; the difference is purely architectural —
    thousands of concurrent sessions cost one thread, not thousands.

    Attributes:
        server: the logical :class:`ZltpServer` being exposed.
        address: the bound (host, port).
        stats: the optional HTTP stats sidecar.
        idle_timeout: seconds of inactivity before a session is reaped
            (None = never).
    """

    #: Registry name; also the ``server`` label on the session gauge.
    kind = "eventloop"

    def __init__(self, server: ZltpServer, host: str = "127.0.0.1",
                 port: int = 0, stats_port: Optional[int] = None,
                 idle_timeout: Optional[float] = None,
                 tick_seconds: float = 0.5,
                 io_timeout: Optional[float] = None):
        """Bind, then start the reactor thread.

        Args:
            server: the logical server to expose.
            host: bind address.
            port: bind port; 0 picks a free ephemeral port.
            stats_port: also serve the stats snapshot over HTTP on this
                port (0 picks a free one); None disables the sidecar.
            idle_timeout: reap sessions idle this long; None disables.
            tick_seconds: upper bound on the reactor's select() sleep —
                the granularity of idle sweeps and stop() responsiveness.
            io_timeout: per-connection recv/send timeout for the stats
                sidecar (the reactor's own sockets are non-blocking, so
                data-path idleness is ``idle_timeout``'s job); None keeps
                the sidecar default.
        """
        self.server = server
        self.idle_timeout = idle_timeout
        self._tick = tick_seconds
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stopping = threading.Event()
        # Self-pipe: stop() writes one byte to interrupt a parked select().
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector = selectors.DefaultSelector()  # owned-by: _react
        self._conns: Dict[int, _Connection] = {}  # owned-by: _react
        # Counters: written by the reactor, read from any thread; racy
        # reads of monotonic ints are tolerated (same discipline as the
        # database scan counters).
        self.sessions_accepted = 0
        self.idle_reaped = 0
        self.truncated_frames = 0
        self.stats: Optional[StatsTcpServer] = None
        if stats_port is not None:
            self.stats = StatsTcpServer(
                self.stats_snapshot, host=host, port=stats_port,
                traces=server.flight.export,
                io_timeout=io_timeout if io_timeout is not None else 5.0)
        self._thread = threading.Thread(target=self._react_loop, daemon=True,
                                        name="zltp-reactor")
        self._thread.start()
        _log.info("zltp eventloop endpoint listening", extra={
            "host": self.address[0], "port": self.address[1],
            "modes": list(server.modes)})

    # ------------------------------------------------------------------
    # Shared serving interface
    # ------------------------------------------------------------------

    @property
    def active_connections(self) -> int:
        """Currently open client connections (racy read by design)."""
        return len(self._conns)

    @property
    def worker_count(self) -> int:
        """Service threads — always exactly one reactor, regardless of
        session count (the number the E12 bench contrasts with
        thread-per-connection)."""
        return 1 if self._thread.is_alive() else 0

    def stats_snapshot(self) -> Dict[str, Any]:
        """JSON-ready serving counters plus the merged metrics snapshot
        (process registry + scan-pool workers, as in the threaded
        server)."""
        return {
            "sessions_opened": self.server.sessions_opened,
            "gets_served": self.server.gets_served,
            "modes": {
                mode: stats.as_dict()
                for mode, stats in sorted(self.server.stats_by_mode().items())
            },
            "metrics": self.server.metrics_snapshot(),
        }

    def stop(self, timeout: float = 5.0) -> None:
        """Shut down deterministically (idempotent).

        Wakes the reactor, which tears every connection down, closes the
        listener and selector, and exits; then the sidecar is stopped and
        the reactor thread joined.
        """
        self._stopping.set()
        try:
            self._wake_send.send(b"\x00")
        except OSError:
            pass
        if self.stats is not None:
            self.stats.stop(timeout)
        self._thread.join(timeout)
        try:
            self._wake_send.close()
        except OSError:
            pass
        _log.info("zltp eventloop endpoint stopped", extra={
            "host": self.address[0], "port": self.address[1]})

    # ------------------------------------------------------------------
    # Reactor internals — everything below runs on the reactor thread
    # ------------------------------------------------------------------

    def _react_loop(self) -> None:
        self._selector.register(self._listener, selectors.EVENT_READ,
                                data="accept")
        self._selector.register(self._wake_recv, selectors.EVENT_READ,
                                data="wake")
        last_sweep = time.monotonic()
        try:
            while not self._stopping.is_set():
                for key, mask in self._selector.select(timeout=self._tick):
                    if key.data == "accept":
                        self._react_accept()
                    elif key.data == "wake":
                        try:
                            self._wake_recv.recv(64)
                        except OSError:
                            pass
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_WRITE:
                            self._react_flush(conn)
                        if mask & selectors.EVENT_READ and \
                                conn.sock.fileno() != -1:
                            self._react_read(conn)
                now = time.monotonic()
                if self.idle_timeout is not None and \
                        now - last_sweep >= min(self._tick, self.idle_timeout / 2):
                    self._react_sweep_idle(now)
                    last_sweep = now
        finally:
            self._react_shutdown()

    def _react_accept(self) -> None:
        # Accept everything ready this tick; the listener backlog is deep
        # and a reactor accepts cheaply.
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                # EMFILE or a listener torn down mid-accept: stop
                # accepting this tick; existing sessions keep running.
                return
            sock.setblocking(False)
            conn = _Connection(sock, self.server.create_session(),
                               time.monotonic())
            self._conns[sock.fileno()] = conn
            self.sessions_accepted += 1
            record_active_sessions(self.kind, len(self._conns))
            try:
                self._selector.register(sock, selectors.EVENT_READ, data=conn)
            except (ValueError, KeyError, OSError):
                self._react_teardown(conn)

    def _react_read(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._react_teardown(conn)
            return
        if not chunk:
            if conn.decoder.pending_bytes:
                self._react_note_truncated(conn)
            self._react_teardown(conn)
            return
        conn.last_activity = time.monotonic()
        try:
            frames = conn.decoder.feed(chunk)
        except TransportError as exc:
            # Oversized frame declaration: the stream is unrecoverable.
            self._react_send_error(conn, "bad-frame", str(exc))
            return
        if not frames:
            return
        try:
            replies = conn.session.handle_frames(frames)
        except Exception as exc:
            # A handler bug must not kill the reactor: tell this client,
            # tear this session down, keep serving the rest.
            _log.exception("connection handler failed")
            self._react_send_error(conn, "internal", str(exc))
            return
        for reply in replies:
            conn.outbuf += encode_frame(reply)
        if conn.session.closed:
            conn.closing = True
        self._react_flush(conn)

    def _react_send_error(self, conn: _Connection, code: str,
                          detail: str) -> None:
        """Queue an error frame, then close once it has drained."""
        error = msg.ErrorMessage(code, detail)
        conn.outbuf += encode_frame(msg.encode_message(error))
        conn.closing = True
        self._react_flush(conn)

    def _react_note_truncated(self, conn: _Connection) -> None:
        """A peer closed with a partial frame buffered — surface it.

        Mirrors the threaded server: count it, log it, and (for a peer
        that only shut down its write side) report it back best-effort.
        """
        pending = conn.decoder.pending_bytes
        self.truncated_frames += 1
        record_truncated_frame()
        _log.warning("connection closed mid-frame", extra={
            "pending_bytes": pending})
        error = msg.ErrorMessage(
            "truncated-frame",
            f"connection closed with {pending} bytes of a partial frame",
        )
        try:
            conn.sock.send(encode_frame(msg.encode_message(error)))
        except OSError:
            pass

    def _react_flush(self, conn: _Connection) -> None:
        """Drain the write buffer as far as the socket allows right now."""
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._react_teardown(conn)
                return
            if sent <= 0:
                break
            del conn.outbuf[:sent]
        if conn.outbuf:
            self._react_set_interest(conn, write=True)
        else:
            if conn.closing:
                self._react_teardown(conn)
                return
            self._react_set_interest(conn, write=False)

    def _react_set_interest(self, conn: _Connection, write: bool) -> None:
        if conn.want_write == write:
            return
        events = selectors.EVENT_READ
        if write:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, data=conn)
            conn.want_write = write
        except (ValueError, KeyError, OSError):
            self._react_teardown(conn)

    def _react_sweep_idle(self, now: float) -> None:
        stale = [conn for conn in self._conns.values()
                 if now - conn.last_activity > self.idle_timeout]
        for conn in stale:
            self.idle_reaped += 1
            error = msg.ErrorMessage(
                "idle-timeout",
                f"session idle longer than {self.idle_timeout:g}s",
            )
            try:
                conn.sock.send(encode_frame(msg.encode_message(error)))
            except OSError:
                pass
            self._react_teardown(conn)

    def _react_teardown(self, conn: _Connection) -> None:
        """Close one connection and balance every piece of accounting."""
        conn.session.close()
        fd = conn.sock.fileno()
        if fd >= 0:
            self._conns.pop(fd, None)
        else:
            # The fd is already invalid; fall back to a value scan.
            for known_fd, known in list(self._conns.items()):
                if known is conn:
                    self._conns.pop(known_fd, None)
                    break
        try:
            self._selector.unregister(conn.sock)
        except (ValueError, KeyError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        record_active_sessions(self.kind, len(self._conns))

    def _react_shutdown(self) -> None:
        """Reactor exit path: tear everything down before the thread dies."""
        for conn in list(self._conns.values()):
            self._react_teardown(conn)
        try:
            self._selector.unregister(self._listener)
        except (ValueError, KeyError, OSError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            self._selector.unregister(self._wake_recv)
        except (ValueError, KeyError, OSError):
            pass
        try:
            self._wake_recv.close()
        except OSError:
            pass
        self._selector.close()


__all__ = ["ZltpEventLoopServer"]
