"""Real TCP transport for ZLTP — the protocol on an actual network stack.

The in-memory transports are what most tests use, but ZLTP is an
application-layer network protocol and should run over real sockets too.
:class:`ZltpTcpServer` serves a :class:`~repro.core.zltp.server.ZltpServer`
on a listening socket (one thread per connection — plenty for a prototype
whose per-request cost is a linear database scan), and :func:`connect_tcp`
returns a blocking :class:`TcpTransport` usable directly by
:class:`~repro.core.zltp.client.ZltpClient`.

:class:`StatsTcpServer` is the observability sidecar: a deliberately tiny
HTTP/1.0 responder (the ZLTP wire itself carries only fixed-size frames,
so stats ride a separate listener) exposing the server's serving counters
and the process metrics registry as text or JSON — what ``lightweb
stats`` and scrapers read.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.resilience import ReconnectingTransport, RetryPolicy, resilient
from repro.core.zltp import messages as msg
from repro.core.zltp.server import ZltpServer
from repro.core.zltp.wire import FrameDecoder, encode_frame
from repro.errors import TransportError
from repro.obs.logs import get_logger
from repro.obs.metrics import (
    REGISTRY,
    record_truncated_frame,
    render_snapshot_text,
)

_RECV_CHUNK = 65536

_log = get_logger(__name__)


class TcpTransport:
    """A blocking framed transport over a connected TCP socket.

    Thread-safety: a resilient client closes transports from watchdog or
    failover threads while a session thread is parked in ``recv_frame``,
    so the closed flag is read and written only under ``_lock`` and
    :meth:`close` is idempotent. The blocking socket calls themselves run
    *outside* the lock (holding it would deadlock a concurrent close);
    ``close()`` first marks the transport closed, then ``shutdown()``s
    the socket, which unblocks any in-flight ``recv``/``send`` — that
    thread re-checks the flag and surfaces a typed "closed" error rather
    than a raw ``OSError`` from a torn-down file descriptor.
    """

    def __init__(self, sock: socket.socket, name: str = "tcp"):
        self._sock = sock
        self.name = name
        self._decoder = FrameDecoder()
        self._pending: list = []
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        self._torn_down = False  # guarded-by: _lock
        self._bytes_sent = 0
        self._bytes_received = 0

    @property
    def closed(self) -> bool:
        """Whether the transport has been closed (locally or by the peer)."""
        with self._lock:
            return self._closed

    def _closed_error(self) -> TransportError:
        return TransportError(f"transport {self.name!r} is closed")

    def send_frame(self, payload: bytes) -> None:
        if self.closed:
            raise self._closed_error()
        frame = encode_frame(payload)
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            if self.closed:
                raise self._closed_error() from exc
            raise TransportError(f"send failed: {exc}") from exc
        self._bytes_sent += len(frame)

    def recv_frame(self) -> bytes:
        while not self._pending:
            if self.closed:
                raise self._closed_error()
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except OSError as exc:
                if self.closed:
                    # A concurrent close() tore the socket down under us;
                    # report the close, not the incidental errno.
                    raise self._closed_error() from exc
                raise TransportError(f"recv failed: {exc}") from exc
            if not chunk:
                with self._lock:
                    self._closed = True
                raise TransportError("connection closed by peer")
            self._bytes_received += len(chunk)
            self._pending.extend(self._decoder.feed(chunk))
        return self._pending.pop(0)

    def close(self) -> None:
        """Close the transport; safe to call from any thread, any number
        of times."""
        with self._lock:
            self._closed = True
            if self._torn_down:
                return
            # A peer-initiated close only flips _closed; the descriptor
            # is still ours to release, exactly once, right here.
            self._torn_down = True
        # shutdown() unblocks a thread parked in recv()/sendall() before
        # the descriptor goes away.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def bytes_sent(self) -> int:
        """Total framed bytes sent."""
        return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        """Total framed bytes received."""
        return self._bytes_received


class StatsTcpServer:
    """Serve an observability snapshot over HTTP/1.0, one request per
    connection.

    ``GET /metrics.json`` (or any path ending in ``.json``) returns the
    snapshot as JSON; ``GET /debug/traces.json`` returns the flight
    recorder's retained trace trees (when a ``traces`` callable was
    given); every other path returns the Prometheus-style text
    exposition. The payload comes from a caller-supplied zero-argument
    ``snapshot`` callable, so the same sidecar fronts a single
    :class:`ZltpServer` or a whole deployment aggregate.

    Hand-rolled on purpose: no routing, no keep-alive, no request body —
    just enough HTTP for ``curl`` and ``lightweb stats``, with the same
    deterministic :meth:`stop` discipline as :class:`ZltpTcpServer`.
    """

    def __init__(self, snapshot: Callable[[], Dict[str, Any]],
                 host: str = "127.0.0.1", port: int = 0,
                 traces: Optional[Callable[[], Dict[str, Any]]] = None,
                 io_timeout: Optional[float] = 5.0):
        """Bind and start serving.

        Args:
            snapshot: zero-argument callable producing the JSON payload.
            host / port: bind address (port 0 picks a free one).
            traces: optional flight-recorder export callable behind
                ``/debug/traces.json``.
            io_timeout: per-connection recv/send timeout. This used to be
                a hardcoded 5.0 — an arbitrary constant that killed
                legitimately slow scrapers on a loaded box; it is now the
                *server's* configured timeout (None = block forever).
        """
        self._snapshot = snapshot
        self._traces = traces
        self._io_timeout = io_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        _log.info("stats endpoint listening", extra={
            "host": self.address[0], "port": self.address[1]})

    def _serve_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                self._serve_request(conn)
            except Exception:
                # A raising snapshot (or a malformed request) must not
                # kill the sidecar thread: the next scrape still works.
                _log.exception("stats request failed")
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_request(self, conn: socket.socket) -> None:
        conn.settimeout(self._io_timeout)
        data = b""
        while b"\r\n" not in data:
            try:
                chunk = conn.recv(_RECV_CHUNK)
            except OSError:
                # A scraper that connected and reset before sending a
                # request line is a client event, not a server failure.
                _log.debug("stats client disconnected before request")
                return
            if not chunk:
                return
            data += chunk
        request_line = data.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        path = parts[1] if len(parts) >= 2 else "/"
        # Route on the path component only; /metrics.json?pretty=1 is
        # still a JSON request.
        path = path.split("?", 1)[0]
        status = "200 OK"
        try:
            if path == "/debug/traces.json":
                if self._traces is None:
                    status = "404 Not Found"
                    body = b"no flight recorder attached\n"
                    ctype = "text/plain; charset=utf-8"
                else:
                    body = json.dumps(self._traces(), indent=2).encode()
                    ctype = "application/json"
            elif path.endswith(".json"):
                body = json.dumps(self._snapshot(), indent=2).encode()
                ctype = "application/json"
            else:
                body = self._render_text().encode()
                ctype = "text/plain; charset=utf-8"
        except Exception as exc:
            status = "500 Internal Server Error"
            body = f"snapshot failed: {exc}\n".encode()
            ctype = "text/plain; charset=utf-8"
        header = (
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            conn.sendall(header + body)
        except OSError:
            # The scraper hung up mid-response. Its loss — nothing is
            # wrong server-side, so no "stats request failed" traceback.
            _log.debug("stats client disconnected mid-write")

    def _render_text(self) -> str:
        snap = self._snapshot()
        lines = []
        for key, value in snap.items():
            if key == "metrics":
                continue
            lines.append(f"# {key}: {json.dumps(value)}")
        # Render the snapshot's own metrics — which may be a merged view
        # (parent registry + pool workers) the live REGISTRY never saw —
        # falling back to the process registry for snapshot callables
        # that carry no metrics key.
        metrics = snap.get("metrics")
        if metrics is not None:
            text = render_snapshot_text(metrics)
        else:
            text = REGISTRY.render_text()
        return "\n".join(lines) + ("\n" if lines else "") + text

    def stop(self, timeout: float = 5.0) -> None:
        """Stop listening and join the serving thread (idempotent)."""
        self._stopping.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout)


class ZltpTcpServer:
    """Serve a logical ZLTP server on a TCP listening socket.

    Connection threads are tracked and pruned as they finish (no unbounded
    ``_threads`` growth), live sockets are registered so :meth:`stop` can
    shut every open connection down and join every worker deterministically.
    Frames that arrive together in one TCP chunk are handed to the session
    as a batch, so a pipelining client's GETs reach the mode's single-pass
    batched scan.
    """

    def __init__(self, server: ZltpServer, host: str = "127.0.0.1", port: int = 0,
                 stats_port: Optional[int] = None,
                 io_timeout: Optional[float] = None):
        """Bind and start accepting in a background thread.

        Args:
            server: the logical server to expose.
            host: bind address.
            port: bind port; 0 picks a free ephemeral port.
            stats_port: also serve this server's stats snapshot over HTTP
                on this port (0 picks a free one); None disables the
                sidecar.
            io_timeout: per-connection recv timeout for accepted ZLTP
                connections, also threaded through to the stats sidecar.
                None (the default) blocks forever — a parked client costs
                a thread but is never killed by an arbitrary constant;
                deployments that want reaping configure it explicitly
                (the threaded twin of the eventloop's ``idle_timeout``).
        """
        self.server = server
        self._io_timeout = io_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._threads: list = []  # guarded-by: _lock
        self._conns: set = set()  # guarded-by: _lock
        self.truncated_frames = 0  # guarded-by: _lock
        self.stats: Optional[StatsTcpServer] = None
        if stats_port is not None:
            self.stats = StatsTcpServer(
                self.stats_snapshot, host=host, port=stats_port,
                traces=server.flight.export,
                io_timeout=io_timeout if io_timeout is not None else 5.0)
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        _log.info("zltp endpoint listening", extra={
            "host": self.address[0], "port": self.address[1],
            "modes": list(server.modes)})

    def stats_snapshot(self) -> Dict[str, Any]:
        """JSON-ready serving counters plus the merged metrics snapshot.

        The ``metrics`` key is :meth:`ZltpServer.metrics_snapshot` — the
        process registry folded together with the scan pool workers'
        registries, in the mergeable cross-process format — so a scrape
        of this endpoint sees every core's work, not just the parent's.
        """
        return {
            "sessions_opened": self.server.sessions_opened,
            "gets_served": self.server.gets_served,
            "modes": {
                mode: stats.as_dict()
                for mode, stats in sorted(self.server.stats_by_mode().items())
            },
            "metrics": self.server.metrics_snapshot(),
        }

    @property
    def worker_count(self) -> int:
        """Live connection-handler threads (finished ones are pruned)."""
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            return len(self._threads)

    @property
    def active_connections(self) -> int:
        """Currently open client connections."""
        with self._lock:
            return len(self._conns)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            if self._stopping.is_set():
                try:
                    conn.close()
                except OSError:
                    pass
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
                self._conns.add(conn)
            thread.start()

    def _note_truncated_frame(self, conn: socket.socket,
                              pending_bytes: int) -> None:
        """Surface a partial frame left behind by a dying connection.

        Bytes sitting in a connection's decoder when the peer vanishes
        used to be dropped on the floor; a truncated frame is a protocol
        event worth counting and (best-effort, for a peer that only
        half-closed its write side) reporting back.
        """
        with self._lock:
            self.truncated_frames += 1
        record_truncated_frame()
        _log.warning("connection closed mid-frame", extra={
            "pending_bytes": pending_bytes})
        error = msg.ErrorMessage(
            "truncated-frame",
            f"connection closed with {pending_bytes} bytes of a partial frame",
        )
        try:
            conn.sendall(encode_frame(msg.encode_message(error)))
        except OSError:
            pass

    def _serve_connection(self, conn: socket.socket) -> None:
        session = self.server.create_session()
        decoder = FrameDecoder()
        if self._io_timeout is not None:
            conn.settimeout(self._io_timeout)
        try:
            while not session.closed and not self._stopping.is_set():
                try:
                    chunk = conn.recv(_RECV_CHUNK)
                except socket.timeout:
                    # The configured io timeout expired with no frame:
                    # reap like the eventloop's idle sweep, telling the
                    # peer why (best-effort).
                    error = msg.ErrorMessage(
                        "idle-timeout",
                        f"no frame within {self._io_timeout:g}s",
                    )
                    try:
                        conn.sendall(encode_frame(msg.encode_message(error)))
                    except OSError:
                        pass
                    return
                if not chunk:
                    # Peer closed. Bytes still buffered in the decoder mean
                    # the stream died mid-frame — surface it, don't drop it.
                    if decoder.pending_bytes:
                        self._note_truncated_frame(conn, decoder.pending_bytes)
                    return
                frames = decoder.feed(chunk)
                if not frames:
                    continue
                for reply in session.handle_frames(frames):
                    conn.sendall(encode_frame(reply))
        except OSError:
            return
        except Exception as exc:
            # A handler bug must not kill the connection silently: tell
            # the client why its session died, then tear it down.
            _log.exception("connection handler failed")
            error = msg.ErrorMessage("internal", str(exc))
            try:
                conn.sendall(encode_frame(msg.encode_message(error)))
            except OSError:
                pass
            return
        finally:
            # Every exit path — peer close, OSError, handler crash, clean
            # Bye — tears the server-side session down so the logical
            # server's session accounting balances.
            session.close()
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def stop(self, timeout: float = 5.0) -> None:
        """Shut down deterministically: listener, live connections, workers.

        Stops accepting, shuts every open connection (unblocking any worker
        parked in ``recv``), then joins the accept thread and every worker.
        Safe to call more than once.
        """
        self._stopping.set()
        if self.stats is not None:
            self.stats.stop(timeout)
        # shutdown() (not just close()) wakes a thread blocked in accept().
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._accept_thread.join(timeout)
        for thread in threads:
            thread.join(timeout)
        with self._lock:
            for conn in list(self._conns):
                try:
                    conn.close()
                except OSError:
                    pass
                self._conns.discard(conn)
            self._threads = [t for t in self._threads if t.is_alive()]
        _log.info("zltp endpoint stopped", extra={
            "host": self.address[0], "port": self.address[1]})


def connect_tcp(host: str, port: int, timeout: Optional[float] = 10.0,
                io_timeout: Optional[float] = None) -> TcpTransport:
    """Open a TCP connection to a ZLTP server and wrap it as a transport.

    Args:
        host: server address.
        port: server port.
        timeout: connection-establishment timeout only.
        io_timeout: per-recv/send timeout for the established session;
            None (the default) blocks indefinitely. A PIR answer is a
            full database scan, so the dial timeout must not double as
            the I/O timeout — a slow mode is not a dead connection.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        # Typed like every other transport failure, so retry policies and
        # endpoint pools treat a refused dial as a recoverable event.
        raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
    sock.settimeout(io_timeout)
    return TcpTransport(sock, name=f"tcp:{host}:{port}")


def connect_tcp_resilient(candidates: List[Tuple[str, int]],
                          policy: Optional[RetryPolicy] = None,
                          timeout: Optional[float] = 10.0,
                          io_timeout: Optional[float] = None,
                          op_deadline_seconds: Optional[float] = None
                          ) -> ReconnectingTransport:
    """A reconnecting transport over one or more (host, port) endpoints.

    Dials the first reachable candidate and transparently re-dials (with
    failover across the remaining candidates) when the TCP session drops
    mid-stream. The caller still drives the ZLTP handshake; see
    :class:`repro.core.resilience.ReconnectingTransport` for the replay
    discipline.
    """
    if not candidates:
        raise TransportError("connect_tcp_resilient needs at least one endpoint")
    dials = [
        (lambda host=host, port=port:
         connect_tcp(host, port, timeout=timeout, io_timeout=io_timeout))
        for host, port in candidates
    ]
    name = "tcp:" + ",".join(f"{host}:{port}" for host, port in candidates)
    return resilient(dials, policy=policy,
                     op_deadline_seconds=op_deadline_seconds, name=name)


__all__ = ["TcpTransport", "ZltpTcpServer", "StatsTcpServer", "connect_tcp",
           "connect_tcp_resilient"]
