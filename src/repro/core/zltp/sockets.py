"""Real TCP transport for ZLTP — the protocol on an actual network stack.

The in-memory transports are what most tests use, but ZLTP is an
application-layer network protocol and should run over real sockets too.
:class:`ZltpTcpServer` serves a :class:`~repro.core.zltp.server.ZltpServer`
on a listening socket (one thread per connection — plenty for a prototype
whose per-request cost is a linear database scan), and :func:`connect_tcp`
returns a blocking :class:`TcpTransport` usable directly by
:class:`~repro.core.zltp.client.ZltpClient`.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional, Tuple

from repro.core.zltp.server import ZltpServer
from repro.core.zltp.wire import FrameDecoder, encode_frame
from repro.errors import TransportError

_RECV_CHUNK = 65536


class TcpTransport:
    """A blocking framed transport over a connected TCP socket."""

    def __init__(self, sock: socket.socket, name: str = "tcp"):
        self._sock = sock
        self.name = name
        self._decoder = FrameDecoder()
        self._pending: list = []
        self._closed = False
        self._bytes_sent = 0
        self._bytes_received = 0

    def send_frame(self, payload: bytes) -> None:
        if self._closed:
            raise TransportError(f"transport {self.name!r} is closed")
        frame = encode_frame(payload)
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self._bytes_sent += len(frame)

    def recv_frame(self) -> bytes:
        while not self._pending:
            if self._closed:
                raise TransportError(f"transport {self.name!r} is closed")
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not chunk:
                self._closed = True
                raise TransportError("connection closed by peer")
            self._bytes_received += len(chunk)
            self._pending.extend(self._decoder.feed(chunk))
        return self._pending.pop(0)

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def bytes_sent(self) -> int:
        """Total framed bytes sent."""
        return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        """Total framed bytes received."""
        return self._bytes_received


class ZltpTcpServer:
    """Serve a logical ZLTP server on a TCP listening socket.

    Connection threads are tracked and pruned as they finish (no unbounded
    ``_threads`` growth), live sockets are registered so :meth:`stop` can
    shut every open connection down and join every worker deterministically.
    Frames that arrive together in one TCP chunk are handed to the session
    as a batch, so a pipelining client's GETs reach the mode's single-pass
    batched scan.
    """

    def __init__(self, server: ZltpServer, host: str = "127.0.0.1", port: int = 0):
        """Bind and start accepting in a background thread.

        Args:
            server: the logical server to expose.
            host: bind address.
            port: bind port; 0 picks a free ephemeral port.
        """
        self.server = server
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._threads: list = []  # guarded-by: _lock
        self._conns: set = set()  # guarded-by: _lock
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    @property
    def worker_count(self) -> int:
        """Live connection-handler threads (finished ones are pruned)."""
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            return len(self._threads)

    @property
    def active_connections(self) -> int:
        """Currently open client connections."""
        with self._lock:
            return len(self._conns)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            if self._stopping.is_set():
                try:
                    conn.close()
                except OSError:
                    pass
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
                self._conns.add(conn)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session = self.server.create_session()
        decoder = FrameDecoder()
        try:
            while not session.closed and not self._stopping.is_set():
                chunk = conn.recv(_RECV_CHUNK)
                if not chunk:
                    return
                frames = decoder.feed(chunk)
                if not frames:
                    continue
                for reply in session.handle_frames(frames):
                    conn.sendall(encode_frame(reply))
        except OSError:
            return
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def stop(self, timeout: float = 5.0) -> None:
        """Shut down deterministically: listener, live connections, workers.

        Stops accepting, shuts every open connection (unblocking any worker
        parked in ``recv``), then joins the accept thread and every worker.
        Safe to call more than once.
        """
        self._stopping.set()
        # shutdown() (not just close()) wakes a thread blocked in accept().
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._accept_thread.join(timeout)
        for thread in threads:
            thread.join(timeout)
        with self._lock:
            for conn in list(self._conns):
                try:
                    conn.close()
                except OSError:
                    pass
                self._conns.discard(conn)
            self._threads = [t for t in self._threads if t.is_alive()]


def connect_tcp(host: str, port: int, timeout: Optional[float] = 10.0) -> TcpTransport:
    """Open a TCP connection to a ZLTP server and wrap it as a transport."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return TcpTransport(sock, name=f"tcp:{host}:{port}")


__all__ = ["TcpTransport", "ZltpTcpServer", "connect_tcp"]
