"""ZLTP modes of operation (§2.2): the three built-in backend registrations.

Each mode supplies a server half (turn an opaque query payload into an
opaque answer payload over the blob database) and a client half (build the
query payloads for a slot, decode the answer payloads into the record).
Both halves are thin adapters over the real engines in
:mod:`repro.pir.twoserver`, :mod:`repro.pir.singleserver` /
:mod:`repro.crypto.lwe`, and :mod:`repro.oram.enclave`, registered with
the :mod:`repro.core.backend` registry — which is the single source of
truth for mode names, endpoint counts, and negotiation preference order.
Sessions negotiate a mode by name; §2.1's security assumptions differ per
mode and are documented on each registration.

=================  ==========  ====================================
mode name          endpoints   assumption (§2.1)
=================  ==========  ====================================
``pir2``           2           non-collusion (≥1 of 2 honest)
``pir-lwe``        1           cryptographic (LWE hardness)
``enclave-oram``   1           hardware (enclave protects secrets)
=================  ==========  ====================================
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core import backend
from repro.core.backend import (
    BackendCost,
    ServerContext,
    create_client,
    create_server,
    mode_endpoints,
    negotiate,
)
from repro.crypto import aead
from repro.crypto.dpf import gen_dpf
from repro.crypto.lwe import LweParams, LwePirClient, LwePirServer
from repro.errors import ProtocolError
from repro.oram.enclave import SimulatedEnclave
from repro.pir.codec import pack_u64, unpack_u64
from repro.pir.database import BlobDatabase
from repro.pir.twoserver import TwoServerPirServer

MODE_PIR2 = "pir2"
MODE_PIR_LWE = "pir-lwe"
MODE_ENCLAVE = "enclave-oram"

#: Default server preference order: strongest guarantees first. Derived
#: from the same preference ranks the registry sorts by.
ALL_MODES = [MODE_PIR2, MODE_PIR_LWE, MODE_ENCLAVE]


# --------------------------------------------------------------------------
# pir2: two-server DPF PIR
# --------------------------------------------------------------------------

PIR2 = backend.declare_backend(
    MODE_PIR2, endpoints=2, preference=0,
    assumption="non-collusion (>=1 of 2 honest)",
    snapshots_database=False,
    cost=BackendCost(servers_per_request=2, linear_scan=True,
                     note="two non-colluding linear scans per request"),
)


@PIR2.server
class Pir2ModeServer:
    """Server half of ``pir2`` — one of the two non-colluding parties.

    By default the party is a single :class:`TwoServerPirServer` scanning
    the whole database. With the ``prefix_bits`` server option set, the
    party instead runs the §5.2 deployment shape — a
    :class:`~repro.pir.sharding.ShardedPartyServer` front-end fanning
    shard scans out through the scan engine — behind the same wire
    surface.
    """

    name = MODE_PIR2

    def __init__(self, database: BlobDatabase, party: int, core=None):
        self._pir = core if core is not None else TwoServerPirServer(
            database, party)
        self.party = party

    @classmethod
    def from_context(cls, database: BlobDatabase,
                     ctx: ServerContext) -> "Pir2ModeServer":
        """Registry hook: build this party's half from a server context."""
        prefix_bits = ctx.options.get("prefix_bits")
        if prefix_bits:
            from repro.pir.sharding import ShardedPartyServer

            core = ShardedPartyServer(database, int(prefix_bits), ctx.party,
                                      executor=ctx.options.get("executor"))
            return cls(database, ctx.party, core=core)
        return cls(database, ctx.party)

    def hello_params(self) -> Dict[str, Any]:
        """Mode parameters for the ServerHello."""
        return {"party": self.party}

    def setup(self) -> Dict[str, Any]:
        """One-time setup payload (none for pir2)."""
        return {}

    def answer(self, payload: bytes) -> bytes:
        """Evaluate the DPF key and scan; return this party's XOR share."""
        return self._pir.answer(payload)

    def answer_batch(self, payloads: List[bytes]) -> List[bytes]:
        """Answer many GETs in one single-pass scan (§5.1 batching)."""
        return self._pir.answer_batch(payloads)


@PIR2.client
class Pir2ModeClient:
    """Client half of ``pir2``: deals DPF key pairs, XORs the answers."""

    name = MODE_PIR2
    endpoints = 2

    def __init__(self, domain_bits: int, blob_size: int,
                 rng: Optional[np.random.Generator] = None):
        self.domain_bits = domain_bits
        self.blob_size = blob_size
        self._rng = rng

    @classmethod
    def from_hello(cls, domain_bits: int, blob_size: int,
                   hello_params: Dict[str, Any], setup: Dict[str, Any],
                   rng: Optional[np.random.Generator] = None) -> "Pir2ModeClient":
        """Registry hook: build the client from the hello exchange."""
        return cls(domain_bits, blob_size, rng=rng)

    def queries_for_slot(self, slot: int) -> List[bytes]:
        """One DPF key per server."""
        key0, key1 = gen_dpf(slot, self.domain_bits, rng=self._rng)
        return [key0.to_bytes(), key1.to_bytes()]

    def decode(self, answers: List[bytes]) -> bytes:
        """XOR the two servers' shares into the record."""
        if len(answers) != 2:
            raise ProtocolError("pir2 needs exactly two answers")
        if len(answers[0]) != len(answers[1]):
            raise ProtocolError("pir2 answer length mismatch")
        a = np.frombuffer(answers[0], dtype=np.uint8)
        b = np.frombuffer(answers[1], dtype=np.uint8)
        return (a ^ b).tobytes()


# --------------------------------------------------------------------------
# pir-lwe: single-server LWE PIR
# --------------------------------------------------------------------------

PIR_LWE = backend.declare_backend(
    MODE_PIR_LWE, endpoints=1, preference=1,
    assumption="cryptographic (LWE hardness)",
    aliases=("lwe",), needs_setup=True,
    cost=BackendCost(servers_per_request=1, linear_scan=True,
                     note="one linear scan per request + one-time hint"),
)


@PIR_LWE.server
class LweModeServer:
    """Server half of ``pir-lwe``: answers are one matrix-vector product."""

    name = MODE_PIR_LWE

    def __init__(self, database: BlobDatabase, params: Optional[LweParams] = None,
                 seed: int = 7):
        self.params = params if params is not None else LweParams()
        matrix = database.as_byte_matrix().astype(np.uint64)
        self._core = LwePirServer(matrix, params=self.params, seed=seed)
        self.blob_size = database.blob_size

    @classmethod
    def from_context(cls, database: BlobDatabase,
                     ctx: ServerContext) -> "LweModeServer":
        """Registry hook: build the server from a server context."""
        return cls(database, params=ctx.lwe_params)

    def hello_params(self) -> Dict[str, Any]:
        """The LWE public parameters the client must mirror."""
        return {
            "n": self.params.n,
            "p": self.params.p,
            "noise_bound": self.params.noise_bound,
        }

    def setup(self) -> Dict[str, Any]:
        """The one-time hint download — the mode's big up-front cost."""
        return {
            "hint": pack_u64(self._core.hint()),
            "a_matrix": pack_u64(self._core.a_matrix),
        }

    def answer(self, payload: bytes) -> bytes:
        """One matrix-vector product over the database matrix."""
        query = unpack_u64(payload)
        if query.ndim != 1:
            raise ProtocolError("LWE query must be a vector")
        return pack_u64(self._core.answer(query))

    def answer_batch(self, payloads: List[bytes]) -> List[bytes]:
        """No cross-request amortisation for LWE; answer one by one."""
        return [self.answer(payload) for payload in payloads]


@PIR_LWE.client
class LweModeClient:
    """Client half of ``pir-lwe``; requires the setup payload first."""

    name = MODE_PIR_LWE
    endpoints = 1

    def __init__(self, blob_size: int, hello_params: Dict[str, Any],
                 setup: Dict[str, Any],
                 rng: Optional[np.random.Generator] = None):
        params = LweParams(
            n=int(hello_params["n"]),
            p=int(hello_params["p"]),
            noise_bound=int(hello_params["noise_bound"]),
        )
        self.blob_size = blob_size
        self._core = LwePirClient(
            unpack_u64(setup["a_matrix"]), unpack_u64(setup["hint"]),
            params=params, rng=rng,
        )

    @classmethod
    def from_hello(cls, domain_bits: int, blob_size: int,
                   hello_params: Dict[str, Any], setup: Dict[str, Any],
                   rng: Optional[np.random.Generator] = None) -> "LweModeClient":
        """Registry hook: build the client from the hello + setup payloads."""
        return cls(blob_size, hello_params, setup, rng=rng)

    def queries_for_slot(self, slot: int) -> List[bytes]:
        """One LWE query vector for the single server."""
        return [pack_u64(self._core.query(slot))]

    def decode(self, answers: List[bytes]) -> bytes:
        """Strip the noise and recover the record bytes."""
        if len(answers) != 1:
            raise ProtocolError("pir-lwe expects one answer")
        column = self._core.decode(unpack_u64(answers[0]))
        return column.astype(np.uint8).tobytes()[: self.blob_size]


# --------------------------------------------------------------------------
# enclave-oram
# --------------------------------------------------------------------------

ENCLAVE = backend.declare_backend(
    MODE_ENCLAVE, endpoints=1, preference=2,
    assumption="hardware (enclave protects secrets)",
    aliases=("enclave",),
    cost=BackendCost(servers_per_request=1, linear_scan=False,
                     note="polylog ORAM accesses inside the enclave"),
)


@ENCLAVE.server
class EnclaveModeServer:
    """Server half of ``enclave-oram``.

    The session key stands in for the secure channel a real client would
    establish with the enclave via remote attestation: the ZLTP *operator*
    relays only sealed payloads it cannot read, while the enclave's memory
    accesses go through Path ORAM (and are recorded for leakage tests).
    """

    name = MODE_ENCLAVE

    def __init__(self, database: BlobDatabase, session_key: Optional[bytes] = None,
                 rng: Optional[np.random.Generator] = None):
        self.session_key = session_key if session_key is not None else aead.generate_key()
        self.enclave = SimulatedEnclave(
            database.domain_bits, database.blob_size, rng=rng
        )
        for slot in database.occupied_slots():
            self.enclave.oblivious_write(slot, database.get_slot(slot))
        self.domain_bits = database.domain_bits

    @classmethod
    def from_context(cls, database: BlobDatabase,
                     ctx: ServerContext) -> "EnclaveModeServer":
        """Registry hook: build the enclave server from a server context."""
        return cls(database, rng=ctx.rng)

    def hello_params(self) -> Dict[str, Any]:
        """Attestation stand-in: hand the client the session key."""
        # In deployment this would be an attestation transcript + key
        # exchange; here the simulated enclave hands the client its key.
        return {"session_key": self.session_key}

    def setup(self) -> Dict[str, Any]:
        """No one-time setup payload for the enclave mode."""
        return {}

    def answer(self, payload: bytes) -> bytes:
        """Unseal the slot, read it obliviously, seal the record back."""
        if not self.enclave.sealed:
            from repro.errors import AccessError

            raise AccessError(
                "enclave attestation failed (compromised); refusing to serve"
            )
        raw = aead.open_sealed(self.session_key, payload, aad=b"zltp-enclave-q")
        if len(raw) != 8:
            raise ProtocolError("enclave query must be an 8-byte slot")
        (slot,) = struct.unpack("<Q", raw)
        record = self.enclave.oblivious_read(slot)
        return aead.seal(self.session_key, record, aad=b"zltp-enclave-a")

    def answer_batch(self, payloads: List[bytes]) -> List[bytes]:
        """ORAM accesses are inherently per-request; answer one by one."""
        return [self.answer(payload) for payload in payloads]


@ENCLAVE.client
class EnclaveModeClient:
    """Client half of ``enclave-oram``: slot sealed in, record sealed out."""

    name = MODE_ENCLAVE
    endpoints = 1

    def __init__(self, hello_params: Dict[str, Any]):
        self.session_key = hello_params["session_key"]

    @classmethod
    def from_hello(cls, domain_bits: int, blob_size: int,
                   hello_params: Dict[str, Any], setup: Dict[str, Any],
                   rng: Optional[np.random.Generator] = None) -> "EnclaveModeClient":
        """Registry hook: build the client from the hello exchange."""
        return cls(hello_params)

    def queries_for_slot(self, slot: int) -> List[bytes]:
        """Seal the slot number to the enclave."""
        raw = struct.pack("<Q", slot)
        return [aead.seal(self.session_key, raw, aad=b"zltp-enclave-q")]

    def decode(self, answers: List[bytes]) -> bytes:
        """Unseal the enclave's answer into the record."""
        if len(answers) != 1:
            raise ProtocolError("enclave-oram expects one answer")
        return aead.open_sealed(self.session_key, answers[0], aad=b"zltp-enclave-a")


# --------------------------------------------------------------------------
# Factories (compatibility veneer over the registry)
# --------------------------------------------------------------------------


def make_mode_server(mode: str, database: BlobDatabase, party: int = 0,
                     lwe_params: Optional[LweParams] = None,
                     rng: Optional[np.random.Generator] = None):
    """Build the server half of a mode over a blob database."""
    return create_server(mode, database, party=party, lwe_params=lwe_params,
                         rng=rng)


def make_mode_client(mode: str, domain_bits: int, blob_size: int,
                     hello_params: Dict[str, Any], setup: Dict[str, Any],
                     rng: Optional[np.random.Generator] = None):
    """Build the client half of a negotiated mode."""
    return create_client(mode, domain_bits, blob_size, hello_params, setup,
                         rng=rng)


__all__ = [
    "MODE_PIR2",
    "MODE_PIR_LWE",
    "MODE_ENCLAVE",
    "ALL_MODES",
    "mode_endpoints",
    "negotiate",
    "pack_u64",
    "unpack_u64",
    "Pir2ModeServer",
    "Pir2ModeClient",
    "LweModeServer",
    "LweModeClient",
    "EnclaveModeServer",
    "EnclaveModeClient",
    "make_mode_server",
    "make_mode_client",
]
