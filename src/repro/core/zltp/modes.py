"""ZLTP modes of operation (§2.2) behind one uniform interface.

Each mode supplies a server half (turn an opaque query payload into an
opaque answer payload over the blob database) and a client half (build the
query payloads for a slot, decode the answer payloads into the record).
Sessions negotiate a mode by name; §2.1's security assumptions differ per
mode and are documented on each class.

=================  ==========  ====================================
mode name          endpoints   assumption (§2.1)
=================  ==========  ====================================
``pir2``           2           non-collusion (≥1 of 2 honest)
``pir-lwe``        1           cryptographic (LWE hardness)
``enclave-oram``   1           hardware (enclave protects secrets)
=================  ==========  ====================================
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional

import numpy as np

from repro.crypto import aead
from repro.crypto.dpf import gen_dpf
from repro.crypto.lwe import LweParams, LwePirClient, LwePirServer
from repro.errors import CryptoError, NegotiationError, ProtocolError
from repro.oram.enclave import SimulatedEnclave
from repro.pir.database import BlobDatabase
from repro.pir.twoserver import TwoServerPirServer

MODE_PIR2 = "pir2"
MODE_PIR_LWE = "pir-lwe"
MODE_ENCLAVE = "enclave-oram"

#: Default server preference order: strongest guarantees first.
ALL_MODES = [MODE_PIR2, MODE_PIR_LWE, MODE_ENCLAVE]

_ENDPOINTS = {MODE_PIR2: 2, MODE_PIR_LWE: 1, MODE_ENCLAVE: 1}


def mode_endpoints(mode: str) -> int:
    """How many ZLTP server sessions the client must open for a mode."""
    try:
        return _ENDPOINTS[mode]
    except KeyError:
        raise NegotiationError(f"unknown mode {mode!r}") from None


def negotiate(client_modes: List[str], server_modes: List[str]) -> str:
    """Pick the mode: first server-preferred mode the client supports.

    Raises:
        NegotiationError: if there is no common mode.
    """
    for mode in server_modes:
        if mode in client_modes:
            return mode
    raise NegotiationError(
        f"no common mode: client {client_modes}, server {server_modes}"
    )


# --------------------------------------------------------------------------
# Array (de)serialisation for LWE payloads
# --------------------------------------------------------------------------


def pack_u64(arr: np.ndarray) -> bytes:
    """Serialise a 1- or 2-D uint64 array: ndim, dims, little-endian data."""
    arr = np.ascontiguousarray(arr, dtype=np.uint64)
    if arr.ndim not in (1, 2):
        raise CryptoError("only 1-D/2-D arrays supported")
    header = struct.pack("<B", arr.ndim) + b"".join(
        struct.pack("<I", dim) for dim in arr.shape
    )
    return header + arr.astype("<u8").tobytes()


def unpack_u64(raw: bytes) -> np.ndarray:
    """Inverse of :func:`pack_u64`, with strict validation."""
    if len(raw) < 1:
        raise ProtocolError("empty array payload")
    ndim = raw[0]
    if ndim not in (1, 2):
        raise ProtocolError(f"bad array ndim {ndim}")
    offset = 1
    shape = []
    for _ in range(ndim):
        if offset + 4 > len(raw):
            raise ProtocolError("truncated array shape")
        (dim,) = struct.unpack_from("<I", raw, offset)
        shape.append(dim)
        offset += 4
    expected = int(np.prod(shape)) * 8
    if len(raw) - offset != expected:
        raise ProtocolError(
            f"array data length {len(raw) - offset} != expected {expected}"
        )
    return np.frombuffer(raw, dtype="<u8", offset=offset).reshape(shape).astype(np.uint64)


# --------------------------------------------------------------------------
# pir2: two-server DPF PIR
# --------------------------------------------------------------------------


class Pir2ModeServer:
    """Server half of ``pir2`` — one of the two non-colluding parties."""

    name = MODE_PIR2

    def __init__(self, database: BlobDatabase, party: int):
        self._pir = TwoServerPirServer(database, party)
        self.party = party

    def hello_params(self) -> Dict[str, Any]:
        """Mode parameters for the ServerHello."""
        return {"party": self.party}

    def setup(self) -> Dict[str, Any]:
        """One-time setup payload (none for pir2)."""
        return {}

    def answer(self, payload: bytes) -> bytes:
        """Evaluate the DPF key and scan; return this party's XOR share."""
        return self._pir.answer(payload)

    def answer_batch(self, payloads: List[bytes]) -> List[bytes]:
        """Answer many GETs in one single-pass scan (§5.1 batching)."""
        return self._pir.answer_batch(payloads)


class Pir2ModeClient:
    """Client half of ``pir2``: deals DPF key pairs, XORs the answers."""

    name = MODE_PIR2
    endpoints = 2

    def __init__(self, domain_bits: int, blob_size: int,
                 rng: Optional[np.random.Generator] = None):
        self.domain_bits = domain_bits
        self.blob_size = blob_size
        self._rng = rng

    def queries_for_slot(self, slot: int) -> List[bytes]:
        """One DPF key per server."""
        key0, key1 = gen_dpf(slot, self.domain_bits, rng=self._rng)
        return [key0.to_bytes(), key1.to_bytes()]

    def decode(self, answers: List[bytes]) -> bytes:
        """XOR the two servers' shares into the record."""
        if len(answers) != 2:
            raise ProtocolError("pir2 needs exactly two answers")
        if len(answers[0]) != len(answers[1]):
            raise ProtocolError("pir2 answer length mismatch")
        a = np.frombuffer(answers[0], dtype=np.uint8)
        b = np.frombuffer(answers[1], dtype=np.uint8)
        return (a ^ b).tobytes()


# --------------------------------------------------------------------------
# pir-lwe: single-server LWE PIR
# --------------------------------------------------------------------------


class LweModeServer:
    """Server half of ``pir-lwe``: answers are one matrix-vector product."""

    name = MODE_PIR_LWE

    def __init__(self, database: BlobDatabase, params: Optional[LweParams] = None,
                 seed: int = 7):
        self.params = params if params is not None else LweParams()
        matrix = database.as_byte_matrix().astype(np.uint64)
        self._core = LwePirServer(matrix, params=self.params, seed=seed)
        self.blob_size = database.blob_size

    def hello_params(self) -> Dict[str, Any]:
        return {
            "n": self.params.n,
            "p": self.params.p,
            "noise_bound": self.params.noise_bound,
        }

    def setup(self) -> Dict[str, Any]:
        """The one-time hint download — the mode's big up-front cost."""
        return {
            "hint": pack_u64(self._core.hint()),
            "a_matrix": pack_u64(self._core.a_matrix),
        }

    def answer(self, payload: bytes) -> bytes:
        query = unpack_u64(payload)
        if query.ndim != 1:
            raise ProtocolError("LWE query must be a vector")
        return pack_u64(self._core.answer(query))

    def answer_batch(self, payloads: List[bytes]) -> List[bytes]:
        """No cross-request amortisation for LWE; answer one by one."""
        return [self.answer(payload) for payload in payloads]


class LweModeClient:
    """Client half of ``pir-lwe``; requires the setup payload first."""

    name = MODE_PIR_LWE
    endpoints = 1

    def __init__(self, blob_size: int, hello_params: Dict[str, Any],
                 setup: Dict[str, Any],
                 rng: Optional[np.random.Generator] = None):
        params = LweParams(
            n=int(hello_params["n"]),
            p=int(hello_params["p"]),
            noise_bound=int(hello_params["noise_bound"]),
        )
        self.blob_size = blob_size
        self._core = LwePirClient(
            unpack_u64(setup["a_matrix"]), unpack_u64(setup["hint"]),
            params=params, rng=rng,
        )

    def queries_for_slot(self, slot: int) -> List[bytes]:
        return [pack_u64(self._core.query(slot))]

    def decode(self, answers: List[bytes]) -> bytes:
        if len(answers) != 1:
            raise ProtocolError("pir-lwe expects one answer")
        column = self._core.decode(unpack_u64(answers[0]))
        return column.astype(np.uint8).tobytes()[: self.blob_size]


# --------------------------------------------------------------------------
# enclave-oram
# --------------------------------------------------------------------------


class EnclaveModeServer:
    """Server half of ``enclave-oram``.

    The session key stands in for the secure channel a real client would
    establish with the enclave via remote attestation: the ZLTP *operator*
    relays only sealed payloads it cannot read, while the enclave's memory
    accesses go through Path ORAM (and are recorded for leakage tests).
    """

    name = MODE_ENCLAVE

    def __init__(self, database: BlobDatabase, session_key: Optional[bytes] = None,
                 rng: Optional[np.random.Generator] = None):
        self.session_key = session_key if session_key is not None else aead.generate_key()
        self.enclave = SimulatedEnclave(
            database.domain_bits, database.blob_size, rng=rng
        )
        for slot in database.occupied_slots():
            self.enclave.oblivious_write(slot, database.get_slot(slot))
        self.domain_bits = database.domain_bits

    def hello_params(self) -> Dict[str, Any]:
        # In deployment this would be an attestation transcript + key
        # exchange; here the simulated enclave hands the client its key.
        return {"session_key": self.session_key}

    def setup(self) -> Dict[str, Any]:
        return {}

    def answer(self, payload: bytes) -> bytes:
        if not self.enclave.sealed:
            from repro.errors import AccessError

            raise AccessError(
                "enclave attestation failed (compromised); refusing to serve"
            )
        raw = aead.open_sealed(self.session_key, payload, aad=b"zltp-enclave-q")
        if len(raw) != 8:
            raise ProtocolError("enclave query must be an 8-byte slot")
        (slot,) = struct.unpack("<Q", raw)
        record = self.enclave.oblivious_read(slot)
        return aead.seal(self.session_key, record, aad=b"zltp-enclave-a")

    def answer_batch(self, payloads: List[bytes]) -> List[bytes]:
        """ORAM accesses are inherently per-request; answer one by one."""
        return [self.answer(payload) for payload in payloads]


class EnclaveModeClient:
    """Client half of ``enclave-oram``: slot sealed in, record sealed out."""

    name = MODE_ENCLAVE
    endpoints = 1

    def __init__(self, hello_params: Dict[str, Any]):
        self.session_key = hello_params["session_key"]

    def queries_for_slot(self, slot: int) -> List[bytes]:
        raw = struct.pack("<Q", slot)
        return [aead.seal(self.session_key, raw, aad=b"zltp-enclave-q")]

    def decode(self, answers: List[bytes]) -> bytes:
        if len(answers) != 1:
            raise ProtocolError("enclave-oram expects one answer")
        return aead.open_sealed(self.session_key, answers[0], aad=b"zltp-enclave-a")


# --------------------------------------------------------------------------
# Factories
# --------------------------------------------------------------------------


def make_mode_server(mode: str, database: BlobDatabase, party: int = 0,
                     lwe_params: Optional[LweParams] = None,
                     rng: Optional[np.random.Generator] = None):
    """Build the server half of a mode over a blob database."""
    if mode == MODE_PIR2:
        return Pir2ModeServer(database, party)
    if mode == MODE_PIR_LWE:
        return LweModeServer(database, params=lwe_params)
    if mode == MODE_ENCLAVE:
        return EnclaveModeServer(database, rng=rng)
    raise NegotiationError(f"unknown mode {mode!r}")


def make_mode_client(mode: str, domain_bits: int, blob_size: int,
                     hello_params: Dict[str, Any], setup: Dict[str, Any],
                     rng: Optional[np.random.Generator] = None):
    """Build the client half of a negotiated mode."""
    if mode == MODE_PIR2:
        return Pir2ModeClient(domain_bits, blob_size, rng=rng)
    if mode == MODE_PIR_LWE:
        return LweModeClient(blob_size, hello_params, setup, rng=rng)
    if mode == MODE_ENCLAVE:
        return EnclaveModeClient(hello_params)
    raise NegotiationError(f"unknown mode {mode!r}")


__all__ = [
    "MODE_PIR2",
    "MODE_PIR_LWE",
    "MODE_ENCLAVE",
    "ALL_MODES",
    "mode_endpoints",
    "negotiate",
    "pack_u64",
    "unpack_u64",
    "Pir2ModeServer",
    "Pir2ModeClient",
    "LweModeServer",
    "LweModeClient",
    "EnclaveModeServer",
    "EnclaveModeClient",
    "make_mode_server",
    "make_mode_client",
]
