"""Transport-layer resilience: retries, deadlines, reconnection, failover.

The paper's deployment story (§4, Table 2) is a fleet of hundreds of
shard servers per party, where individual server loss is routine. The
browsing layer already fails over between peered CDNs (§3.5); this module
adds the layer *below* it, so one dropped TCP connection or one lost
frame no longer kills a ZLTP session:

* :class:`RetryPolicy` — a deterministic, budget-capped backoff schedule.
  Jitter comes from a seeded ``numpy`` generator, so chaos tests replay
  the exact same schedule run after run.
* :class:`Deadline` — a per-request wall-clock budget; expiry raises the
  typed :class:`~repro.errors.DeadlineError` instead of blocking forever.
* :class:`EndpointPool` — rotates over candidate dial functions (primary
  first), which is how a pir2 endpoint pair fails over to a replica of
  the same logical party server.
* :class:`ReconnectingTransport` — wraps any dialled transport and
  transparently re-establishes the session when it fails, re-running the
  protocol handshake (via a client-installed ``on_reconnect`` hook) and
  re-sending every unanswered request frame.

Why retries do not leak (the zero-leakage argument, also in DESIGN.md):

1. Retries are triggered **only by public transport events** — a raised
   :class:`~repro.errors.TransportError` from send/recv, which an
   on-path observer sees anyway (the connection died). No retry decision
   ever reads a client secret.
2. Replays are **shape-preserving**: the journal stores the exact frame
   bytes that were sent, and reconnection re-sends them verbatim. Every
   ZLTP request frame is already fixed-size for a given universe, so a
   replayed session is byte-for-byte the prefix of a fresh session plus
   the same fixed-size frames — the adversary learns only "a client
   reconnected", never *what* it was fetching.
3. Backoff timing depends on the attempt number and the seeded jitter
   stream, never on request contents.

The journal exploits ZLTP's strict 1:1 request/response pairing: every
``send_frame`` after session establishment appends the frame, every
successful ``recv_frame`` retires the oldest one. The set of unanswered
frames is therefore exactly what must be replayed after a reconnect.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import DeadlineError, TransportError
from repro.obs.logs import get_logger
from repro.obs.metrics import record_failover, record_reconnect, record_retry
from repro.obs.trace import span

_log = get_logger(__name__)


class RetryPolicy:
    """Deterministic jittered exponential backoff with hard budgets.

    The delay before retry ``k`` (0-based) is::

        min(max_delay, base_delay * multiplier**k) * (1 + jitter * u_k)

    where ``u_k`` is drawn uniformly from [0, 1) off the policy's rng.
    With a seeded generator the whole schedule is reproducible — the
    property the chaos tests assert — and two policies built from
    equally-seeded generators produce identical schedules.

    Budgets are hard caps: at most ``max_attempts`` retries, and the
    *cumulative* planned delay never exceeds ``budget_seconds`` (the
    final delay is truncated to fit, after which the schedule ends).
    """

    def __init__(self, max_attempts: int = 4, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 jitter: float = 0.1,
                 budget_seconds: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None,
                 sleep: Callable[[float], None] = time.sleep):
        if max_attempts < 0:
            raise TransportError("max_attempts must be >= 0")
        if base_delay < 0 or max_delay < 0 or multiplier < 1 or jitter < 0:
            raise TransportError("backoff parameters must be non-negative "
                                 "(and multiplier >= 1)")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.budget_seconds = budget_seconds
        self._rng = rng if rng is not None else np.random.default_rng()
        self._sleep = sleep

    def delays(self) -> Iterator[float]:
        """Yield the backoff schedule, consuming the policy's rng.

        Stops after ``max_attempts`` delays or when the cumulative delay
        budget is exhausted, whichever comes first.
        """
        spent = 0.0
        for attempt in range(self.max_attempts):
            delay = min(self.max_delay,
                        self.base_delay * self.multiplier ** attempt)
            if self.jitter > 0:
                delay *= 1.0 + self.jitter * float(self._rng.random())
            if self.budget_seconds is not None:
                if spent >= self.budget_seconds:
                    return
                delay = min(delay, self.budget_seconds - spent)
            spent += delay
            yield delay

    def schedule(self) -> List[float]:
        """The full schedule as a list (unit tests assert determinism)."""
        return list(self.delays())

    def wait(self, delay: float, deadline: Optional["Deadline"] = None) -> None:
        """Sleep for ``delay`` seconds, truncated to the deadline."""
        if deadline is not None:
            delay = min(delay, max(0.0, deadline.remaining()))
        if delay > 0:
            self._sleep(delay)


class Deadline:
    """A per-request wall-clock budget.

    ``Deadline.start(0.5)`` gives half a second; :meth:`check` raises
    :class:`~repro.errors.DeadlineError` once it is spent. ``None``
    deadlines are represented by the caller simply not creating one.
    """

    def __init__(self, expires_at: float,
                 clock: Callable[[], float] = time.monotonic):
        self._expires_at = expires_at
        self._clock = clock

    @classmethod
    def start(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        if seconds <= 0:
            raise DeadlineError(f"deadline must be positive, got {seconds}")
        return cls(clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0

    def check(self, label: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineError` if expired."""
        if self.expired:
            raise DeadlineError(f"{label} deadline expired")


class EndpointPool:
    """Rotates over candidate dial functions: primary first, then replicas.

    Each candidate is a zero-argument callable returning a connected
    transport (e.g. ``lambda: connect_tcp(host, port)``). A successful
    dial pins the pool to that candidate until it fails, so a client
    that failed over keeps using the replica instead of hammering the
    dead primary on every reconnect.

    A pool built from discovery additionally carries a ``refresh`` hook:
    when every current candidate is dead, the hook is asked — once per
    :meth:`dial` call — for a replacement candidate list (a re-resolve
    against the directory), so endpoints announced *after* the pool was
    built still heal it. The once-per-dial bound matters: the retry
    policy driving repeated ``dial`` calls is what paces re-resolution,
    so a dead deployment costs one directory round-trip per backoff step,
    not an unbounded resolve loop.
    """

    def __init__(self, dials: Sequence[Callable[[], Any]], name: str = "pool",
                 refresh: Optional[
                     Callable[[], Sequence[Callable[[], Any]]]] = None):
        if not dials:
            raise TransportError("endpoint pool needs at least one candidate")
        self._dials = list(dials)
        self._index = 0
        self.name = name
        self.refresh = refresh
        self.failovers = 0
        self.refreshes = 0

    def __len__(self) -> int:
        return len(self._dials)

    def _dial_candidates(self) -> Any:
        """One pass over the current candidate list; returns a transport
        or raises the last candidate's TransportError."""
        last_error: Optional[Exception] = None
        for offset in range(len(self._dials)):
            index = (self._index + offset) % len(self._dials)
            try:
                transport = self._dials[index]()
            except TransportError as exc:
                last_error = exc
                continue
            if index != self._index:
                self.failovers += 1
                record_failover("transport")
                _log.info("endpoint failover", extra={
                    "pool": self.name, "endpoint": index})
            self._index = index
            return transport
        raise TransportError(
            f"all {len(self._dials)} endpoints of {self.name!r} failed: "
            f"{last_error}"
        ) from last_error

    def dial(self) -> Any:
        """Connect to the first candidate that answers, starting from the
        last known-good one.

        When every candidate fails and a ``refresh`` hook is installed,
        the hook supplies a replacement candidate list (discovery
        re-resolve) and the pass runs once more over it.

        Raises:
            TransportError: when every candidate fails (and the refresh
                hook, if any, produced nothing new that answers).
        """
        try:
            return self._dial_candidates()
        except TransportError as exc:
            if self.refresh is None:
                raise
            replacements = list(self.refresh() or [])
            if not replacements:
                raise
            self.refreshes += 1
            self.failovers += 1
            record_failover("discovery")
            _log.info("pool exhausted; candidates refreshed via discovery",
                      extra={"pool": self.name,
                             "candidates": len(replacements)})
            self._dials = replacements
            self._index = 0
            try:
                return self._dial_candidates()
            except TransportError as refreshed_exc:
                raise TransportError(
                    f"pool {self.name!r} failed even after a discovery "
                    f"refresh: {refreshed_exc}"
                ) from exc


class ReconnectingTransport:
    """A transport wrapper that survives connection loss.

    Wraps a ``dial`` callable (or an :class:`EndpointPool`) producing
    connected transports. Until :meth:`mark_established` is called,
    frames pass straight through — the protocol handshake is a stateful
    dialogue the client owns, so mid-handshake failures propagate to it.
    After establishment the wrapper journals every sent frame, retires
    one per received frame (ZLTP's 1:1 pairing), and on any transport
    failure: re-dials per the retry policy, runs the client-installed
    ``on_reconnect`` hook (which re-validates the hello against the
    negotiated session), and re-sends every unanswered frame verbatim.
    """

    def __init__(self, dial: Callable[[], Any],
                 policy: Optional[RetryPolicy] = None,
                 op_deadline_seconds: Optional[float] = None,
                 name: str = "reconnecting"):
        """Create the wrapper; the first dial happens lazily.

        Args:
            dial: zero-argument callable returning a connected transport
                (an :class:`EndpointPool`'s ``.dial`` for failover).
            policy: backoff schedule per failed operation; a default
                policy if omitted. Each operation's recovery consumes a
                fresh schedule.
            op_deadline_seconds: per-operation deadline covering the
                whole retry loop of one send/recv (None = no deadline).
            name: label for logs and spans (public).
        """
        self._dial = dial
        self._policy = policy if policy is not None else RetryPolicy()
        self._op_deadline_seconds = op_deadline_seconds
        self.name = name
        #: Client-installed hook run on every re-dialled raw transport
        #: before the journal replay (re-runs the hello exchange).
        self.on_reconnect: Optional[Callable[[Any], None]] = None
        self._raw: Optional[Any] = None
        self._unacked: Deque[bytes] = deque()
        self._established = False
        self._closed = False
        self._retired_sent = 0
        self._retired_received = 0
        self.reconnects = 0
        self.retries = 0
        self.frames_replayed = 0

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def mark_established(self) -> None:
        """Switch from handshake passthrough to journaled resilience.

        Called by the client once the hello (and setup) exchange is
        done; from here on every sent frame is a replayable request.
        """
        self._established = True
        self._unacked.clear()

    @property
    def established(self) -> bool:
        """Whether the journaled-resilience phase is active."""
        return self._established

    @property
    def unacked_frames(self) -> int:
        """Request frames sent but not yet answered."""
        return len(self._unacked)

    def _ensure_raw(self) -> Any:
        if self._closed:
            raise TransportError(f"transport {self.name!r} is closed")
        if self._raw is None:
            self._raw = self._dial_with_retries()
        return self._raw

    def _dial_with_retries(self) -> Any:
        deadline = self._op_deadline()
        try:
            return self._dial()
        except TransportError as exc:
            last = exc
        for delay in self._policy.delays():
            if deadline is not None and deadline.expired:
                break
            self._policy.wait(delay, deadline)
            self.retries += 1
            record_retry("transport")
            try:
                return self._dial()
            except TransportError as exc:
                last = exc
        raise last

    def _op_deadline(self) -> Optional[Deadline]:
        if self._op_deadline_seconds is None:
            return None
        return Deadline.start(self._op_deadline_seconds)

    # ------------------------------------------------------------------
    # The transport surface
    # ------------------------------------------------------------------

    def send_frame(self, payload: bytes) -> None:
        """Send one frame, reconnecting and replaying on failure."""
        raw = self._ensure_raw()
        if not self._established:
            raw.send_frame(payload)
            return
        self._unacked.append(payload)
        try:
            raw.send_frame(payload)
        except TransportError as exc:
            # Recovery replays the whole journal — including the frame
            # just appended — so a successful reconnect IS the send.
            self._recover(exc)

    def try_send_frame(self, payload: bytes) -> bool:
        """Best-effort send with no retry and no journaling.

        Used for goodbye-type frames where reconnecting just to say Bye
        would be absurd. Returns False instead of raising.
        """
        if self._closed or self._raw is None:
            return False
        try:
            self._raw.send_frame(payload)
            return True
        except TransportError:
            return False

    def recv_frame(self) -> bytes:
        """Receive one frame, reconnecting and replaying on failure."""
        raw = self._ensure_raw()
        if not self._established:
            return raw.recv_frame()
        deadline = self._op_deadline()
        while True:
            try:
                frame = self._raw.recv_frame()
            except TransportError as exc:
                self._recover(exc, deadline=deadline)
                continue
            if self._unacked:
                self._unacked.popleft()
            return frame

    def close(self) -> None:
        """Close the underlying transport; further operations raise."""
        self._closed = True
        if self._raw is not None:
            self._retire_raw()

    @property
    def bytes_sent(self) -> int:
        """Total framed bytes sent across every incarnation."""
        current = self._raw.bytes_sent if self._raw is not None else 0
        return self._retired_sent + current

    @property
    def bytes_received(self) -> int:
        """Total framed bytes received across every incarnation."""
        current = self._raw.bytes_received if self._raw is not None else 0
        return self._retired_received + current

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _retire_raw(self) -> None:
        raw, self._raw = self._raw, None
        if raw is None:
            return
        self._retired_sent += raw.bytes_sent
        self._retired_received += raw.bytes_received
        try:
            raw.close()
        except TransportError:
            pass

    def _recover(self, cause: TransportError,
                 deadline: Optional[Deadline] = None) -> None:
        """Re-dial, re-handshake, and replay the journal, with backoff.

        Raises the last failure (or :class:`~repro.errors.DeadlineError`)
        when the policy's budget runs out. A protocol-level rejection
        from ``on_reconnect`` (the replica announced different geometry)
        propagates immediately — retrying cannot fix that.
        """
        if deadline is None:
            deadline = self._op_deadline()
        self._retire_raw()
        last: Exception = cause
        _log.warning("transport failed; reconnecting", extra={
            "transport": self.name, "unacked": len(self._unacked)})
        # The failed operation is being re-attempted: even an immediately
        # successful reconnect counts as one retry.
        self.retries += 1
        record_retry("transport")
        if self._attempt_reconnect():
            return
        for delay in self._policy.delays():
            if deadline is not None and deadline.expired:
                record_reconnect("deadline")
                raise DeadlineError(
                    f"deadline expired reconnecting {self.name!r}"
                ) from last
            self._policy.wait(delay, deadline)
            self.retries += 1
            record_retry("transport")
            if self._attempt_reconnect():
                return
        record_reconnect("failed")
        raise TransportError(
            f"could not re-establish {self.name!r} after "
            f"{self._policy.max_attempts} retries: {last}"
        ) from last

    def _attempt_reconnect(self) -> bool:
        """One reconnect attempt: dial, re-handshake, replay. False on
        transport failure (retryable); protocol errors propagate."""
        with span("transport.reconnect", transport=self.name,
                  unacked=len(self._unacked)):
            raw = None
            try:
                raw = self._dial()
                if self.on_reconnect is not None:
                    self.on_reconnect(raw)
                # Shape-preserving replay: the exact bytes of every
                # unanswered request, in order.
                for frame in self._unacked:
                    raw.send_frame(frame)
            except TransportError:
                if raw is not None:
                    try:
                        raw.close()
                    except TransportError:
                        pass
                return False
        self._raw = raw
        self.reconnects += 1
        self.frames_replayed += len(self._unacked)
        record_reconnect("ok")
        _log.info("transport re-established", extra={
            "transport": self.name, "replayed": len(self._unacked)})
        return True


def resilient_pool(pool: EndpointPool,
                   policy: Optional[RetryPolicy] = None,
                   op_deadline_seconds: Optional[float] = None,
                   name: Optional[str] = None) -> ReconnectingTransport:
    """A :class:`ReconnectingTransport` over an existing pool.

    The discovery layer builds pools whose candidates came from a
    capability resolve (and whose ``refresh`` hook re-resolves); this
    wraps one with the same journal-replay resilience ``resilient``
    gives hand-built dial lists.
    """
    transport = ReconnectingTransport(
        pool.dial, policy=policy,
        op_deadline_seconds=op_deadline_seconds,
        name=name if name is not None else pool.name)
    transport.pool = pool
    return transport


def resilient(dials: Sequence[Callable[[], Any]],
              policy: Optional[RetryPolicy] = None,
              op_deadline_seconds: Optional[float] = None,
              name: str = "resilient") -> ReconnectingTransport:
    """A :class:`ReconnectingTransport` over one or more dial candidates.

    With several candidates the transport fails over through an
    :class:`EndpointPool`; with one it simply reconnects to it.
    """
    if len(dials) == 1:
        transport = ReconnectingTransport(
            dials[0], policy=policy,
            op_deadline_seconds=op_deadline_seconds, name=name)
        transport.pool = None
        return transport
    pool = EndpointPool(dials, name=name)
    transport = ReconnectingTransport(
        pool.dial, policy=policy,
        op_deadline_seconds=op_deadline_seconds, name=name)
    transport.pool = pool
    return transport


__all__ = [
    "RetryPolicy",
    "Deadline",
    "EndpointPool",
    "ReconnectingTransport",
    "resilient",
    "resilient_pool",
]
