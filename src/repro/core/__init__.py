"""The paper's contribution: ZLTP (§2) and the lightweb architecture (§3-4).

- :mod:`repro.core.zltp` — the zero-leakage transfer protocol: sessions,
  mode negotiation, and the single private-GET operation.
- :mod:`repro.core.lightweb` — universes, publishers, CDNs and the browser
  built on top of ZLTP.
"""
