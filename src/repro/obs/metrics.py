"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One process-wide :data:`REGISTRY` collects the repo's operational
numbers — queries served per mode, bytes up/down, scan-engine fan-outs,
scan-latency distributions — and snapshots them as JSON
(:meth:`MetricsRegistry.as_dict`) or a Prometheus-style text exposition
(:meth:`MetricsRegistry.render_text`) for the ``lightweb stats``
subcommand and the TCP stats endpoint.

Two zero-leakage properties are structural here, not conventions:

* **Histogram buckets are fixed a priori.** A histogram that adapted its
  bucket boundaries to observed values would encode the distribution of
  client behaviour into the exposition format itself — boundary values
  become a side channel. Buckets are chosen once, at declaration time,
  from public engineering knowledge only.
* **Label values must be public.** The ``telemetry-leak`` analyzer rule
  flags any ``inc``/``set``/``observe``/``labels`` call whose arguments
  are secret-tainted, so a per-label-value series can never be keyed by
  a client secret (which would turn series cardinality into a query
  log).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default latency buckets (seconds) — fixed a priori; see module docstring.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]
        return {"kind": self.kind, "help": self.help, "series": series}

    def render_text(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        with self._lock:
            for key, value in sorted(self._series.items()):
                lines.append(f"{self.name}{_render_labels(key)} {value:g}")
        return lines


class Gauge:
    """A value that can go up and down (queue depth, worker count)."""

    kind = "gauge"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, float] = {}  # guarded-by: _lock

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]
        return {"kind": self.kind, "help": self.help, "series": series}

    def render_text(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        with self._lock:
            for key, value in sorted(self._series.items()):
                lines.append(f"{self.name}{_render_labels(key)} {value:g}")
        return lines


class Histogram:
    """Fixed-boundary histogram with Prometheus ``le`` (≤) semantics.

    A value equal to a boundary lands in that boundary's bucket; values
    above the last boundary land in the implicit +Inf overflow bucket.
    Boundaries are immutable after construction (see module docstring
    for why data-dependent buckets are forbidden).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS):
        if not buckets:
            raise ReproError(f"histogram {name} needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ReproError(
                f"histogram {name} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        # Per label-set: [bucket counts (+overflow)], sum, count.
        self._series: Dict[LabelKey, Dict[str, Any]] = {}  # guarded-by: _lock

    def observe(self, value: float, **labels: Any) -> None:
        v = float(value)
        # le semantics: bisect_left puts v == bound into bound's bucket;
        # index == len(bounds) is the +Inf overflow bucket.
        idx = bisect_left(self.bounds, v)
        key = _label_key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = {"counts": [0] * (len(self.bounds) + 1),
                        "sum": 0.0, "count": 0}
                self._series[key] = cell
            cell["counts"][idx] += 1
            cell["sum"] += v
            cell["count"] += 1

    def snapshot(self, **labels: Any) -> Dict[str, Any]:
        """Bucket counts, sum, and count for one label set."""
        with self._lock:
            cell = self._series.get(_label_key(labels))
            if cell is None:
                return {"counts": [0] * (len(self.bounds) + 1),
                        "sum": 0.0, "count": 0}
            return {"counts": list(cell["counts"]),
                    "sum": cell["sum"], "count": cell["count"]}

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {
                    "labels": dict(key),
                    "counts": list(cell["counts"]),
                    "sum": cell["sum"],
                    "count": cell["count"],
                }
                for key, cell in sorted(self._series.items())
            ]
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.bounds),
            "series": series,
        }

    def render_text(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        with self._lock:
            for key, cell in sorted(self._series.items()):
                cumulative = 0
                for bound, n in zip(self.bounds, cell["counts"]):
                    cumulative += n
                    le = _render_labels(key, f'le="{bound:g}"')
                    lines.append(f"{self.name}_bucket{le} {cumulative}")
                cumulative += cell["counts"][-1]
                le = _render_labels(key, 'le="+Inf"')
                lines.append(f"{self.name}_bucket{le} {cumulative}")
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} {cell['sum']:g}")
                lines.append(
                    f"{self.name}_count{_render_labels(key)} {cell['count']}")
        return lines


class MetricsRegistry:
    """Named collection of metrics with get-or-create declaration.

    Re-declaring a name returns the existing instrument if the kind
    matches (so modules can declare at import or first use without
    ordering constraints) and raises if it does not.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}  # guarded-by: _lock

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ReproError(
                        f"metric {name} already registered as {existing.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.as_dict() for name, metric in sorted(metrics)}

    def render_text(self) -> str:
        """Prometheus-style text exposition of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        lines: List[str] = []
        for _, metric in sorted(metrics):
            lines.extend(metric.render_text())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._metrics.clear()


#: Process-wide default registry, exposed by ``lightweb stats``.
REGISTRY = MetricsRegistry()


def record_request_stats(mode: str, delta, registry: Optional[MetricsRegistry] = None) -> None:
    """Fold one per-request ``RequestStats`` delta into the registry.

    Called by the ZLTP server at the protocol layer — the single point
    where every backend's per-request accounting already flows — so the
    registry view and ``ScanExecutor.backend_report()`` reconcile by
    construction. ``mode`` is a public wire identifier.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "zltp_queries_total", "PIR queries answered, by backend mode",
    ).inc(delta.queries, mode=mode)
    reg.counter(
        "zltp_bytes_up_total", "Request payload bytes received, by mode",
    ).inc(delta.bytes_up, mode=mode)
    reg.counter(
        "zltp_bytes_down_total", "Answer payload bytes sent, by mode",
    ).inc(delta.bytes_down, mode=mode)
    reg.histogram(
        "zltp_scan_seconds", "Server-side answer wall time, by mode",
    ).observe(delta.scan_seconds, mode=mode)


def record_fanout(tasks: int, wall_seconds: float, busy_seconds: float,
                  registry: Optional[MetricsRegistry] = None) -> None:
    """Record one scan-engine fan-out (task count and wall/busy time)."""
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "engine_fanouts_total", "Parallel fan-outs dispatched by ScanExecutor",
    ).inc(1)
    reg.counter(
        "engine_tasks_total", "Tasks executed across all fan-outs",
    ).inc(tasks)
    reg.histogram(
        "engine_fanout_wall_seconds", "Wall time per fan-out",
    ).observe(wall_seconds)
    reg.counter(
        "engine_busy_seconds_total", "Summed worker busy time across fan-outs",
    ).inc(busy_seconds)


def record_retry(layer: str,
                 registry: Optional[MetricsRegistry] = None) -> None:
    """Count one retry attempt at a resilience layer.

    ``layer`` is a public structural label (``"transport"``,
    ``"engine"``, ``"browser"``) — never derived from request contents;
    retries are triggered only by public failure events.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "resilience_retries_total", "Retry attempts, by resilience layer",
    ).inc(1, layer=layer)


def record_reconnect(outcome: str,
                     registry: Optional[MetricsRegistry] = None) -> None:
    """Count one transport reconnection attempt's outcome.

    ``outcome`` is one of the fixed labels ``"ok"``, ``"failed"``, or
    ``"deadline"`` — public connection-level events only.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "transport_reconnects_total", "Transport reconnections, by outcome",
    ).inc(1, outcome=outcome)


def record_failover(layer: str,
                    registry: Optional[MetricsRegistry] = None) -> None:
    """Count one failover to a sibling endpoint or worker."""
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "resilience_failovers_total", "Failovers to a sibling, by layer",
    ).inc(1, layer=layer)


def record_announce(outcome: str,
                    registry: Optional[MetricsRegistry] = None) -> None:
    """Count one directory announce by outcome.

    ``outcome`` is one of the fixed labels ``"ok"``, ``"rejected"``
    (signature failure), or ``"stale"`` (generation raced backwards) —
    control-plane events about public server topology only.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "discovery_announces_total", "Directory announces, by outcome",
    ).inc(1, outcome=outcome)


def record_resolve(source: str, seconds: Optional[float] = None,
                   registry: Optional[MetricsRegistry] = None) -> None:
    """Count one capability resolve by where the answer came from.

    ``source`` is one of the fixed labels ``"directory"`` (live answer),
    ``"cache"`` (directory down, TTL-grace fallback), or ``"failed"``
    (no answer at all). Queries are structural — universe/kind/mode —
    never per-fetch, so nothing here can key on what a client is reading.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "discovery_resolves_total", "Capability resolves, by answer source",
    ).inc(1, source=source)
    if seconds is not None:
        reg.histogram(
            "discovery_resolve_seconds", "Wall time per capability resolve",
        ).observe(seconds)


def record_rediscovery(registry: Optional[MetricsRegistry] = None) -> None:
    """Count one pool refresh that re-resolved endpoints via discovery
    (every pooled candidate was dead and the directory supplied more)."""
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "discovery_rediscoveries_total",
        "Endpoint pools refreshed by re-resolving through discovery",
    ).inc(1)


def record_truncated_frame(registry: Optional[MetricsRegistry] = None) -> None:
    """Count one connection that died mid-frame (a partial frame was
    left in its decoder).

    A connection-level event — nothing about frame *contents* is
    recorded, only that a stream ended on a frame boundary violation.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "zltp_truncated_frames_total",
        "Connections that closed with a partial frame buffered",
    ).inc(1)


def record_active_sessions(server_kind: str, active: int,
                           registry: Optional[MetricsRegistry] = None) -> None:
    """Gauge the live ZLTP session count for one server flavour.

    ``server_kind`` is a fixed structural label (``"threaded"``,
    ``"eventloop"``); the count is aggregate concurrency, never anything
    per-session.
    """
    reg = registry if registry is not None else REGISTRY
    reg.gauge(
        "zltp_active_sessions", "Live ZLTP sessions, by server kind",
    ).set(active, server=server_kind)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_SECONDS_BUCKETS",
    "record_request_stats",
    "record_fanout",
    "record_retry",
    "record_reconnect",
    "record_failover",
    "record_announce",
    "record_resolve",
    "record_rediscovery",
    "record_truncated_frame",
    "record_active_sessions",
]
