"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One process-wide :data:`REGISTRY` collects the repo's operational
numbers — queries served per mode, bytes up/down, scan-engine fan-outs,
scan-latency distributions — and snapshots them as JSON
(:meth:`MetricsRegistry.as_dict`) or a Prometheus-style text exposition
(:meth:`MetricsRegistry.render_text`) for the ``lightweb stats``
subcommand and the TCP stats endpoint.

Two zero-leakage properties are structural here, not conventions:

* **Histogram buckets are fixed a priori.** A histogram that adapted its
  bucket boundaries to observed values would encode the distribution of
  client behaviour into the exposition format itself — boundary values
  become a side channel. Buckets are chosen once, at declaration time,
  from public engineering knowledge only.
* **Label values must be public.** The ``telemetry-leak`` analyzer rule
  flags any ``inc``/``set``/``observe``/``labels`` call whose arguments
  are secret-tainted, so a per-label-value series can never be keyed by
  a client secret (which would turn series cardinality into a query
  log).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default latency buckets (seconds) — fixed a priori; see module docstring.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]
        return {"kind": self.kind, "help": self.help, "series": series}

    def render_text(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        with self._lock:
            for key, value in sorted(self._series.items()):
                lines.append(f"{self.name}{_render_labels(key)} {value:g}")
        return lines


class Gauge:
    """A value that can go up and down (queue depth, worker count)."""

    kind = "gauge"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, float] = {}  # guarded-by: _lock

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]
        return {"kind": self.kind, "help": self.help, "series": series}

    def render_text(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        with self._lock:
            for key, value in sorted(self._series.items()):
                lines.append(f"{self.name}{_render_labels(key)} {value:g}")
        return lines


class Histogram:
    """Fixed-boundary histogram with Prometheus ``le`` (≤) semantics.

    A value equal to a boundary lands in that boundary's bucket; values
    above the last boundary land in the implicit +Inf overflow bucket.
    Boundaries are immutable after construction (see module docstring
    for why data-dependent buckets are forbidden).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS):
        if not buckets:
            raise ReproError(f"histogram {name} needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ReproError(
                f"histogram {name} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        # Per label-set: [bucket counts (+overflow)], sum, count.
        self._series: Dict[LabelKey, Dict[str, Any]] = {}  # guarded-by: _lock

    def observe(self, value: float, **labels: Any) -> None:
        v = float(value)
        # le semantics: bisect_left puts v == bound into bound's bucket;
        # index == len(bounds) is the +Inf overflow bucket.
        idx = bisect_left(self.bounds, v)
        key = _label_key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = {"counts": [0] * (len(self.bounds) + 1),
                        "sum": 0.0, "count": 0}
                self._series[key] = cell
            cell["counts"][idx] += 1
            cell["sum"] += v
            cell["count"] += 1

    def snapshot(self, **labels: Any) -> Dict[str, Any]:
        """Bucket counts, sum, and count for one label set."""
        with self._lock:
            cell = self._series.get(_label_key(labels))
            if cell is None:
                return {"counts": [0] * (len(self.bounds) + 1),
                        "sum": 0.0, "count": 0}
            return {"counts": list(cell["counts"]),
                    "sum": cell["sum"], "count": cell["count"]}

    def merge_cells(self, series: Sequence[Dict[str, Any]]) -> None:
        """Add snapshot series cells into this histogram's live counts.

        Callers must have validated the bucket layout against
        :attr:`bounds`; cells whose count arrays disagree in length are
        rejected here as a backstop.
        """
        for cell in series:
            counts = cell["counts"]
            if len(counts) != len(self.bounds) + 1:
                raise ReproError(
                    f"cannot merge histogram {self.name}: cell has "
                    f"{len(counts)} buckets, expected {len(self.bounds) + 1}")
            key = _label_key(dict(cell["labels"]))
            with self._lock:
                mine = self._series.get(key)
                if mine is None:
                    mine = {"counts": [0] * (len(self.bounds) + 1),
                            "sum": 0.0, "count": 0}
                    self._series[key] = mine
                mine["counts"] = [a + b for a, b in zip(mine["counts"], counts)]
                mine["sum"] += cell["sum"]
                mine["count"] += cell["count"]

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {
                    "labels": dict(key),
                    "counts": list(cell["counts"]),
                    "sum": cell["sum"],
                    "count": cell["count"],
                }
                for key, cell in sorted(self._series.items())
            ]
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.bounds),
            "series": series,
        }

    def render_text(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        with self._lock:
            for key, cell in sorted(self._series.items()):
                cumulative = 0
                for bound, n in zip(self.bounds, cell["counts"]):
                    cumulative += n
                    le = _render_labels(key, f'le="{bound:g}"')
                    lines.append(f"{self.name}_bucket{le} {cumulative}")
                cumulative += cell["counts"][-1]
                le = _render_labels(key, 'le="+Inf"')
                lines.append(f"{self.name}_bucket{le} {cumulative}")
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} {cell['sum']:g}")
                lines.append(
                    f"{self.name}_count{_render_labels(key)} {cell['count']}")
        return lines


def _blank_series_cell(kind: str, buckets: Optional[List[float]]) -> Any:
    if kind == "histogram":
        return {"counts": [0] * (len(buckets or []) + 1), "sum": 0.0,
                "count": 0}
    return 0.0


def merge_into(dst: Dict[str, Any], src: Dict[str, Any]) -> Dict[str, Any]:
    """Fold one registry snapshot into another, in place.

    Snapshots are the JSON-ready form :meth:`MetricsRegistry.snapshot`
    returns — the same dicts ``/metrics.json`` serves — so the parent
    process merging worker snapshots and ``lightweb top`` merging fleet
    scrapes run the exact same code. Semantics per kind:

    * **counter / gauge**: per-label-set values are summed (a fleet
      gauge like active sessions is an aggregate across servers, so the
      sum *is* the fleet value).
    * **histogram**: bucket-wise count sums plus ``sum``/``count`` sums.
      Two histograms with different bucket layouts are rejected loudly
      (:class:`~repro.errors.ReproError`) — silently realigning buckets
      would fabricate a distribution nobody measured.

    A metric present in only one snapshot is copied through; merging an
    empty snapshot is the identity.

    Raises:
        ReproError: on a kind mismatch or a histogram bucket-layout
            mismatch for the same metric name.
    """
    for name, metric in src.items():
        into = dst.get(name)
        if into is None:
            dst[name] = {
                "kind": metric["kind"],
                "help": metric.get("help", ""),
                **({"buckets": list(metric["buckets"])}
                   if metric["kind"] == "histogram" else {}),
                "series": [dict(cell, labels=dict(cell["labels"]))
                           for cell in metric.get("series", [])],
            }
            continue
        if into["kind"] != metric["kind"]:
            raise ReproError(
                f"cannot merge metric {name}: kind {metric['kind']} vs "
                f"{into['kind']}")
        if metric["kind"] == "histogram" and \
                list(into.get("buckets", [])) != list(metric.get("buckets", [])):
            raise ReproError(
                f"cannot merge histogram {name}: bucket layouts differ "
                f"({into.get('buckets')} vs {metric.get('buckets')})")
        by_labels = {_label_key(cell["labels"]): cell
                     for cell in into["series"]}
        for cell in metric.get("series", []):
            key = _label_key(cell["labels"])
            mine = by_labels.get(key)
            if mine is None:
                mine = {"labels": dict(cell["labels"])}
                if metric["kind"] == "histogram":
                    mine.update(_blank_series_cell("histogram",
                                                   metric.get("buckets")))
                else:
                    mine["value"] = 0.0
                into["series"].append(mine)
                by_labels[key] = mine
            if metric["kind"] == "histogram":
                if len(mine["counts"]) != len(cell["counts"]):
                    raise ReproError(
                        f"cannot merge histogram {name}: bucket counts "
                        f"differ in length")
                mine["counts"] = [a + b for a, b in zip(mine["counts"],
                                                        cell["counts"])]
                mine["sum"] += cell["sum"]
                mine["count"] += cell["count"]
            else:
                mine["value"] += cell["value"]
        into["series"].sort(key=lambda cell: _label_key(cell["labels"]))
    return dst


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge registry snapshots into one (see :func:`merge_into`)."""
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        merge_into(merged, snap)
    return merged


def relabel_snapshot(snap: Dict[str, Any], **labels: Any) -> Dict[str, Any]:
    """A copy of ``snap`` with fixed labels added to every series.

    This is how cross-process aggregation stays attributable: the parent
    stamps each worker's snapshot with ``worker=<index>`` (and a fleet
    scraper could stamp ``server=<id>``) before merging, so the merged
    view still breaks down by origin. Label *names* must come from a
    fixed a-priori set (worker index, server id — deployment topology,
    never request contents); the ``telemetry-leak`` rule applies to
    relabels exactly as it does to ``inc``/``observe`` calls.
    """
    fixed = {k: str(v) for k, v in labels.items()}
    out: Dict[str, Any] = {}
    for name, metric in snap.items():
        copied = {k: (list(v) if isinstance(v, list) else v)
                  for k, v in metric.items() if k != "series"}
        copied["series"] = [
            dict(cell, labels={**dict(cell["labels"]), **fixed})
            for cell in metric.get("series", [])
        ]
        out[name] = copied
    return out


def render_snapshot_text(snap: Dict[str, Any]) -> str:
    """Prometheus-style text exposition of a snapshot dict.

    The registry's own :meth:`MetricsRegistry.render_text` renders live
    instruments; this renders the *snapshot* form, so merged views (a
    parent registry plus worker snapshots, or a whole scraped fleet)
    expose identically to a single process.
    """
    lines: List[str] = []
    for name, metric in sorted(snap.items()):
        lines.append(f"# HELP {name} {metric.get('help', '')}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        series = sorted(metric.get("series", []),
                        key=lambda cell: _label_key(cell["labels"]))
        if metric["kind"] == "histogram":
            bounds = metric.get("buckets", [])
            for cell in series:
                key = _label_key(cell["labels"])
                cumulative = 0
                for bound, n in zip(bounds, cell["counts"]):
                    cumulative += n
                    le = _render_labels(key, f'le="{bound:g}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += cell["counts"][-1]
                le = _render_labels(key, 'le="+Inf"')
                lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(f"{name}_sum{_render_labels(key)} {cell['sum']:g}")
                lines.append(
                    f"{name}_count{_render_labels(key)} {cell['count']}")
        else:
            for cell in series:
                labels = _render_labels(_label_key(cell["labels"]))
                lines.append(f"{name}{labels} {cell['value']:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_total(snap: Dict[str, Any], name: str,
                   field: str = "value") -> float:
    """Sum one metric's series across every label set in a snapshot.

    For counters/gauges ``field`` is ``"value"``; for histograms pass
    ``"sum"`` (total observed seconds) or ``"count"`` (observations).
    Missing metrics total 0.0 — load derivation must not fail on a
    server that has not scanned yet.
    """
    metric = snap.get(name)
    if metric is None:
        return 0.0
    return float(sum(cell.get(field, 0.0)
                     for cell in metric.get("series", [])))


class MetricsRegistry:
    """Named collection of metrics with get-or-create declaration.

    Re-declaring a name returns the existing instrument if the kind
    matches (so modules can declare at import or first use without
    ordering constraints) and raises if it does not.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}  # guarded-by: _lock

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ReproError(
                        f"metric {name} already registered as {existing.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.as_dict() for name, metric in sorted(metrics)}

    def snapshot(self) -> Dict[str, Any]:
        """The registry's mergeable snapshot (see :func:`merge_into`).

        Identical to :meth:`as_dict` — named separately because this is
        the cross-process wire format: workers flush it over their
        result pipe, parents merge it, and fleet scrapers merge whole
        servers' worth of it.
        """
        return self.as_dict()

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold a snapshot's series into this registry's live instruments.

        Counters/gauges are bumped by the snapshot's per-label-set
        values; histograms get their bucket counts added cell-wise.
        Mismatched kinds or bucket layouts are rejected loudly, exactly
        like :func:`merge_into`.

        Raises:
            ReproError: on kind or bucket-layout mismatch.
        """
        for name, metric in snap.items():
            kind = metric.get("kind")
            if kind == "counter":
                counter = self.counter(name, metric.get("help", ""))
                for cell in metric.get("series", []):
                    counter.inc(cell["value"], **dict(cell["labels"]))
            elif kind == "gauge":
                gauge = self.gauge(name, metric.get("help", ""))
                for cell in metric.get("series", []):
                    gauge.add(cell["value"], **dict(cell["labels"]))
            elif kind == "histogram":
                hist = self.histogram(name, metric.get("help", ""),
                                      buckets=metric.get(
                                          "buckets",
                                          DEFAULT_SECONDS_BUCKETS))
                if list(hist.bounds) != list(metric.get("buckets", [])):
                    raise ReproError(
                        f"cannot merge histogram {name}: bucket layouts "
                        f"differ ({list(hist.bounds)} vs "
                        f"{metric.get('buckets')})")
                hist.merge_cells(metric.get("series", []))
            else:
                raise ReproError(
                    f"cannot merge metric {name}: unknown kind {kind!r}")

    def render_text(self) -> str:
        """Prometheus-style text exposition of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        lines: List[str] = []
        for _, metric in sorted(metrics):
            lines.extend(metric.render_text())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._metrics.clear()


#: Process-wide default registry, exposed by ``lightweb stats``.
REGISTRY = MetricsRegistry()


def record_request_stats(mode: str, delta, registry: Optional[MetricsRegistry] = None) -> None:
    """Fold one per-request ``RequestStats`` delta into the registry.

    Called by the ZLTP server at the protocol layer — the single point
    where every backend's per-request accounting already flows — so the
    registry view and ``ScanExecutor.backend_report()`` reconcile by
    construction. ``mode`` is a public wire identifier.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "zltp_queries_total", "PIR queries answered, by backend mode",
    ).inc(delta.queries, mode=mode)
    reg.counter(
        "zltp_bytes_up_total", "Request payload bytes received, by mode",
    ).inc(delta.bytes_up, mode=mode)
    reg.counter(
        "zltp_bytes_down_total", "Answer payload bytes sent, by mode",
    ).inc(delta.bytes_down, mode=mode)
    reg.histogram(
        "zltp_scan_seconds", "Server-side answer wall time, by mode",
    ).observe(delta.scan_seconds, mode=mode)


def record_fanout(tasks: int, wall_seconds: float, busy_seconds: float,
                  registry: Optional[MetricsRegistry] = None) -> None:
    """Record one scan-engine fan-out (task count and wall/busy time)."""
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "engine_fanouts_total", "Parallel fan-outs dispatched by ScanExecutor",
    ).inc(1)
    reg.counter(
        "engine_tasks_total", "Tasks executed across all fan-outs",
    ).inc(tasks)
    reg.histogram(
        "engine_fanout_wall_seconds", "Wall time per fan-out",
    ).observe(wall_seconds)
    reg.counter(
        "engine_busy_seconds_total", "Summed worker busy time across fan-outs",
    ).inc(busy_seconds)


def record_retry(layer: str,
                 registry: Optional[MetricsRegistry] = None) -> None:
    """Count one retry attempt at a resilience layer.

    ``layer`` is a public structural label (``"transport"``,
    ``"engine"``, ``"browser"``) — never derived from request contents;
    retries are triggered only by public failure events.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "resilience_retries_total", "Retry attempts, by resilience layer",
    ).inc(1, layer=layer)


def record_reconnect(outcome: str,
                     registry: Optional[MetricsRegistry] = None) -> None:
    """Count one transport reconnection attempt's outcome.

    ``outcome`` is one of the fixed labels ``"ok"``, ``"failed"``, or
    ``"deadline"`` — public connection-level events only.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "transport_reconnects_total", "Transport reconnections, by outcome",
    ).inc(1, outcome=outcome)


def record_failover(layer: str,
                    registry: Optional[MetricsRegistry] = None) -> None:
    """Count one failover to a sibling endpoint or worker."""
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "resilience_failovers_total", "Failovers to a sibling, by layer",
    ).inc(1, layer=layer)


def record_announce(outcome: str,
                    registry: Optional[MetricsRegistry] = None) -> None:
    """Count one directory announce by outcome.

    ``outcome`` is one of the fixed labels ``"ok"``, ``"rejected"``
    (signature failure), or ``"stale"`` (generation raced backwards) —
    control-plane events about public server topology only.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "discovery_announces_total", "Directory announces, by outcome",
    ).inc(1, outcome=outcome)


def record_resolve(source: str, seconds: Optional[float] = None,
                   registry: Optional[MetricsRegistry] = None) -> None:
    """Count one capability resolve by where the answer came from.

    ``source`` is one of the fixed labels ``"directory"`` (live answer),
    ``"cache"`` (directory down, TTL-grace fallback), or ``"failed"``
    (no answer at all). Queries are structural — universe/kind/mode —
    never per-fetch, so nothing here can key on what a client is reading.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "discovery_resolves_total", "Capability resolves, by answer source",
    ).inc(1, source=source)
    if seconds is not None:
        reg.histogram(
            "discovery_resolve_seconds", "Wall time per capability resolve",
        ).observe(seconds)


def record_rediscovery(registry: Optional[MetricsRegistry] = None) -> None:
    """Count one pool refresh that re-resolved endpoints via discovery
    (every pooled candidate was dead and the directory supplied more)."""
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "discovery_rediscoveries_total",
        "Endpoint pools refreshed by re-resolving through discovery",
    ).inc(1)


def record_truncated_frame(registry: Optional[MetricsRegistry] = None) -> None:
    """Count one connection that died mid-frame (a partial frame was
    left in its decoder).

    A connection-level event — nothing about frame *contents* is
    recorded, only that a stream ended on a frame boundary violation.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "zltp_truncated_frames_total",
        "Connections that closed with a partial frame buffered",
    ).inc(1)


def record_admission(outcome: str, n: int = 1,
                     registry: Optional[MetricsRegistry] = None) -> None:
    """Count ``n`` queries through the admission gate by outcome.

    ``outcome`` is one of the fixed labels ``"admitted"`` or ``"shed"``
    — a decision driven only by aggregate queue depth and service-time
    estimates, never by request contents.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter(
        "admission_requests_total",
        "Queries through the admission gate, by outcome",
    ).inc(n, outcome=outcome)


def record_admission_queue_depth(depth: int,
                                 registry: Optional[MetricsRegistry] = None
                                 ) -> None:
    """Gauge the admission gate's admitted-and-unfinished query count."""
    reg = registry if registry is not None else REGISTRY
    reg.gauge(
        "admission_queue_depth",
        "Queries admitted and not yet finished",
    ).set(depth)


def record_active_sessions(server_kind: str, active: int,
                           registry: Optional[MetricsRegistry] = None) -> None:
    """Gauge the live ZLTP session count for one server flavour.

    ``server_kind`` is a fixed structural label (``"threaded"``,
    ``"eventloop"``); the count is aggregate concurrency, never anything
    per-session.
    """
    reg = registry if registry is not None else REGISTRY
    reg.gauge(
        "zltp_active_sessions", "Live ZLTP sessions, by server kind",
    ).set(active, server=server_kind)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_SECONDS_BUCKETS",
    "merge_into",
    "merge_snapshots",
    "relabel_snapshot",
    "render_snapshot_text",
    "snapshot_total",
    "record_request_stats",
    "record_fanout",
    "record_retry",
    "record_reconnect",
    "record_failover",
    "record_announce",
    "record_resolve",
    "record_rediscovery",
    "record_truncated_frame",
    "record_admission",
    "record_admission_queue_depth",
    "record_active_sessions",
]
