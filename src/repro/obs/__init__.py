"""repro.obs — zero-leakage observability: spans, metrics, structured logs.

Three pieces, one discipline:

* :mod:`repro.obs.trace` — ``with span("pir2.shard_scan", shard=i):``
  nested trace spans with cross-thread propagation, exportable as JSON.
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms in
  a process-wide :data:`REGISTRY`, exposed by ``lightweb stats``.
* :mod:`repro.obs.logs` — module loggers and JSON-lines log output.
* :mod:`repro.obs.flight` — bounded flight recorder of completed request
  trace trees, served at ``/debug/traces.json``.
* :mod:`repro.obs.fleet` — directory-driven fleet scraping behind
  ``lightweb top``.

The discipline: telemetry is an observable channel, so nothing
secret-tainted may flow into a span attribute, metric label/value, or
log field. The ``telemetry-leak`` rule in :mod:`repro.analysis`
enforces this statically as part of the tier-1 lint gate.
"""

from repro.obs.flight import (
    DEFAULT_SLOW_SECONDS,
    FlightRecorder,
)
from repro.obs.logs import (
    configure_console_logging,
    configure_json_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_into,
    merge_snapshots,
    record_failover,
    record_fanout,
    record_reconnect,
    record_request_stats,
    record_retry,
    relabel_snapshot,
    render_snapshot_text,
    snapshot_total,
)
from repro.obs.trace import (
    Span,
    SpanHandle,
    Tracer,
    current_span,
    span,
    tracer_active,
    tracing,
    use_span,
)

__all__ = [
    "span",
    "current_span",
    "use_span",
    "tracing",
    "Span",
    "SpanHandle",
    "Tracer",
    "tracer_active",
    "FlightRecorder",
    "DEFAULT_SLOW_SECONDS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "DEFAULT_SECONDS_BUCKETS",
    "merge_into",
    "merge_snapshots",
    "relabel_snapshot",
    "render_snapshot_text",
    "snapshot_total",
    "record_request_stats",
    "record_fanout",
    "record_retry",
    "record_reconnect",
    "record_failover",
    "get_logger",
    "configure_json_logging",
    "configure_console_logging",
]
