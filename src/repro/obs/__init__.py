"""repro.obs — zero-leakage observability: spans, metrics, structured logs.

Three pieces, one discipline:

* :mod:`repro.obs.trace` — ``with span("pir2.shard_scan", shard=i):``
  nested trace spans with cross-thread propagation, exportable as JSON.
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms in
  a process-wide :data:`REGISTRY`, exposed by ``lightweb stats``.
* :mod:`repro.obs.logs` — module loggers and JSON-lines log output.

The discipline: telemetry is an observable channel, so nothing
secret-tainted may flow into a span attribute, metric label/value, or
log field. The ``telemetry-leak`` rule in :mod:`repro.analysis`
enforces this statically as part of the tier-1 lint gate.
"""

from repro.obs.logs import (
    configure_console_logging,
    configure_json_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_failover,
    record_fanout,
    record_reconnect,
    record_request_stats,
    record_retry,
)
from repro.obs.trace import (
    Span,
    SpanHandle,
    Tracer,
    current_span,
    span,
    tracing,
    use_span,
)

__all__ = [
    "span",
    "current_span",
    "use_span",
    "tracing",
    "Span",
    "SpanHandle",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "DEFAULT_SECONDS_BUCKETS",
    "record_request_stats",
    "record_fanout",
    "record_retry",
    "record_reconnect",
    "record_failover",
    "get_logger",
    "configure_json_logging",
    "configure_console_logging",
]
