"""Fleet scraping: one merged metrics view of every announced server.

The directory (PR 8) knows every live endpoint; each endpoint's stats
sidecar serves a mergeable metrics snapshot (``/metrics.json``). This
module closes the loop: resolve the fleet, scrape every sidecar
concurrently with per-server timeouts, and fold the snapshots into one
fleet view with :func:`~repro.obs.metrics.merge_into` — the exact code
path the parent process already uses to fold its scan workers in, one
layer down.

Unreachable servers are first-class results, not exceptions: a fleet
scrape returns a ``DOWN`` row for a dead sidecar and merges whatever the
rest answered. Observability of a fleet must not have the fleet's
availability as a prerequisite.

Zero-leakage note: everything scraped here is what the sidecars already
expose — aggregate counters and fixed-bucket histograms under a-priori
label sets, plus the fixed ``server=<id>`` relabel stamped at merge
time. Server ids and stats ports are deployment topology from announce
records, the same public control-plane metadata clients resolve against.
"""

from __future__ import annotations

import json
import socket
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import TransportError
from repro.obs.metrics import (
    merge_into,
    relabel_snapshot,
    render_snapshot_text,
    snapshot_total,
)

_RECV_CHUNK = 65536

#: Announce-record attribute naming the endpoint's stats sidecar port.
STATS_PORT_ATTR = "stats_port"


def http_get(host: str, port: int, path: str,
             timeout: Optional[float] = 10.0) -> str:
    """GET one path from a stats sidecar; return the response body.

    Speaks exactly the HTTP/1.0 subset :class:`~repro.core.zltp.sockets.
    StatsTcpServer` serves. The status line is parsed and enforced — a
    sidecar's 500 (a raising snapshot) must surface as an error, never
    be mistaken for a valid exposition.

    Raises:
        TransportError: on connection failure, a malformed response, or
            a non-200 status.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
            )
            data = b""
            while True:
                chunk = sock.recv(_RECV_CHUNK)
                if not chunk:
                    break
                data += chunk
    except OSError as exc:
        raise TransportError(
            f"could not fetch {path} from {host}:{port}: {exc}") from exc
    head, sep, body = data.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", errors="replace")
    parts = status_line.split()
    if not sep or len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise TransportError(
            f"malformed response from {host}:{port}: {status_line!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise TransportError(
            f"malformed status line from {host}:{port}: "
            f"{status_line!r}") from exc
    if status != 200:
        raise TransportError(
            f"{host}:{port}{path} answered {status_line.split(' ', 1)[1]}")
    return body.decode("utf-8", errors="replace")


@dataclass(frozen=True)
class ScrapeTarget:
    """One stats sidecar to scrape.

    Attributes:
        server_id: display identity (one sidecar may front several
            logical listeners; the first announced id names it).
        host / port: where the sidecar listens.
        listeners: every announced server id sharing this sidecar.
    """

    server_id: str
    host: str
    port: int
    listeners: tuple = ()


def targets_from_records(records: Sequence[Any]) -> List[ScrapeTarget]:
    """Scrape targets from announce records, one per distinct sidecar.

    A deployment announces one record per listener (code/data × party)
    but runs a single stats sidecar, so records sharing
    ``attrs["stats_port"]`` on the same host collapse to one target.
    Records without a stats port (a deployment run without
    ``--stats-port``) are skipped — they have nothing to scrape.
    """
    by_addr: Dict[tuple, List[Any]] = {}
    order: List[tuple] = []
    for record in records:
        port = record.attrs.get(STATS_PORT_ATTR)
        if port is None:
            continue
        addr = (record.host, int(port))
        if addr not in by_addr:
            by_addr[addr] = []
            order.append(addr)
        by_addr[addr].append(record)
    targets = []
    for addr in order:
        group = sorted(by_addr[addr], key=lambda r: r.server_id)
        targets.append(ScrapeTarget(
            server_id=group[0].server_id, host=addr[0], port=addr[1],
            listeners=tuple(r.server_id for r in group)))
    return targets


@dataclass
class ServerScrape:
    """One target's scrape outcome: a stats snapshot, or why not.

    Attributes:
        target: the sidecar scraped.
        stats: the decoded ``/metrics.json`` snapshot (None when down).
        error: the failure description (None when up).
    """

    target: ScrapeTarget
    stats: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def up(self) -> bool:
        return self.stats is not None

    @property
    def metrics(self) -> Dict[str, Any]:
        """The scrape's mergeable metrics snapshot ({} when down)."""
        if self.stats is None:
            return {}
        metrics = self.stats.get("metrics")
        return metrics if isinstance(metrics, dict) else {}


@dataclass
class FleetSnapshot:
    """A whole fleet's scrape: per-server outcomes plus the merged view.

    Attributes:
        scrapes: one entry per target, in target order (``DOWN`` servers
            included, with their error).
        merged: every reachable server's metrics folded together, each
            series stamped ``server=<id>`` before merging so the fleet
            total still breaks down by origin.
    """

    scrapes: List[ServerScrape] = field(default_factory=list)
    merged: Dict[str, Any] = field(default_factory=dict)

    @property
    def up_count(self) -> int:
        return sum(1 for scrape in self.scrapes if scrape.up)

    @property
    def down_count(self) -> int:
        return len(self.scrapes) - self.up_count

    def total(self, name: str, field_name: str = "value") -> float:
        """Fleet-wide total of one merged metric (see
        :func:`~repro.obs.metrics.snapshot_total`)."""
        return snapshot_total(self.merged, name, field=field_name)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what ``lightweb top --json`` prints)."""
        return {
            "servers": [
                {
                    "server_id": scrape.target.server_id,
                    "host": scrape.target.host,
                    "port": scrape.target.port,
                    "listeners": list(scrape.target.listeners),
                    "up": scrape.up,
                    "error": scrape.error,
                    "stats": scrape.stats,
                }
                for scrape in self.scrapes
            ],
            "merged": self.merged,
        }


def scrape_server(target: ScrapeTarget,
                  timeout: Optional[float] = 2.0) -> ServerScrape:
    """Scrape one sidecar; a failure becomes a ``DOWN`` result."""
    try:
        body = http_get(target.host, target.port, "/metrics.json",
                        timeout=timeout)
        stats = json.loads(body)
        if not isinstance(stats, dict):
            raise TransportError(
                f"{target.host}:{target.port} returned non-object stats")
    except (TransportError, json.JSONDecodeError) as exc:
        return ServerScrape(target=target, error=str(exc))
    return ServerScrape(target=target, stats=stats)


def scrape_fleet(targets: Sequence[ScrapeTarget],
                 timeout: Optional[float] = 2.0) -> FleetSnapshot:
    """Scrape every target concurrently and merge what answered.

    One thread per target (a fleet scrape is a handful of sockets, and
    the per-server timeout must not serialise: a dead server costs one
    timeout, not one per position in line).
    """
    fleet = FleetSnapshot()
    if not targets:
        return fleet
    with ThreadPoolExecutor(max_workers=len(targets),
                            thread_name_prefix="fleet-scrape") as pool:
        fleet.scrapes = list(pool.map(
            lambda target: scrape_server(target, timeout=timeout), targets))
    for scrape in fleet.scrapes:
        if scrape.up:
            merge_into(fleet.merged,
                       relabel_snapshot(scrape.metrics,
                                        server=scrape.target.server_id))
    return fleet


def render_fleet(fleet: FleetSnapshot, metrics_text: bool = False) -> str:
    """Human-readable fleet summary: per-server rows, then fleet totals.

    Args:
        fleet: the scrape to render.
        metrics_text: also append the merged snapshot's full
            Prometheus-style exposition.
    """
    lines: List[str] = []
    header = (f"{'SERVER':<36} {'STATE':<6} {'SESSIONS':>8} "
              f"{'GETS':>8} {'SCANS':>8} {'SCAN-S':>9}")
    lines.append(header)
    for scrape in fleet.scrapes:
        target = scrape.target
        label = f"{target.server_id} ({target.host}:{target.port})"
        if not scrape.up:
            lines.append(f"{label:<36} {'DOWN':<6} {'-':>8} {'-':>8} "
                         f"{'-':>8} {'-':>9}  {scrape.error}")
            continue
        stats = scrape.stats or {}
        metrics = scrape.metrics
        scans = snapshot_total(metrics, "procpool_scans_total")
        scan_s = snapshot_total(metrics, "procpool_scan_seconds",
                                field="sum")
        lines.append(
            f"{label:<36} {'UP':<6} "
            f"{stats.get('sessions_opened', 0):>8} "
            f"{stats.get('gets_served', 0):>8} "
            f"{scans:>8.0f} {scan_s:>9.3f}")
    lines.append("")
    lines.append(
        f"fleet: {fleet.up_count} up, {fleet.down_count} down; "
        f"worker scans {fleet.total('procpool_scans_total'):.0f}, "
        f"worker scan seconds "
        f"{fleet.total('procpool_scan_seconds', 'sum'):.3f}")
    if metrics_text:
        lines.append("")
        lines.append(render_snapshot_text(fleet.merged).rstrip("\n"))
    return "\n".join(lines)


__all__ = [
    "STATS_PORT_ATTR",
    "http_get",
    "ScrapeTarget",
    "targets_from_records",
    "ServerScrape",
    "FleetSnapshot",
    "scrape_server",
    "scrape_fleet",
    "render_fleet",
]
