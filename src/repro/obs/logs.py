"""Structured logging for repro: module loggers and JSON-lines output.

All of ``repro`` logs through the stdlib ``logging`` tree rooted at the
``"repro"`` logger — modules call :func:`get_logger` with their
``__name__`` and never print. The CLI chooses the rendering:
:func:`configure_console_logging` for humans, or
:func:`configure_json_logging` (``lightweb serve --log-json``) which
emits exactly one JSON object per line so log shippers can parse the
stream without heuristics.

The same zero-leakage discipline as spans and metrics applies: log
fields are an observable channel, so the ``telemetry-leak`` analyzer
rule flags ``logger.info(...)``-style calls whose arguments are
secret-tainted.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Dict, Optional, TextIO

ROOT_LOGGER_NAME = "repro"

# Attributes present on every LogRecord (plus formatter artefacts);
# anything else was passed via extra= and belongs in the JSON object.
_RESERVED = set(vars(logging.makeLogRecord({}))) | {"message", "asctime"}


def get_logger(name: str) -> logging.Logger:
    """Module logger under the ``repro`` tree (accepts any module name)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonLineFormatter(logging.Formatter):
    """Render each record as one JSON object on one line.

    Keys: ``ts`` (unix seconds), ``level``, ``logger``, ``message``,
    any ``extra=`` fields verbatim, and ``exc`` when an exception is
    attached.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


class ConsoleFormatter(logging.Formatter):
    """Human-oriented single-line rendering with extras appended."""

    def format(self, record: logging.LogRecord) -> str:
        ts = time.strftime("%H:%M:%S", time.localtime(record.created))
        extras = " ".join(
            f"{key}={value!r}"
            for key, value in record.__dict__.items()
            if key not in _RESERVED and not key.startswith("_")
        )
        line = f"{ts} {record.levelname.lower():<7} {record.name}: {record.getMessage()}"
        if extras:
            line = f"{line} [{extras}]"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def _install_handler(formatter: logging.Formatter,
                     stream: Optional[TextIO],
                     level: int) -> logging.Handler:
    root = logging.getLogger(ROOT_LOGGER_NAME)
    # Idempotent: replace any handler a previous configure_* call added,
    # so reconfiguring (tests, repeated serve invocations) never stacks
    # duplicate output lines.
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(formatter)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler


def configure_json_logging(stream: Optional[TextIO] = None,
                           level: int = logging.INFO) -> logging.Handler:
    """Emit one JSON object per line on ``stream`` (default stderr)."""
    return _install_handler(JsonLineFormatter(), stream, level)


def configure_console_logging(stream: Optional[TextIO] = None,
                              level: int = logging.INFO) -> logging.Handler:
    """Emit human-readable single-line records on ``stream`` (default stderr)."""
    return _install_handler(ConsoleFormatter(), stream, level)


__all__ = [
    "get_logger",
    "JsonLineFormatter",
    "ConsoleFormatter",
    "configure_json_logging",
    "configure_console_logging",
    "ROOT_LOGGER_NAME",
]
