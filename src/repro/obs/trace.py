"""Trace spans: follow one private GET through every layer as a tree.

The paper's performance story (§4–§5) is an accounting of *where* a
request's time goes — DPF evaluation vs. scan vs. network. This module
replaces the ad-hoc ``time.perf_counter()`` pairs that used to measure
those phases with one primitive::

    with span("pir2.shard_scan", shard=k) as sp:
        share = database.xor_scan(bits)
    report.scan_seconds = sp.elapsed

``span`` *always* times (``sp.elapsed`` is valid whether or not anyone is
tracing), so the existing accounting — :class:`~repro.core.backend.
RequestStats`, :class:`~repro.pir.sharding.ShardReport`, the engine
counters — keeps reading the same numbers it always did. When a
:class:`Tracer` is active, each span additionally becomes a node in a
tree: nesting follows a ``contextvars`` context within a thread, and
crosses thread boundaries explicitly (the scan engine captures
:func:`current_span` before submitting to its pool and re-enters it in
the worker via :func:`use_span`). The result is one exportable JSON tree
per request: client → ZLTP session → backend dispatch → scan engine →
shard scan.

Zero-leakage rule (enforced by the ``telemetry-leak`` analyzer rule):
span names and attributes must never carry secret-tainted values — a
span attribute is an observable channel exactly like a wire message.
Shard indices, byte totals of fixed-size payloads, mode names, and batch
counts are public by the protocol's own design (§2.1); queried slots,
keys, and record contents are not.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ReproError

#: The innermost open span *node* of the current execution context.
_current_span: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: A per-execution-context tracer (the flight recorder's collection
#: path). Unlike the process-wide tracer it is not exclusive: many
#: requests can each carry their own context tracer concurrently.
_context_tracer: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_obs_context_tracer", default=None
)

_tracer_lock = threading.Lock()
_active_tracer: Optional["Tracer"] = None  # guarded-by: _tracer_lock


class Span:
    """One node of a trace tree: a named, timed operation with attributes.

    Attributes:
        name: dotted span name from the taxonomy (DESIGN.md).
        attrs: public, non-secret key/value annotations.
        wall_seconds: elapsed wall time, set when the span closes.
        children: sub-spans, in completion order.
    """

    __slots__ = ("name", "attrs", "wall_seconds", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.wall_seconds: float = 0.0
        # Mutated only by Tracer.attach under the owning tracer's _lock
        # (worker threads close child spans concurrently).
        self.children: List["Span"] = []

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form of this span and its whole subtree."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "wall_seconds": self.wall_seconds,
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.wall_seconds * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class SpanHandle:
    """What ``with span(...)`` yields: timing always, a tree node if tracing.

    Attributes:
        name: the span name.
        elapsed: wall seconds, valid once the ``with`` block exits (0.0
            while still open).
        node: the attached :class:`Span`, or None when no tracer is
            active.
    """

    __slots__ = ("name", "elapsed", "node")

    def __init__(self, name: str, node: Optional[Span]):
        self.name = name
        self.elapsed: float = 0.0
        self.node = node

    def annotate(self, **attrs: Any) -> None:
        """Attach public attributes to the span (no-op when not tracing).

        Never pass secret-derived values; the ``telemetry-leak`` lint
        rule flags call sites that do.
        """
        if self.node is not None:
            self.node.attrs.update(attrs)


class Tracer:
    """Collects finished spans into per-request trees.

    One tracer is installed process-wide (server connection threads and
    engine workers must all see it, so a contextvar alone cannot carry
    the activation). Attachment is thread-safe; roots are spans that
    closed with no enclosing span in their context.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.roots: List[Span] = []  # guarded-by: _lock

    def attach(self, node: Span, parent: Optional[Span]) -> None:
        """File a closed span under its parent (or as a new root)."""
        with self._lock:
            if parent is None:
                self.roots.append(node)
            else:
                parent.children.append(node)

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as the process-wide collector.

        Raises:
            ReproError: if another tracer is already active (traces from
                unrelated requests would interleave silently).
        """
        global _active_tracer
        with _tracer_lock:
            if _active_tracer is not None:
                raise ReproError("a tracer is already active")
            _active_tracer = self
        try:
            yield self
        finally:
            with _tracer_lock:
                _active_tracer = None

    @contextmanager
    def activate_context(self) -> Iterator["Tracer"]:
        """Install this tracer for the current execution context only.

        The non-exclusive sibling of :meth:`activate`: spans opened
        while the context is entered attach here, without touching the
        process-wide tracer slot — so many concurrent requests (the
        flight recorder's per-request captures) can each collect their
        own tree. A process-wide tracer, when one *is* active, takes
        precedence in :func:`span`, so debug tracing sees every span
        exactly as before.
        """
        token = _context_tracer.set(self)
        try:
            yield self
        finally:
            _context_tracer.reset(token)

    def export(self) -> List[Dict[str, Any]]:
        """The collected trees as JSON-ready dicts (roots in close order)."""
        with self._lock:
            roots = list(self.roots)
        return [root.as_dict() for root in roots]

    def export_json(self, indent: Optional[int] = None) -> str:
        """The collected trees serialised as a JSON array."""
        return json.dumps(self.export(), indent=indent)


@contextmanager
def tracing() -> Iterator[Tracer]:
    """Collect spans for the duration of the block: ``with tracing() as t:``."""
    tracer = Tracer()
    with tracer.activate():
        yield tracer


def tracer_active() -> bool:
    """Whether a *process-wide* tracer is currently installed.

    The flight recorder checks this before starting a per-request
    capture: when someone is globally tracing, captures step aside so
    the debug session's trees stay complete.
    """
    return _active_tracer is not None


def current_span() -> Optional[Span]:
    """The innermost open span node of this execution context, if any.

    Fan-out code captures this before handing work to another thread and
    re-enters it there with :func:`use_span`, so cross-thread children
    land under the right parent.
    """
    return _current_span.get()


@contextmanager
def use_span(node: Optional[Span]) -> Iterator[None]:
    """Adopt ``node`` as the current span (cross-thread propagation).

    Passing None is a no-op passthrough — the ambient context (which in
    the inline, same-thread case already holds the right parent) is left
    untouched.
    """
    if node is None:
        yield
        return
    token = _current_span.set(node)
    try:
        yield
    finally:
        _current_span.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[SpanHandle]:
    """Time a named operation; record it as a trace-tree node if tracing.

    The handle's ``elapsed`` is always populated when the block exits —
    including on exception — so accounting code can use spans without
    caring whether a tracer is active. Keyword arguments become span
    attributes; they must be public values (the ``telemetry-leak`` rule
    enforces this).
    """
    # Racy read by design: activation is rare, the hot path must not
    # take a lock per span. A span that misses a just-installed tracer
    # simply goes unrecorded; its timing is still returned to the caller.
    # The process-wide tracer wins over a context tracer so an active
    # debugging session sees every span; the context tracer (flight
    # recorder captures) only collects when nobody is globally tracing.
    tracer = _active_tracer
    if tracer is None:
        tracer = _context_tracer.get()
    if tracer is None:
        handle = SpanHandle(name, None)
        t0 = time.perf_counter()
        try:
            yield handle
        finally:
            handle.elapsed = time.perf_counter() - t0
        return
    node = Span(name, attrs)
    handle = SpanHandle(name, node)
    parent = _current_span.get()
    token = _current_span.set(node)
    t0 = time.perf_counter()
    try:
        yield handle
    except BaseException as exc:
        node.attrs["error"] = type(exc).__name__
        raise
    finally:
        handle.elapsed = time.perf_counter() - t0
        node.wall_seconds = handle.elapsed
        _current_span.reset(token)
        tracer.attach(node, parent)


__all__ = [
    "Span",
    "SpanHandle",
    "Tracer",
    "tracing",
    "span",
    "current_span",
    "tracer_active",
    "use_span",
]
