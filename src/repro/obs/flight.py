"""Flight recorder: a bounded ring of completed request trace trees.

Metrics answer "how is the fleet doing?"; the flight recorder answers
"show me the last request that was *slow*" — without anyone having had a
tracer attached in advance. Every served request is captured as a span
tree (via :meth:`~repro.obs.trace.Tracer.activate_context`, the
non-exclusive per-request collection path) and filed into three bounded
rings:

* ``recent`` — the last N requests, overwritten ring-style;
* ``slow``  — exemplars over the configured latency threshold, kept even
  as the recent ring churns (a p999 straggler survives the thousand fast
  requests that follow it);
* ``errored`` — exemplars whose tree carries an ``error`` attribute
  (the span context manager stamps one on any exception).

Zero-leakage argument (also in DESIGN.md): the recorder stores only what
spans already carry, and the ``telemetry-leak`` analyzer rule guarantees
span names and attributes are never secret-tainted — so a retained tree
describes *where time went* (mode, shard count, batch size, byte totals
of fixed-size payloads), never *what was fetched*. The retention rule
itself keys on public values only: wall time against a fixed a-priori
threshold, and the presence of an error — both observable to any on-path
adversary anyway. Capacities and the threshold are fixed at construction
(config, not data), so ring occupancy encodes nothing about content.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.trace import Span, Tracer, tracer_active

#: Default "slow" threshold — a private GET is a full database scan, so
#: hundreds of milliseconds is normal; over a quarter second is worth an
#: exemplar. Public engineering knowledge, fixed a priori.
DEFAULT_SLOW_SECONDS = 0.25


def _tree_errored(node: Span) -> bool:
    """Whether a span tree carries an ``error`` attribute anywhere."""
    if "error" in node.attrs:
        return True
    return any(_tree_errored(child) for child in node.children)


class FlightRecorder:
    """Bounded retention of completed root-span trees.

    Attributes:
        capacity: size of the ``recent`` ring.
        slow_threshold_seconds: root wall time at or above which a tree
            is also kept as a slow exemplar.
        exemplar_capacity: size of each of the ``slow``/``errored``
            rings.
        recorded / slow_kept / errors_kept: lifetime counters.
    """

    def __init__(self, capacity: int = 64,
                 slow_threshold_seconds: float = DEFAULT_SLOW_SECONDS,
                 exemplar_capacity: int = 16):
        self.capacity = int(capacity)
        self.slow_threshold_seconds = float(slow_threshold_seconds)
        self.exemplar_capacity = int(exemplar_capacity)
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=self.capacity)  # guarded-by: _lock
        self._slow: deque = deque(maxlen=self.exemplar_capacity)  # guarded-by: _lock
        self._errored: deque = deque(maxlen=self.exemplar_capacity)  # guarded-by: _lock
        self.recorded = 0  # guarded-by: _lock
        self.slow_kept = 0  # guarded-by: _lock
        self.errors_kept = 0  # guarded-by: _lock

    def record(self, root: Span) -> None:
        """File one completed root span tree into the rings."""
        slow = root.wall_seconds >= self.slow_threshold_seconds
        errored = _tree_errored(root)
        with self._lock:
            self._recent.append(root)
            self.recorded += 1
            if slow:
                self._slow.append(root)
                self.slow_kept += 1
            if errored:
                self._errored.append(root)
                self.errors_kept += 1

    @contextmanager
    def capture(self) -> Iterator[Optional[Tracer]]:
        """Collect every span closed inside the block as request trees.

        Yields the per-request tracer, or None when a process-wide
        tracer is active (debug tracing takes precedence; the capture
        steps aside rather than stealing its spans). Trees are filed
        even when the block raises — an errored request is exactly what
        the ``errored`` ring is for.
        """
        if tracer_active():
            yield None
            return
        tracer = Tracer()
        try:
            with tracer.activate_context():
                yield tracer
        finally:
            for root in tracer.roots:
                self.record(root)

    def export(self) -> Dict[str, Any]:
        """JSON-ready rings + counters (what ``/debug/traces.json`` serves)."""
        with self._lock:
            recent = [root.as_dict() for root in self._recent]
            slow = [root.as_dict() for root in self._slow]
            errored = [root.as_dict() for root in self._errored]
            counters = {
                "recorded": self.recorded,
                "slow_kept": self.slow_kept,
                "errors_kept": self.errors_kept,
            }
        return {
            "slow_threshold_seconds": self.slow_threshold_seconds,
            "capacity": self.capacity,
            "exemplar_capacity": self.exemplar_capacity,
            "counters": counters,
            "recent": recent,
            "slow": slow,
            "errored": errored,
        }

    def recent_roots(self) -> List[Span]:
        """The live recent ring, newest last (tests and tooling)."""
        with self._lock:
            return list(self._recent)


__all__ = ["FlightRecorder", "DEFAULT_SLOW_SECONDS"]
