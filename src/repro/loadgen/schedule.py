"""Turn browsing sessions into a timed request schedule for the harness.

The load generator replays the *same* workload model the billing and
leakage experiments use — :class:`~repro.workloads.sessions.
SessionGenerator`'s zipf-skewed, activity-windowed visits — instead of a
synthetic uniform arrival process. A day of visits per user is rescaled
onto the run window so the aggregate arrival rate matches the configured
offered load; the zipf target skew and the relative timing shape survive
the rescale, so the deployment sees realistic hot-page concentration, not
a flat scan.

Arrivals are **open-loop** (each request has a wall-clock due time derived
here, independent of how the server is doing), while each user drives them
**closed-loop** (one outstanding request; an overdue arrival is issued
immediately, never queued deeper). That split is what makes saturation
measurable: offered load keeps pressing, but no user floods the server
with an unbounded in-flight backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.workloads.sessions import BrowsingProfile, SessionGenerator, Visit


@dataclass(frozen=True)
class PlannedRequest:
    """One page-view request a user will issue.

    Attributes:
        time_seconds: due time, as an offset from the run start.
        site_index / page_index: the zipf-sampled visit target; the
            harness maps it onto database slots at request time (it needs
            the negotiated domain size).
    """

    time_seconds: float
    site_index: int
    page_index: int


@dataclass(frozen=True)
class UserSchedule:
    """One user's closed-loop request sequence, due times ascending."""

    user_index: int
    requests: Tuple[PlannedRequest, ...]


def _rescale(visits: List[Visit], n: int, duration_seconds: float,
             phase_seconds: float) -> List[PlannedRequest]:
    """Map the first ``n`` visits' timing shape onto the run window.

    Visits arrive ordered within each generated day; stacking days
    end-to-end keeps the combined sequence monotone, and the linear
    rescale preserves relative gaps (the morning-news burstiness §3.2
    cares about) while pinning the aggregate rate. ``phase_seconds``
    staggers the user's whole sequence so the population's first
    arrivals spread over one inter-arrival gap instead of herding at
    the run start.
    """
    taken = visits[:n]
    t0 = taken[0].time_seconds
    span = taken[-1].time_seconds - t0
    out = []
    for i, visit in enumerate(taken):
        if span <= 0:
            fraction = i / n
        else:
            # Scale into [0, duration * (n-1)/n] so the last request
            # still has ~one inter-arrival gap of run left to complete.
            fraction = (visit.time_seconds - t0) / span * (n - 1) / n
        out.append(PlannedRequest(
            time_seconds=fraction * duration_seconds + phase_seconds,
            site_index=visit.site_index,
            page_index=visit.page_index,
        ))
    return out


def build_schedules(n_users: int, offered_rps: float,
                    duration_seconds: float,
                    n_sites: int = 8, pages_per_site: int = 16,
                    profile: Optional[BrowsingProfile] = None,
                    seed: int = 0) -> List[UserSchedule]:
    """Per-user request schedules totalling ``offered_rps`` over the run.

    Each user gets an independent :class:`~repro.workloads.sessions.
    SessionGenerator` (seeded from ``seed`` and the user index, so the
    whole plan is deterministic), draws as many days of visits as the
    quota needs, and rescales them onto the run window.

    ``offered_rps`` counts *page views* (one pipelined ``get_slots``
    batch each), matching how the capacity planner's
    :func:`~repro.costmodel.capacity.peak_request_rate` counts GETs /
    ``gets_per_page``.

    Raises:
        ReproError: on a non-positive population, rate, or duration, or
            when the quota rounds to fewer than one request per user.
    """
    if n_users < 1:
        raise ReproError("need at least one user")
    if offered_rps <= 0 or duration_seconds <= 0:
        raise ReproError("offered_rps and duration_seconds must be positive")
    total = int(round(offered_rps * duration_seconds))
    if total < n_users:
        raise ReproError(
            f"offered load {offered_rps:g} rps x {duration_seconds:g}s is "
            f"{total} request(s) — fewer than one per user ({n_users}); "
            f"raise the load or shrink the population")
    base, extra = divmod(total, n_users)
    schedules: List[UserSchedule] = []
    for user in range(n_users):
        quota = base + (1 if user < extra else 0)
        generator = SessionGenerator(n_sites, pages_per_site,
                                     profile=profile,
                                     seed=seed * 10007 + user)
        visits: List[Visit] = []
        offset = 0.0
        while len(visits) < quota:
            day = generator.day()
            visits.extend(
                Visit(time_seconds=visit.time_seconds + offset,
                      site_index=visit.site_index,
                      page_index=visit.page_index)
                for visit in day)
            offset += 24 * 3600
        schedules.append(UserSchedule(
            user_index=user,
            requests=tuple(_rescale(
                visits, quota, duration_seconds,
                phase_seconds=(user / n_users) *
                (duration_seconds / quota))),
        ))
    return schedules


def total_requests(schedules: List[UserSchedule]) -> int:
    """Requests across every user's schedule."""
    return sum(len(schedule.requests) for schedule in schedules)


__all__ = ["PlannedRequest", "UserSchedule", "build_schedules",
           "total_requests"]
