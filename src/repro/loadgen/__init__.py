"""Closed-loop load generation against live lightweb deployments.

The missing measurement between the paper's per-request microbenchmarks
(§5.1) and its fleet cost arithmetic (§5.2): what a deployment actually
sustains. :mod:`repro.loadgen.schedule` turns the billing model's
browsing sessions into timed per-user request plans;
:mod:`repro.loadgen.harness` replays them with real discovery-resolved
clients under per-request deadlines and reports offered load, goodput,
shed count, and latency quantiles — the saturation curve the capacity
planner (:class:`~repro.costmodel.capacity.SaturationCurve`) calibrates
from and experiment E16 plots.
"""

from repro.loadgen.harness import (
    LoadgenConfig,
    LoadReport,
    build_client,
    run_load,
    sweep_load,
)
from repro.loadgen.schedule import (
    PlannedRequest,
    UserSchedule,
    build_schedules,
    total_requests,
)

__all__ = [
    "LoadgenConfig",
    "LoadReport",
    "build_client",
    "run_load",
    "sweep_load",
    "PlannedRequest",
    "UserSchedule",
    "build_schedules",
    "total_requests",
]
