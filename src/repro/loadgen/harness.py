"""The closed-loop load harness: drive a discovered deployment to its knee.

``run_load`` replays a :mod:`repro.loadgen.schedule` plan against a live,
discovery-resolved deployment: one thread per user, each owning a real
:class:`~repro.core.zltp.client.ZltpClient` built exactly the way
``lightweb browse`` builds one (per-party self-healing pools resolved
from the directory), issuing one pipelined page-view batch at a time
under a per-request deadline. ``sweep_load`` repeats that at increasing
offered rates — the measured saturation curve E16 plots and
:class:`~repro.costmodel.capacity.SaturationCurve` plans from.

Every request lands in exactly one outcome bucket:

``ok``
    completed within the deadline — the only bucket goodput counts.
``late``
    completed, but over the deadline, or aborted mid-batch by the
    client-side deadline check.
``shed``
    the server's admission gate refused it with a fast
    ``ErrorMessage("overload")`` (:class:`~repro.errors.OverloadError`).
``error``
    transport or protocol failure.

Privacy note: the harness is a *client-side measurement tool* and holds
to the client discipline — it resolves structural capability queries
(universe, kind, party), never anything about which pages its synthetic
users read, and its report carries only aggregate public counts and
timings.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.discovery import CapabilityQuery, resolved_pool
from repro.core.resilience import RetryPolicy, resilient_pool
from repro.core.zltp.client import connect_client
from repro.core.zltp.sockets import connect_tcp
from repro.errors import (
    DeadlineError,
    DiscoveryError,
    OverloadError,
    ProtocolError,
    ReproError,
    TransportError,
)
from repro.loadgen.schedule import UserSchedule, build_schedules
from repro.obs.logs import get_logger
from repro.workloads.sessions import BrowsingProfile

_log = get_logger(__name__)


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything about a load run except the offered rate.

    Attributes:
        universe: universe to resolve and drive.
        n_users: concurrent closed-loop users (one client + thread each).
        duration_seconds: length of the arrival window.
        deadline_seconds: per-request budget; requests finishing over it
            are completed-but-late, not goodput.
        patience_seconds: client-side abort budget per request — how
            long a user actually waits before giving up (and
            reconnecting, since an aborted pipelined batch leaves
            replies in flight). ``None`` means five deadlines. Keeping
            patience above the deadline lets the harness *measure* how
            far a saturated, ungated deployment blows its p99 instead
            of truncating every sample at the deadline.
        n_sites / pages_per_site: the synthetic browsing universe the
            zipf targets are drawn over.
        gets_per_page: slots fetched per page view; ``None`` means use
            the deployment's announced ``fetch_budget``.
        modes: modes to offer in the hello (None = all registered).
        retries: dial attempts per failed connection (the resilient
            transport's budget; request deadlines still apply on top).
        seed: workload determinism root.
    """

    universe: str = "main"
    n_users: int = 4
    duration_seconds: float = 2.0
    deadline_seconds: float = 1.0
    patience_seconds: Optional[float] = None
    n_sites: int = 8
    pages_per_site: int = 16
    gets_per_page: Optional[int] = None
    modes: Optional[Sequence[str]] = None
    retries: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.n_users < 1:
            raise ReproError("need at least one user")
        if self.duration_seconds <= 0 or self.deadline_seconds <= 0:
            raise ReproError("duration and deadline must be positive")
        if self.patience_seconds is not None and \
                self.patience_seconds < self.deadline_seconds:
            raise ReproError("patience cannot be shorter than the deadline")
        if self.gets_per_page is not None and self.gets_per_page < 1:
            raise ReproError("gets_per_page must be >= 1 when given")

    @property
    def abort_seconds(self) -> float:
        """The effective per-request abort budget."""
        return (self.patience_seconds if self.patience_seconds is not None
                else 5.0 * self.deadline_seconds)


@dataclass
class LoadReport:
    """What one offered-load level actually did.

    The dict form (:meth:`to_dict`) uses the key names
    :meth:`repro.costmodel.capacity.SaturationCurve.from_sweep` parses,
    so a sweep's report list feeds the capacity planner directly.
    """

    offered_rps: float
    achieved_rps: float
    goodput_rps: float
    n_requests: int
    ok: int
    late: int
    shed: int
    errors: int
    p50_seconds: Optional[float]
    p95_seconds: Optional[float]
    p99_seconds: Optional[float]
    mode: Optional[str]
    n_users: int
    deadline_seconds: float
    elapsed_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready row for ``BENCH_load.json``."""
        return {
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "goodput_rps": self.goodput_rps,
            "n_requests": self.n_requests,
            "ok": self.ok,
            "late": self.late,
            "shed": self.shed,
            "errors": self.errors,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "p99_seconds": self.p99_seconds,
            "mode": self.mode,
            "n_users": self.n_users,
            "deadline_seconds": self.deadline_seconds,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class _UserResult:
    """One worker thread's tally (merged after join)."""

    ok: int = 0
    late: int = 0
    shed: int = 0
    errors: int = 0
    issued: int = 0
    latencies: List[float] = field(default_factory=list)
    finished_at: float = 0.0


def _quantile(latencies: List[float], q: float) -> Optional[float]:
    if not latencies:
        return None
    return float(np.percentile(np.asarray(latencies), q))


def build_client(resolver: Any, universe: str,
                 modes: Optional[Sequence[str]] = None,
                 retries: int = 2,
                 deadline_seconds: Optional[float] = None,
                 connect: Any = connect_tcp,
                 rng: Optional[np.random.Generator] = None):
    """One user's data-session client, the way ``browse`` builds one.

    Each announced party gets its own discovery-resolved, self-healing
    pool wrapped in a resilient transport, so a load run survives a
    mid-run endpoint death the same way a browser does — by failing over,
    inside the request's deadline.

    Raises:
        DiscoveryError: nothing announced for the universe's data kind.
    """
    records = resolver.resolve(
        CapabilityQuery(universe=universe, kind="data"))
    if not records:
        raise DiscoveryError(
            f"no data server announced for universe {universe!r}")
    n_parties = max(record.party for record in records) + 1
    transports = []
    for party in range(n_parties):
        pool = resolved_pool(
            resolver,
            CapabilityQuery(universe=universe, kind="data", party=party),
            connect=connect,
        )
        transports.append(resilient_pool(
            pool, policy=RetryPolicy(max_attempts=max(1, retries)),
            op_deadline_seconds=deadline_seconds,
        ))
    return connect_client(transports,
                          supported_modes=(list(modes) if modes is not None
                                           else None),
                          rng=rng)


def _slots_for(site_index: int, page_index: int, pages_per_site: int,
               n_slots: int, gets_per_page: int) -> List[int]:
    """Deterministic slot batch for a visit target.

    The multiplier spreads consecutive page ranks across the domain so
    the zipf skew shows up as hot *slots*, not one hot prefix; it is a
    fixed public constant — nothing here depends on any secret (the
    targets are synthetic load, known to the harness by construction).
    """
    base = (site_index * pages_per_site + page_index) * 2654435761
    return [(base + j) % n_slots for j in range(gets_per_page)]


def _close_quietly(client: Any) -> None:
    try:
        client.close()
    except (TransportError, ProtocolError):
        pass


def _drive_user(schedule: UserSchedule, client: Any, client_factory: Any,
                t_start: float, config: LoadgenConfig, gets_per_page: int,
                result: _UserResult) -> None:
    """Run one user's closed-loop request sequence.

    A shed request leaves the session usable (the server answers every
    shed GET and the client drains every reply), so the user keeps its
    client. An *abort* — patience expired mid-batch, or a transport or
    protocol failure — leaves replies in flight, so the session is
    discarded and the next request dials a fresh one: the closed-loop
    equivalent of a browser giving up and reloading.
    """
    for request in schedule.requests:
        due = t_start + request.time_seconds
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        result.issued += 1
        if client is None:
            try:
                client = client_factory()
            except (TransportError, ProtocolError, DiscoveryError,
                    OverloadError):
                result.errors += 1
                continue
        slots = _slots_for(request.site_index, request.page_index,
                           config.pages_per_site, 2 ** client.domain_bits,
                           gets_per_page)
        began = time.monotonic()
        try:
            client.get_slots(slots, deadline_seconds=config.abort_seconds)
        except OverloadError:
            result.shed += 1
            continue
        except DeadlineError:
            result.late += 1
            _close_quietly(client)
            client = None
            continue
        except (TransportError, ProtocolError):
            result.errors += 1
            _close_quietly(client)
            client = None
            continue
        latency = time.monotonic() - began
        result.latencies.append(latency)
        if latency <= config.deadline_seconds:
            result.ok += 1
        else:
            result.late += 1
    if client is not None:
        _close_quietly(client)
    result.finished_at = time.monotonic()


def run_load(resolver: Any, offered_rps: float,
             config: LoadgenConfig = LoadgenConfig(),
             connect: Any = connect_tcp) -> LoadReport:
    """Drive one offered-load level against a resolved deployment.

    Clients are connected up front (connection cost stays out of the
    measured window), then every user replays its schedule from a shared
    start instant. A user whose client dies mid-run — or never connected
    — re-dials through discovery on its next request; requests issued
    while no session could be established count as errors rather than
    silently shrinking the offered load.
    """
    budget = config.gets_per_page
    if budget is None:
        records = resolver.resolve(
            CapabilityQuery(universe=config.universe, kind="data"))
        if not records:
            raise DiscoveryError(
                f"no data server announced for universe "
                f"{config.universe!r}")
        budget = int(records[0].attrs.get("fetch_budget", 5))
    schedules = build_schedules(
        config.n_users, offered_rps, config.duration_seconds,
        n_sites=config.n_sites, pages_per_site=config.pages_per_site,
        profile=BrowsingProfile(gets_per_page=budget),
        seed=config.seed)

    def factory_for(user: int):
        def factory():
            return build_client(
                resolver, config.universe, modes=config.modes,
                retries=config.retries,
                deadline_seconds=config.abort_seconds,
                connect=connect,
                rng=np.random.default_rng(config.seed * 31 + user))
        return factory

    # Connect every user up front so dialing stays out of the measured
    # window; a user that cannot connect still runs (its factory retries
    # per request), it just starts errored instead of silently shrinking
    # the offered load.
    clients: List[Any] = []
    results = [_UserResult() for _ in schedules]
    mode: Optional[str] = None
    for user, schedule in enumerate(schedules):
        try:
            client = factory_for(user)()
            mode = mode if mode is not None else client.mode
        except (TransportError, ProtocolError, DiscoveryError,
                OverloadError) as exc:
            client = None
            _log.warning("loadgen user failed to connect", extra={
                "user": user, "error": str(exc)})
        clients.append(client)

    t_start = time.monotonic()
    threads = []
    for schedule, client, result in zip(schedules, clients, results):
        thread = threading.Thread(
            target=_drive_user,
            args=(schedule, client, factory_for(schedule.user_index),
                  t_start, config, budget, result),
            name=f"loadgen-user-{schedule.user_index}", daemon=True)
        thread.start()
        threads.append(thread)
    # Generous bound: the run window plus an abort budget per scheduled
    # request can never be exceeded by a worker making any progress; a
    # transport hung beyond that abandons the thread (daemon) instead of
    # hanging the harness.
    bound = config.duration_seconds + \
        config.abort_seconds * (len(schedules[0].requests) + 2)
    for thread in threads:
        thread.join(bound)

    elapsed = max(max((r.finished_at for r in results), default=t_start)
                  - t_start, 1e-9)
    latencies = [lat for r in results for lat in r.latencies]
    ok = sum(r.ok for r in results)
    report = LoadReport(
        offered_rps=offered_rps,
        achieved_rps=sum(r.issued for r in results) / elapsed,
        goodput_rps=ok / elapsed,
        n_requests=sum(r.issued for r in results),
        ok=ok,
        late=sum(r.late for r in results),
        shed=sum(r.shed for r in results),
        errors=sum(r.errors for r in results),
        p50_seconds=_quantile(latencies, 50),
        p95_seconds=_quantile(latencies, 95),
        p99_seconds=_quantile(latencies, 99),
        mode=mode,
        n_users=config.n_users,
        deadline_seconds=config.deadline_seconds,
        elapsed_seconds=elapsed,
    )
    _log.info("load level done", extra={
        "offered_rps": offered_rps, "goodput_rps": report.goodput_rps,
        "shed": report.shed, "p99": report.p99_seconds})
    return report


def sweep_load(resolver: Any, offered_levels: Sequence[float],
               config: LoadgenConfig = LoadgenConfig(),
               connect: Any = connect_tcp) -> List[LoadReport]:
    """Run every offered level in order; the measured saturation curve.

    Levels run back to back against the same deployment, lowest first by
    convention (callers pass them sorted), so later levels start from a
    warmed server. Returns one :class:`LoadReport` per level.
    """
    if not offered_levels:
        raise ReproError("sweep needs at least one offered level")
    return [run_load(resolver, level, config=config, connect=connect)
            for level in offered_levels]


__all__ = ["LoadgenConfig", "LoadReport", "build_client", "run_load",
           "sweep_load"]
