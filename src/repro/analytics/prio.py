"""Prio-style additive secret sharing for per-domain query counting (§4).

Each client report is a one-hot vector over the universe's domain list
(which domain did this page view hit), split into two additive shares mod
2^32. Each aggregation server sees only its share — a uniformly random
vector — and accumulates. At billing time the servers publish their totals,
which sum to the exact per-domain histogram.

Like Prio, we defend against malformed clients with a lightweight validity
check: shares carry a shared-randomness commitment that lets the servers
verify the vector sums to exactly 1 without learning which entry is hot.
(Full Prio SNIPs are out of scope; the sum check catches the
stuff-the-ballot failure mode that matters for billing.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CryptoError, ProtocolError

_Q = 1 << 32
_MASK = np.uint64(_Q - 1)


def _mod(x: np.ndarray) -> np.ndarray:
    return x & _MASK


class PrioClient:
    """Builds secret-shared one-hot reports."""

    def __init__(self, n_domains: int, rng: Optional[np.random.Generator] = None):
        if n_domains < 1:
            raise CryptoError("need at least one domain")
        self.n_domains = n_domains
        self._rng = rng if rng is not None else np.random.default_rng()

    def report(self, domain_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Split a one-hot vector for ``domain_index`` into two shares.

        Returns:
            ``(share0, share1)`` — uint64 vectors, each uniform on its own,
            summing (mod 2^32) to the one-hot vector.
        """
        if not 0 <= domain_index < self.n_domains:
            raise CryptoError(
                f"domain index {domain_index} out of [0, {self.n_domains})"
            )
        hot = np.zeros(self.n_domains, dtype=np.uint64)
        hot[domain_index] = 1
        share0 = self._rng.integers(0, _Q, size=self.n_domains, dtype=np.uint64)
        share1 = _mod(hot - share0)
        return share0, share1


class AggregationServer:
    """One of the two non-colluding aggregation servers."""

    def __init__(self, name: str, n_domains: int):
        self.name = name
        self.n_domains = n_domains
        self._total = np.zeros(n_domains, dtype=np.uint64)
        self.reports_accepted = 0

    def share_sum(self, share: np.ndarray) -> int:
        """This server's contribution to the validity sum check."""
        return int(_mod(np.add.reduce(np.asarray(share, dtype=np.uint64))))

    def accumulate(self, share: np.ndarray) -> None:
        """Add one report share into the running total."""
        share = np.asarray(share, dtype=np.uint64)
        if share.shape != (self.n_domains,):
            raise ProtocolError(
                f"share must have shape ({self.n_domains},), got {share.shape}"
            )
        self._total = _mod(self._total + share)
        self.reports_accepted += 1

    def totals(self) -> np.ndarray:
        """This server's share of the aggregate histogram."""
        return self._total.copy()


def combine_totals(total0: np.ndarray, total1: np.ndarray) -> np.ndarray:
    """Reconstruct the per-domain histogram from the two servers' totals."""
    a = np.asarray(total0, dtype=np.uint64)
    b = np.asarray(total1, dtype=np.uint64)
    if a.shape != b.shape:
        raise ProtocolError("aggregation totals shape mismatch")
    return _mod(a + b)


class DomainQueryAggregator:
    """The whole §4 billing pipeline for one universe.

    Clients call :meth:`submit` once per page view; the two internal
    aggregation servers run the sum-validity check before accepting, and
    :meth:`histogram` yields the per-domain query counts a CDN would bill
    publishers from.
    """

    def __init__(self, domains: Sequence[str],
                 rng: Optional[np.random.Generator] = None):
        self.domains = list(domains)
        if not self.domains:
            raise CryptoError("aggregator needs a domain list")
        self._index = {domain: i for i, domain in enumerate(self.domains)}
        self.server0 = AggregationServer("agg0", len(self.domains))
        self.server1 = AggregationServer("agg1", len(self.domains))
        self._client = PrioClient(len(self.domains), rng=rng)
        self.rejected = 0

    def submit(self, domain: str) -> bool:
        """Submit one page-view report; returns acceptance.

        Unknown domains are rejected client-side; malformed shares (sum
        check != 1) are rejected by the servers without learning anything
        beyond the failure.
        """
        index = self._index.get(domain)
        if index is None:
            self.rejected += 1
            return False
        share0, share1 = self._client.report(index)
        return self.submit_shares(share0, share1)

    def submit_shares(self, share0: np.ndarray, share1: np.ndarray) -> bool:
        """Submit raw shares (exposed so tests can inject malformed ones)."""
        check = (self.server0.share_sum(share0)
                 + self.server1.share_sum(share1)) % _Q
        if check != 1:
            self.rejected += 1
            return False
        self.server0.accumulate(share0)
        self.server1.accumulate(share1)
        return True

    def histogram(self) -> Dict[str, int]:
        """The reconstructed per-domain query counts."""
        combined = combine_totals(self.server0.totals(), self.server1.totals())
        return {domain: int(combined[i]) for i, domain in enumerate(self.domains)}


__all__ = [
    "PrioClient",
    "AggregationServer",
    "DomainQueryAggregator",
    "combine_totals",
]
