"""Private aggregate statistics for CDN billing (§4).

"Some CDNs could choose to charge publishers proportionally to the number of
queries received for their domain. In order to privately collect data on the
number of queries received for each domain, the CDN could use a system for
the private collection of aggregate statistics [5, 11, 16, 22, 39]."

The CDN cannot count per-domain queries itself — that is the whole point of
ZLTP — so the *clients* report, in secret-shared form, which domain each
page view hit. :mod:`repro.analytics.prio` implements a Prio-style additive
secret-sharing aggregator: two non-colluding aggregation servers each see
only a uniformly random share vector; their summed totals combine to the
per-domain histogram and nothing else.
"""

from repro.analytics.prio import (
    PrioClient,
    AggregationServer,
    DomainQueryAggregator,
    combine_totals,
)

__all__ = [
    "PrioClient",
    "AggregationServer",
    "DomainQueryAggregator",
    "combine_totals",
]
