"""The timing side channel lightweb concedes — and how much it leaks.

§3.2: "It is possible in principle to infer some limited information about
the user's browsing behavior by the number and timing of their page visits
[34]. For example, a user fetching a page every five minutes in the
morning might be most likely to be reading the news. But even this leakage
is modest."

ZLTP hides *which* page, never *when*. This module quantifies the residual
channel: a passive observer sees only page-view timestamps (the clustered
events of :class:`~repro.netsim.adversary.PassiveAdversary`) and tries to
classify the user's behavioural archetype from their daily timing
histogram. :mod:`repro.core.lightweb.scheduler` provides the cover-traffic
defense that flattens this channel, at a quantifiable latency/overhead
cost (benchmark A4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError

HOURS = 24


@dataclass(frozen=True)
class ActivityArchetype:
    """A behavioural profile an observer might try to recognise.

    Attributes:
        name: label, e.g. ``"morning-news"``.
        active_hours: (start, end) of the user's daily browsing window.
        pages_per_day: mean daily page views.
    """

    name: str
    active_hours: Tuple[float, float]
    pages_per_day: float

    def sample_day(self, rng: np.random.Generator) -> List[float]:
        """One day of visit times (seconds since midnight)."""
        count = max(1, int(rng.poisson(self.pages_per_day)))
        start, end = self.active_hours
        return sorted(
            float(t) for t in rng.uniform(start * 3600, end * 3600, size=count)
        )


#: The archetypes the §3.2 example gestures at.
DEFAULT_ARCHETYPES = (
    ActivityArchetype("morning-news", (6.0, 9.0), 25),
    ActivityArchetype("office-hours", (9.0, 17.0), 60),
    ActivityArchetype("evening-reader", (19.0, 23.0), 35),
)


def hour_histogram(visit_times: Sequence[float]) -> np.ndarray:
    """Bucket visit times (seconds since midnight) into 24 hourly counts."""
    histogram = np.zeros(HOURS, dtype=np.float64)
    for time in visit_times:
        hour = int(time // 3600) % HOURS
        histogram[hour] += 1
    return histogram


class TimingClassifier:
    """Multinomial naive Bayes over hourly visit histograms.

    The strongest realistic passive observer for this channel: it sees
    per-day timestamp lists (nothing else) and guesses the archetype.
    """

    def __init__(self, smoothing: float = 1.0):
        if smoothing <= 0:
            raise ReproError("smoothing must be positive")
        self.smoothing = smoothing
        self._counts: Dict[str, np.ndarray] = {}
        self._days: Dict[str, int] = {}

    def fit(self, days: List[Sequence[float]], labels: List[str]) -> None:
        """Train on labelled days of visit times."""
        if len(days) != len(labels):
            raise ReproError("days and labels must align")
        if not days:
            raise ReproError("cannot fit on an empty corpus")
        for visit_times, label in zip(days, labels):
            histogram = hour_histogram(visit_times)
            if label not in self._counts:
                self._counts[label] = np.zeros(HOURS)
                self._days[label] = 0
            self._counts[label] += histogram
            self._days[label] += 1

    @property
    def classes(self) -> List[str]:
        """Known archetype labels."""
        return sorted(self._counts)

    def log_likelihood(self, visit_times: Sequence[float], label: str) -> float:
        """Log P(day | archetype) + log prior."""
        if label not in self._counts:
            raise ReproError(f"unknown label {label!r}")
        counts = self._counts[label]
        total = counts.sum() + self.smoothing * HOURS
        log_probs = np.log((counts + self.smoothing) / total)
        histogram = hour_histogram(visit_times)
        prior = math.log(self._days[label] / sum(self._days.values()))
        return prior + float(histogram @ log_probs)

    def predict(self, visit_times: Sequence[float]) -> str:
        """Most likely archetype for one day."""
        if not self._counts:
            raise ReproError("classifier is not fitted")
        return max(self.classes,
                   key=lambda label: self.log_likelihood(visit_times, label))

    def accuracy(self, days: List[Sequence[float]], labels: List[str]) -> float:
        """Fraction of days classified correctly."""
        if not days:
            raise ReproError("empty evaluation set")
        hits = sum(1 for day, label in zip(days, labels)
                   if self.predict(day) == label)
        return hits / len(days)


def archetype_corpus(archetypes: Sequence[ActivityArchetype],
                     days_per_archetype: int,
                     seed: int = 0) -> Tuple[List[List[float]], List[str]]:
    """Generate a labelled corpus of daily visit-time lists."""
    rng = np.random.default_rng(seed)
    days: List[List[float]] = []
    labels: List[str] = []
    for archetype in archetypes:
        for _ in range(days_per_archetype):
            days.append(archetype.sample_day(rng))
            labels.append(archetype.name)
    return days, labels


__all__ = [
    "ActivityArchetype",
    "DEFAULT_ARCHETYPES",
    "TimingClassifier",
    "hour_histogram",
    "archetype_corpus",
    "HOURS",
]
