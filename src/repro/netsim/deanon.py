"""The §6 deanonymization argument, as an executable experiment.

Related work dismisses a cheaper design — fixed-size pages fetched through
an anonymizing proxy: "A serious drawback of this approach is that the CDN
knows all webpage requests for many users and so can run a deanonymization
attack to map users to requests [43, 44]. The ZLTP protocol defends
against both traffic-analysis and deanonymization attacks."

We model the attack the citations describe (SimAttack-style profile
linking): users have stable interest profiles; the CDN observes each
(pseudonymous) session's request stream and links sessions across epochs
by profile similarity, stripping the proxy's anonymity. Under the proxy
design the CDN sees *page identities*, so linking works; under ZLTP it
sees only opaque PIR queries, so the best it can use is request *counts* —
and linking collapses toward chance. Benchmark A5 runs both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.workloads.zipf import ZipfPopularity


@dataclass(frozen=True)
class UserModel:
    """A user's stable browsing profile.

    Attributes:
        user_id: identity the attacker tries to recover.
        interest_weights: unnormalised preference over pages.
        requests_per_epoch: mean requests each observation epoch.
    """

    user_id: int
    interest_weights: np.ndarray
    requests_per_epoch: float

    def sample_epoch(self, rng: np.random.Generator) -> List[int]:
        """One epoch of page requests (page indices)."""
        count = max(1, int(rng.poisson(self.requests_per_epoch)))
        probs = self.interest_weights / self.interest_weights.sum()
        return list(rng.choice(len(probs), size=count, p=probs))


def make_population(n_users: int, n_pages: int, seed: int = 0,
                    zipf_exponent: float = 1.2) -> List[UserModel]:
    """Users with distinct Zipf-over-random-permutation interests."""
    if n_users < 2 or n_pages < 2:
        raise ReproError("need at least 2 users and 2 pages")
    rng = np.random.default_rng(seed)
    base = ZipfPopularity(n_pages, zipf_exponent).probabilities
    users = []
    for user_id in range(n_users):
        permutation = rng.permutation(n_pages)
        weights = base[np.argsort(permutation)]
        users.append(UserModel(
            user_id=user_id,
            interest_weights=weights,
            requests_per_epoch=float(rng.uniform(30, 80)),
        ))
    return users


def _page_histogram(requests: Sequence[int], n_pages: int) -> np.ndarray:
    histogram = np.zeros(n_pages, dtype=np.float64)
    for page in requests:
        histogram[page] += 1
    return histogram


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(a @ b) / (na * nb)


class ProfileLinkingAttack:
    """The CDN-side linking attacker of [43, 44].

    Training epoch: the attacker observes every user's request stream with
    known identities (e.g. before they adopted the proxy). Attack epoch:
    streams arrive under fresh pseudonyms; the attacker matches each to
    the most similar training profile.
    """

    def __init__(self, n_pages: int, observe_pages: bool):
        """Create an attacker.

        Args:
            n_pages: universe page count.
            observe_pages: True models the proxy design (the CDN sees which
                page each request was for); False models ZLTP (requests are
                opaque — only their count is visible).
        """
        self.n_pages = n_pages
        self.observe_pages = observe_pages
        self._profiles: Dict[int, np.ndarray] = {}
        self._epochs_seen: Dict[int, int] = {}

    def _featurise(self, requests: Sequence[int]) -> np.ndarray:
        if self.observe_pages:
            return _page_histogram(requests, self.n_pages)
        # ZLTP view: an opaque request stream. The only usable feature is
        # volume.
        return np.array([float(len(requests))])

    def observe_training(self, user_id: int, requests: Sequence[int]) -> None:
        """Record one identified epoch for a user."""
        features = self._featurise(requests)
        if user_id in self._profiles:
            self._profiles[user_id] = self._profiles[user_id] + features
            self._epochs_seen[user_id] += 1
        else:
            self._profiles[user_id] = features
            self._epochs_seen[user_id] = 1

    def link(self, requests: Sequence[int]) -> int:
        """Guess which known user produced a pseudonymous stream."""
        if not self._profiles:
            raise ReproError("attacker has no training observations")
        target = self._featurise(requests)
        if self.observe_pages:
            return max(self._profiles,
                       key=lambda uid: _cosine(self._profiles[uid], target))
        # Count-only: nearest per-epoch mean volume — the strongest thing
        # an attacker can do with opaque ZLTP streams.
        return min(self._profiles,
                   key=lambda uid: abs(
                       float(self._profiles[uid][0]) / self._epochs_seen[uid]
                       - float(target[0])))

    def accuracy(self, epochs: List[Tuple[int, Sequence[int]]]) -> float:
        """Fraction of pseudonymous epochs linked to the right user."""
        if not epochs:
            raise ReproError("no attack epochs supplied")
        hits = sum(1 for user_id, requests in epochs
                   if self.link(requests) == user_id)
        return hits / len(epochs)


def run_linking_experiment(n_users: int = 12, n_pages: int = 200,
                           training_epochs: int = 3,
                           attack_epochs: int = 2,
                           observe_pages: bool = True,
                           seed: int = 0) -> float:
    """End-to-end linking accuracy under one observation model."""
    rng = np.random.default_rng(seed)
    users = make_population(n_users, n_pages, seed=seed + 1)
    attacker = ProfileLinkingAttack(n_pages, observe_pages=observe_pages)
    for user in users:
        for _ in range(training_epochs):
            attacker.observe_training(user.user_id, user.sample_epoch(rng))
    trials = []
    for user in users:
        for _ in range(attack_epochs):
            trials.append((user.user_id, user.sample_epoch(rng)))
    return attacker.accuracy(trials)


__all__ = [
    "UserModel",
    "make_population",
    "ProfileLinkingAttack",
    "run_linking_experiment",
]
