"""Scripted fault injection for chaos-testing real protocol runs.

:class:`FaultyTransport` wraps any transport (in-memory, simnet, or real
TCP) and applies a deterministic :class:`FaultSchedule`: "drop the 3rd
send", "raise on the 5th recv", "delay the 2nd send by 10 ms", "close the
connection before the 4th recv". Because the schedule is indexed by
operation count — not time — a chaos test replays the exact same failure
at the exact same protocol step every run, which is what makes
reconnection tests assertable rather than flaky.

This is the harness half of the resilience story: the recovery machinery
lives in :mod:`repro.core.resilience`; this module only *creates* the
failures that machinery must survive. Random packet loss (rate-based
rather than scripted) lives on :class:`repro.netsim.simnet.NetworkPath`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.errors import SimulationError, TransportError

#: The fault kinds a schedule may apply.
ACTIONS = ("drop", "error", "close", "delay")


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault: at the ``index``-th ``op``, do ``action``.

    Attributes:
        op: ``"send"``, ``"recv"``, or ``"dial"`` (connection
            establishment, applied by :class:`FaultyDialFactory`; only
            ``"error"`` and ``"delay"`` actions make sense there).
        index: 0-based count of that operation on the wrapped transport.
        action: ``"drop"`` (swallow the frame), ``"error"`` (raise
            :class:`~repro.errors.TransportError`), ``"close"`` (close
            the inner transport, then raise), or ``"delay"``.
        delay_seconds: sleep applied for ``"delay"`` (and, additionally,
            before any other action when non-zero).
    """

    op: str
    index: int
    action: str
    delay_seconds: float = 0.0

    def __post_init__(self):
        if self.op not in ("send", "recv", "dial"):
            raise SimulationError(
                f"fault op must be send/recv/dial, got {self.op!r}")
        if self.action not in ACTIONS:
            raise SimulationError(f"unknown fault action {self.action!r}")
        if self.op == "dial" and self.action not in ("error", "delay"):
            raise SimulationError(
                f"dial faults can only 'error' or 'delay', got {self.action!r}")
        if self.index < 0 or self.delay_seconds < 0:
            raise SimulationError("fault index and delay must be >= 0")


class FaultSchedule:
    """An indexed set of :class:`FaultRule`\\ s, shared across transports.

    The schedule tracks which rules have fired, so a dial factory can
    hand the *same* schedule to every transport incarnation and each
    scripted fault still fires exactly once.
    """

    def __init__(self, rules: Iterable[FaultRule] = ()):
        self._rules: Dict[Tuple[str, int], FaultRule] = {}
        for rule in rules:
            key = (rule.op, rule.index)
            if key in self._rules:
                raise SimulationError(
                    f"duplicate fault rule for {rule.op} #{rule.index}")
            self._rules[key] = rule
        self.fired: list = []

    @classmethod
    def script(cls, *specs: Tuple[str, int, str]) -> "FaultSchedule":
        """Shorthand: ``FaultSchedule.script(("send", 2, "drop"), ...)``."""
        return cls(FaultRule(op, index, action)
                   for op, index, action in specs)

    def take(self, op: str, index: int) -> Optional[FaultRule]:
        """The rule for this operation, consumed at most once."""
        rule = self._rules.pop((op, index), None)
        if rule is not None:
            self.fired.append(rule)
        return rule

    @property
    def pending(self) -> int:
        """Rules that have not fired yet."""
        return len(self._rules)


class FaultyTransport:
    """A transport wrapper that injects scripted faults.

    Drop semantics differ by direction, mirroring a real lossy link:

    * a dropped **send** vanishes after leaving the sender — the inner
      transport never sees it, but byte accounting still counts it (the
      sender's NIC transmitted it);
    * a dropped **recv** consumes one inbound frame and discards it,
      then keeps receiving — the frame was lost before delivery.
    """

    def __init__(self, inner: Any, schedule: FaultSchedule,
                 sleep: Callable[[float], None] = time.sleep,
                 name: str = "faulty"):
        self._inner = inner
        self._schedule = schedule
        self._sleep = sleep
        self.name = name
        self.sends = 0
        self.recvs = 0
        self._dropped_sent_bytes = 0

    def _apply(self, rule: FaultRule) -> Optional[str]:
        if rule.delay_seconds > 0:
            self._sleep(rule.delay_seconds)
        if rule.action == "delay":
            return None
        if rule.action == "close":
            self._inner.close()
            raise TransportError(
                f"injected close on {self.name!r} ({rule.op} #{rule.index})")
        if rule.action == "error":
            raise TransportError(
                f"injected {rule.op} error on {self.name!r} (#{rule.index})")
        return rule.action  # "drop"

    def send_frame(self, payload: bytes) -> None:
        index = self.sends
        self.sends += 1
        rule = self._schedule.take("send", index)
        if rule is not None and self._apply(rule) == "drop":
            # Lost in flight: the sender saw it leave (4-byte frame
            # header included), the receiver never will.
            self._dropped_sent_bytes += len(payload) + 4
            return
        self._inner.send_frame(payload)

    def recv_frame(self) -> bytes:
        while True:
            index = self.recvs
            self.recvs += 1
            rule = self._schedule.take("recv", index)
            # error/close/delay apply before the blocking read (the
            # failure pre-empts delivery); only "drop" consumes a frame.
            dropping = rule is not None and self._apply(rule) == "drop"
            frame = self._inner.recv_frame()
            if dropping:
                continue  # the frame was lost before delivery
            return frame

    def close(self) -> None:
        self._inner.close()

    @property
    def bytes_sent(self) -> int:
        return self._inner.bytes_sent + self._dropped_sent_bytes

    @property
    def bytes_received(self) -> int:
        return self._inner.bytes_received


class FaultyDialFactory:
    """Inject scripted failures at connection *establishment*.

    Wraps a zero-argument dial callable; the shared schedule's ``"dial"``
    rules decide which dial attempts fail (``"error"``) or stall
    (``"delay"``), indexed by attempt count across every incarnation.
    This is how chaos tests script "the primary is dead from attempt 3
    on" against endpoint pools and discovery refresh — the failure mode
    :class:`FaultyTransport` cannot express, because it needs a
    connection to already exist.

    ``fail_forever_after`` (optional) marks an attempt index from which
    *every* dial fails, on top of the scripted one-shot rules — a
    SIGKILLed server stays dead without enumerating rules for each
    retry.
    """

    def __init__(self, dial: Callable[[], Any], schedule: FaultSchedule,
                 sleep: Callable[[float], None] = time.sleep,
                 name: str = "faulty-dial",
                 fail_forever_after: Optional[int] = None):
        self._dial = dial
        self._schedule = schedule
        self._sleep = sleep
        self.name = name
        self.fail_forever_after = fail_forever_after
        self.dials = 0

    def __call__(self) -> Any:
        index = self.dials
        self.dials += 1
        rule = self._schedule.take("dial", index)
        if rule is not None:
            if rule.delay_seconds > 0:
                self._sleep(rule.delay_seconds)
            if rule.action == "error":
                raise TransportError(
                    f"injected dial failure on {self.name!r} (#{index})")
        if self.fail_forever_after is not None and \
                index >= self.fail_forever_after:
            raise TransportError(
                f"{self.name!r} is down (dial #{index})")
        return self._dial()


__all__ = ["FaultRule", "FaultSchedule", "FaultyTransport",
           "FaultyDialFactory", "ACTIONS"]
