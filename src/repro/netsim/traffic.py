"""Classic-web page-load traffic models — the baseline lightweb replaces.

To show the motivating attack of §1 actually works against the ordinary
web-over-encrypted-proxy setting, we need realistic page-load traces: "a
visit to the media-rich New York Times homepage ... exhibits a very
different traffic signature than a visit to an article page".

Each simulated site has a characteristic resource mix (HTML document,
stylesheets, scripts, images) whose sizes are drawn deterministically from
the site name, so the same site always produces recognisably similar — but
noisy — traces, exactly the regime in which the multinomial naive-Bayes
fingerprinter of Herrmann et al. [31] thrives.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

#: Resource classes: (count range, lognormal median bytes, sigma).
_RESOURCE_MIX = (
    ("html", (1, 1), 40_000, 0.5),
    ("css", (1, 4), 15_000, 0.6),
    ("js", (2, 10), 60_000, 0.8),
    ("image", (3, 30), 80_000, 1.0),
)

_REQUEST_BYTES = 500  # typical HTTP request header size


@dataclass
class PageLoadTrace:
    """One observed page load: a (direction, size) transfer sequence."""

    site: str
    transfers: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Total volume moved."""
        return sum(size for _, size in self.transfers)

    @property
    def n_transfers(self) -> int:
        """Number of transfers."""
        return len(self.transfers)


class ClassicWebTraffic:
    """Deterministic per-site page-load trace generator.

    A site's *profile* (how many resources of each class, and their base
    sizes) is fixed by hashing the site name; each *load* adds sampling
    noise (cache hits, image variants), modelling repeat visits.
    """

    def __init__(self, noise: float = 0.10):
        """Create a generator.

        Args:
            noise: per-load relative size jitter (0 disables).
        """
        self.noise = noise

    def _site_rng(self, site: str) -> np.random.Generator:
        digest = hashlib.blake2b(site.encode("utf-8"), digest_size=8).digest()
        return np.random.default_rng(int.from_bytes(digest, "little"))

    def site_profile(self, site: str) -> List[int]:
        """The site's characteristic resource sizes (downstream bytes)."""
        rng = self._site_rng(site)
        sizes = []
        for _name, (lo, hi), median, sigma in _RESOURCE_MIX:
            count = int(rng.integers(lo, hi + 1))
            for _ in range(count):
                sizes.append(int(median * float(rng.lognormal(0.0, sigma))))
        return sizes

    def page_load(self, site: str, load_rng: np.random.Generator) -> PageLoadTrace:
        """Generate one (noisy) load of ``site``.

        Args:
            site: domain to load.
            load_rng: randomness for this particular load's jitter.
        """
        transfers: List[Tuple[str, int]] = []
        for size in self.site_profile(site):
            jitter = 1.0 + self.noise * float(load_rng.standard_normal())
            observed = max(200, int(size * max(0.1, jitter)))
            transfers.append(("up", _REQUEST_BYTES))
            transfers.append(("down", observed))
        return PageLoadTrace(site=site, transfers=transfers)

    def corpus(self, sites: List[str], loads_per_site: int,
               seed: int = 0) -> List[PageLoadTrace]:
        """Generate a labelled corpus of page loads for fingerprint training."""
        rng = np.random.default_rng(seed)
        traces = []
        for site in sites:
            for _ in range(loads_per_site):
                traces.append(self.page_load(site, rng))
        return traces


__all__ = ["ClassicWebTraffic", "PageLoadTrace"]
