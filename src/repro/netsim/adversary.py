"""The passive network adversary and what it can (and cannot) learn.

§3.2 enumerates exactly what lightweb leaks to an on-path attacker:

    "a network attacker only learns: which universe a user is connected to
    (leaked via IP headers), when the user has visited a new domain (leaked
    via a code-page fetch), and when the user visits a new page or follows a
    hyperlink (leaked via data-page fetches)."

:class:`PassiveAdversary` records the raw (time, path, direction, size)
stream, and :meth:`PassiveAdversary.infer_events` implements the *best
inference the paper concedes*: clustering transfers into page-view events
and classifying code-blob fetches apart from data-blob fetches by size.
Tests assert both directions — the adversary recovers timing/count events,
and nothing in the trace distinguishes *which* page was fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Observation:
    """One observed transfer on a network path."""

    time: float
    path: str
    direction: str
    n_bytes: int


@dataclass(frozen=True)
class PageEvent:
    """An inferred browsing event (the §3.2 leakage granularity).

    Attributes:
        time: when the event started.
        kind: ``"code-fetch"`` (new-domain visit), ``"page-view"`` (data
            fetches only), or ``"session"`` (hello traffic).
        n_transfers: transfers in the event's cluster.
        total_bytes: bytes across the cluster.
    """

    time: float
    kind: str
    n_transfers: int
    total_bytes: int


class PassiveAdversary:
    """An on-path observer: sees sizes, directions and timing — never content."""

    def __init__(self, name: str = "adversary"):
        self.name = name
        self.observations: List[Observation] = []

    def __call__(self, time: float, path: str, direction: str, n_bytes: int) -> None:
        """Observer hook for :class:`~repro.netsim.simnet.NetworkPath`."""
        self.observations.append(Observation(time, path, direction, n_bytes))

    def clear(self) -> None:
        """Forget all recorded observations."""
        self.observations.clear()

    def paths_seen(self) -> List[str]:
        """Distinct paths — the 'which universe' leakage (IP-level)."""
        seen = []
        for obs in self.observations:
            if obs.path not in seen:
                seen.append(obs.path)
        return seen

    def trace(self, path: Optional[str] = None) -> List[Tuple[str, int]]:
        """The (direction, size) sequence — the fingerprinting feature view."""
        return [
            (obs.direction, obs.n_bytes)
            for obs in self.observations
            if path is None or obs.path == path
        ]

    def total_bytes(self, path: Optional[str] = None) -> int:
        """Total observed volume."""
        return sum(
            obs.n_bytes
            for obs in self.observations
            if path is None or obs.path == path
        )

    def infer_events(self, gap_seconds: float = 1.0,
                     code_blob_threshold: int = 16 * 1024) -> List[PageEvent]:
        """Cluster the trace into browsing events (the conceded leakage).

        Transfers separated by less than ``gap_seconds`` belong to one
        event. An event moving at least ``code_blob_threshold`` bytes in a
        single downstream transfer is classified as a code fetch (new
        domain); otherwise it is a page view.
        """
        events: List[PageEvent] = []
        cluster: List[Observation] = []

        def flush() -> None:
            if not cluster:
                return
            biggest_down = max(
                (obs.n_bytes for obs in cluster if obs.direction == "down"),
                default=0,
            )
            kind = "code-fetch" if biggest_down >= code_blob_threshold else "page-view"
            events.append(
                PageEvent(
                    time=cluster[0].time,
                    kind=kind,
                    n_transfers=len(cluster),
                    total_bytes=sum(obs.n_bytes for obs in cluster),
                )
            )

        for obs in sorted(self.observations, key=lambda o: o.time):
            if cluster and obs.time - cluster[-1].time > gap_seconds:
                flush()
                cluster = []
            cluster.append(obs)
        flush()
        return events

    def request_signature(self) -> Dict[Tuple[str, int], int]:
        """Histogram of (direction, size) — identical across lightweb pages.

        For a traffic-analysis attack to work, this histogram must differ
        between pages; lightweb's fixed blob sizes and fixed fetch counts
        make it constant, which tests assert.
        """
        histogram: Dict[Tuple[str, int], int] = {}
        for obs in self.observations:
            key = (obs.direction, obs.n_bytes)
            histogram[key] = histogram.get(key, 0) + 1
        return histogram


__all__ = ["PassiveAdversary", "Observation", "PageEvent"]
