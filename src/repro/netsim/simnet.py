"""A lightweight simulated network under the ZLTP transports.

ZLTP's client code is synchronous (send, then receive), so the simulator
does not need a full event loop: a shared :class:`SimClock` advances as
frames traverse a :class:`NetworkPath` with configurable propagation latency
and bandwidth, and every traversal is reported to an optional observer (the
passive adversary). The result is timestamped, size-accurate traffic traces
from *real protocol runs* — not synthetic approximations — which is what the
fingerprinting experiments consume.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.zltp.transport import InMemoryTransport
from repro.core.zltp.wire import encode_frame
from repro.errors import SimulationError, TransportError


class SimClock:
    """A shared simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise SimulationError("time cannot run backwards")
        self._now += seconds
        return self._now

    def sleep_until(self, when: float) -> None:
        """Advance to an absolute time (no-op if already past it)."""
        if when > self._now:
            self._now = when


class NetworkPath:
    """A unidirectional-pair network path with latency and bandwidth.

    Attributes:
        name: label used in adversary observations (e.g. ``"client-cdn"``).
        latency_seconds: one-way propagation delay.
        bandwidth_bps: link bandwidth in bits per second.
        loss_rate: probability a frame is lost in flight (0 disables).
        frames_dropped: frames lost so far (chaos tests assert on this).
    """

    def __init__(self, clock: SimClock, name: str = "path",
                 latency_seconds: float = 0.02,
                 bandwidth_bps: float = 100e6,
                 observer: Optional[Callable] = None,
                 loss_rate: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        if latency_seconds < 0 or bandwidth_bps <= 0:
            raise SimulationError("latency must be >=0 and bandwidth positive")
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError("loss_rate must be in [0, 1)")
        self.clock = clock
        self.name = name
        self.latency_seconds = latency_seconds
        self.bandwidth_bps = bandwidth_bps
        self.observer = observer
        self.loss_rate = loss_rate
        # Seeded by default so lossy runs replay deterministically.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.frames_dropped = 0

    def transfer(self, direction: str, n_bytes: int) -> Optional[float]:
        """Carry ``n_bytes`` across the path; returns the arrival time,
        or None when the frame was lost in flight.

        Advances the shared clock by propagation plus serialisation delay
        and reports the transfer to the observer either way: an on-path
        adversary sees a frame *leave* whether or not it arrives.
        """
        serialisation = (n_bytes * 8) / self.bandwidth_bps
        arrival = self.clock.advance(self.latency_seconds + serialisation)
        if self.observer is not None:
            self.observer(arrival, self.name, direction, n_bytes)
        if self.loss_rate > 0 and float(self._rng.random()) < self.loss_rate:
            self.frames_dropped += 1
            return None
        return arrival


class SimTransport(InMemoryTransport):
    """An in-memory transport whose frames traverse a :class:`NetworkPath`."""

    def __init__(self, path: NetworkPath, direction: str, name: str = ""):
        """Create one endpoint.

        Args:
            path: the network path frames traverse.
            direction: the label for frames *sent from this end*
                (``"up"`` for client→server, ``"down"`` for server→client).
        """
        super().__init__(name=name)
        self._path = path
        self._direction = direction

    def send_frame(self, payload: bytes) -> None:
        # Size on the wire includes the 4-byte frame header.
        arrival = self._path.transfer(self._direction, len(payload) + 4)
        if arrival is None:
            # Lost in flight: the sender's accounting and any tap see
            # the frame leave, but the peer never receives it. The
            # synchronous client then finds no pending frame on its
            # next recv — a TransportError, the retry layer's trigger.
            if self._closed:
                raise TransportError(f"transport {self.name!r} is closed")
            frame = encode_frame(payload)
            self._bytes_sent += len(frame)
            if self.tap is not None:
                self.tap("send", len(frame))
            return
        super().send_frame(payload)


def sim_transport_pair(path: NetworkPath, client_name: str = "client",
                       server_name: str = "server"
                       ) -> Tuple[SimTransport, SimTransport]:
    """A connected (client_end, server_end) pair over one simulated path."""
    client_end = SimTransport(path, "up", client_name)
    server_end = SimTransport(path, "down", server_name)
    client_end.connect(server_end)
    return client_end, server_end


__all__ = ["SimClock", "NetworkPath", "SimTransport", "sim_transport_pair"]
