"""Network simulation and the traffic-analysis adversary.

The paper's motivation (§1) is that anonymizing proxies leak through traffic
analysis: "a visit to the media-rich New York Times homepage — even over an
encrypted link — exhibits a very different traffic signature than a visit to
an article page". This package provides the machinery to *demonstrate* both
halves of that claim:

- :mod:`repro.netsim.simnet` — a simulated network clock/path that carries
  real ZLTP transports while timestamping every frame.
- :mod:`repro.netsim.adversary` — a passive on-path observer recording the
  (time, direction, size) stream an encrypted link leaks, plus the §3.2
  event inference (universe, code-fetch, page-visit timing) that remains
  possible against lightweb.
- :mod:`repro.netsim.traffic` — classic-web page-load trace generation
  (per-site resource mixes) for the fingerprinting corpus.
- :mod:`repro.netsim.fingerprint` — the multinomial naive-Bayes website
  fingerprinting classifier of Herrmann et al. [31], which succeeds against
  classic-web traces and collapses to chance against lightweb's fixed-size,
  fixed-count fetches (benchmark A2).
"""

from repro.netsim.simnet import SimClock, NetworkPath, SimTransport, sim_transport_pair
from repro.netsim.faults import FaultRule, FaultSchedule, FaultyTransport
from repro.netsim.adversary import PassiveAdversary, Observation, PageEvent
from repro.netsim.traffic import ClassicWebTraffic, PageLoadTrace
from repro.netsim.fingerprint import NaiveBayesFingerprinter
from repro.netsim.timing import (
    ActivityArchetype,
    DEFAULT_ARCHETYPES,
    TimingClassifier,
    archetype_corpus,
)

__all__ = [
    "SimClock",
    "NetworkPath",
    "SimTransport",
    "sim_transport_pair",
    "FaultRule",
    "FaultSchedule",
    "FaultyTransport",
    "PassiveAdversary",
    "Observation",
    "PageEvent",
    "ClassicWebTraffic",
    "PageLoadTrace",
    "NaiveBayesFingerprinter",
    "ActivityArchetype",
    "DEFAULT_ARCHETYPES",
    "TimingClassifier",
    "archetype_corpus",
]
