"""Website fingerprinting with a multinomial naive-Bayes classifier.

This is the attack of Herrmann, Wendolsky and Federrath (the paper's [31]):
an observer of an *encrypted* link sees only packet directions and sizes,
builds per-site multinomial distributions over (direction, size-bucket)
symbols, and classifies fresh traces by maximum likelihood.

Benchmark A2 runs it twice: against classic-web traces (it identifies sites
far above chance — the paper's motivation for abandoning proxies) and
against traces of real lightweb page loads (every page load has the same
fixed transfer signature, so accuracy collapses to chance — the paper's
"protects against traffic-analysis attacks by design").
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

Trace = Sequence[Tuple[str, int]]


def _bucket(size: int, bucket_bytes: int) -> int:
    return size // bucket_bytes


class NaiveBayesFingerprinter:
    """Multinomial naive Bayes over (direction, size-bucket) symbols."""

    def __init__(self, bucket_bytes: int = 1024, smoothing: float = 1.0):
        """Create a classifier.

        Args:
            bucket_bytes: transfer sizes are quantised to this granularity
                (the attack is robust to padding smaller than the bucket).
            smoothing: Laplace smoothing constant.
        """
        if bucket_bytes < 1:
            raise ReproError("bucket_bytes must be positive")
        if smoothing <= 0:
            raise ReproError("smoothing must be positive")
        self.bucket_bytes = bucket_bytes
        self.smoothing = smoothing
        self._symbol_counts: Dict[str, Counter] = {}
        self._totals: Dict[str, int] = {}
        self._priors: Dict[str, int] = defaultdict(int)
        self._vocabulary: set = set()

    def _symbols(self, trace: Trace) -> List[Tuple[str, int]]:
        return [(direction, _bucket(size, self.bucket_bytes))
                for direction, size in trace]

    def fit(self, traces: List[Trace], labels: List[str]) -> None:
        """Train on labelled traces (may be called once with the corpus)."""
        if len(traces) != len(labels):
            raise ReproError("traces and labels must align")
        if not traces:
            raise ReproError("cannot fit on an empty corpus")
        for trace, label in zip(traces, labels):
            counts = self._symbol_counts.setdefault(label, Counter())
            for symbol in self._symbols(trace):
                counts[symbol] += 1
                self._vocabulary.add(symbol)
            self._priors[label] += 1
        self._totals = {
            label: sum(counts.values())
            for label, counts in self._symbol_counts.items()
        }

    @property
    def classes(self) -> List[str]:
        """Known labels."""
        return sorted(self._symbol_counts)

    def log_likelihood(self, trace: Trace, label: str) -> float:
        """Log P(trace | label) + log prior under the multinomial model."""
        if label not in self._symbol_counts:
            raise ReproError(f"unknown label {label!r}")
        counts = self._symbol_counts[label]
        total = self._totals[label]
        vocab = max(1, len(self._vocabulary))
        n_train = sum(self._priors.values())
        score = math.log(self._priors[label] / n_train)
        denom = total + self.smoothing * vocab
        for symbol in self._symbols(trace):
            score += math.log((counts.get(symbol, 0) + self.smoothing) / denom)
        return score

    def predict(self, trace: Trace) -> str:
        """Most likely site for one trace."""
        if not self._symbol_counts:
            raise ReproError("classifier is not fitted")
        return max(self.classes, key=lambda label: self.log_likelihood(trace, label))

    def accuracy(self, traces: List[Trace], labels: List[str]) -> float:
        """Fraction of traces classified correctly."""
        if not traces:
            raise ReproError("empty evaluation set")
        hits = sum(
            1 for trace, label in zip(traces, labels) if self.predict(trace) == label
        )
        return hits / len(traces)


class KnnFingerprinter:
    """A second, feature-based fingerprinting attack (k-nearest-neighbour).

    Robustness check for the A2 conclusion: a qualitatively different
    attacker — distance over summary features (total volume up/down,
    transfer count, largest transfers) instead of symbol likelihoods —
    should reach the same verdicts: effective against the classic web,
    chance against lightweb.
    """

    def __init__(self, k: int = 3):
        if k < 1:
            raise ReproError("k must be at least 1")
        self.k = k
        self._features: List[Tuple[float, ...]] = []
        self._labels: List[str] = []

    @staticmethod
    def _featurise(trace: Trace) -> Tuple[float, ...]:
        up = sorted((s for d, s in trace if d == "up"), reverse=True)
        down = sorted((s for d, s in trace if d == "down"), reverse=True)

        def top(values, n=3):
            padded = list(values[:n]) + [0] * (n - len(values[:n]))
            return padded

        return tuple(
            float(v)
            for v in (
                sum(up), sum(down), len(up), len(down),
                *top(down), *top(up),
            )
        )

    def fit(self, traces: List[Trace], labels: List[str]) -> None:
        """Memorise the labelled corpus."""
        if len(traces) != len(labels):
            raise ReproError("traces and labels must align")
        if not traces:
            raise ReproError("cannot fit on an empty corpus")
        self._features = [self._featurise(t) for t in traces]
        self._labels = list(labels)

    def predict(self, trace: Trace) -> str:
        """Majority label among the k nearest training traces."""
        if not self._features:
            raise ReproError("classifier is not fitted")
        target = self._featurise(trace)
        # Scale-normalised L1 distance so volume doesn't drown counts.
        scales = [max(1.0, abs(v)) for v in target]
        distances = sorted(
            (
                sum(abs(a - b) / s for a, b, s in zip(feat, target, scales)),
                self._labels[i],
            )
            for i, feat in enumerate(self._features)
        )
        votes = Counter(label for _d, label in distances[: self.k])
        # Deterministic tie-break: most votes, then smallest label.
        return min(votes, key=lambda label: (-votes[label], label))

    def accuracy(self, traces: List[Trace], labels: List[str]) -> float:
        """Fraction classified correctly."""
        if not traces:
            raise ReproError("empty evaluation set")
        hits = sum(
            1 for trace, label in zip(traces, labels)
            if self.predict(trace) == label
        )
        return hits / len(traces)


__all__ = ["NaiveBayesFingerprinter", "KnnFingerprinter"]
